//! Argument parsing for the CLI.

use np_simulator::MachineConfig;

/// The subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Print Table I.
    Table1,
    /// Print the event catalog.
    Catalog,
    /// Measure one workload, print all counters.
    Stat,
    /// Compare two workloads.
    Compare,
    /// Thread-count sweep with regressions.
    Sweep,
    /// Latency histogram.
    Memhist,
    /// Phase detection.
    Phasen,
    /// Per-region attribution.
    Annotate,
    /// Object-relative profile.
    Objprof,
    /// NUMA balance.
    Balance,
    /// Latency matrix.
    Mlc,
    /// Compare two recorded measurement archives.
    Diff,
    /// List recorded measurement archives.
    Archives,
    /// Cacheline contention analysis (perf c2c analogue).
    C2c,
    /// Static code-to-indicator analysis (bounds, barriers, races).
    Analyze,
    /// Workspace invariant linter.
    Lint,
    /// Workspace concurrency & determinism audit.
    Audit,
    /// Run the indicator-exchange server.
    Serve,
    /// Benchmark a running (or in-process) exchange.
    Loadgen,
    /// Benchmark the deterministic worker pool (sequential vs threaded).
    BenchParallel,
    /// Matrix benchmark harness: run / diff / migrate / trend.
    Bench,
    /// Sampled measurement campaign: deterministic time-series capture.
    Run,
    /// Live per-node telemetry view (ANSI redraw loop).
    Top,
    /// Render a capture as a text summary or self-contained HTML report.
    Report,
    /// Performance-pattern identification: classify a run, a capture's
    /// phases, or verify the whole labeled registry.
    Patterns,
}

impl Command {
    fn parse(s: &str) -> Option<Command> {
        Some(match s {
            "table1" => Command::Table1,
            "catalog" => Command::Catalog,
            "stat" => Command::Stat,
            "compare" => Command::Compare,
            "sweep" => Command::Sweep,
            "memhist" => Command::Memhist,
            "phasen" => Command::Phasen,
            "annotate" => Command::Annotate,
            "objprof" => Command::Objprof,
            "balance" => Command::Balance,
            "mlc" => Command::Mlc,
            "diff" => Command::Diff,
            "archives" => Command::Archives,
            "c2c" => Command::C2c,
            "analyze" => Command::Analyze,
            "lint" => Command::Lint,
            "audit" => Command::Audit,
            "serve" => Command::Serve,
            "loadgen" => Command::Loadgen,
            "bench-parallel" => Command::BenchParallel,
            "bench" => Command::Bench,
            "run" => Command::Run,
            "top" => Command::Top,
            "report" => Command::Report,
            "patterns" => Command::Patterns,
            _ => return None,
        })
    }
}

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Cli {
    /// The subcommand.
    pub command: Command,
    /// Machine preset name.
    pub machine: String,
    /// Workload name (`--workload`).
    pub workload: Option<String>,
    /// `compare`'s first workload.
    pub workload_a: Option<String>,
    /// `compare`'s second workload.
    pub workload_b: Option<String>,
    /// Size parameter.
    pub size: Option<usize>,
    /// Thread count.
    pub threads: usize,
    /// Repetitions.
    pub reps: usize,
    /// Base seed.
    pub seed: u64,
    /// Memhist cost mode.
    pub costs: bool,
    /// Multiplexed acquisition.
    pub multiplexed: bool,
    /// JSON output where supported.
    pub json: bool,
    /// Session directory for measurement archives.
    pub session: String,
    /// Save the measurement under this archive name (`stat`).
    pub save: Option<String>,
    /// Write the tool suite's own metrics snapshot to this JSON file.
    pub telemetry: Option<String>,
    /// Write a Chrome-trace file of internal spans to this path.
    pub trace: Option<String>,
    /// Workspace root for `lint` (`--path`).
    pub path: String,
    /// Exchange address: bind address for `serve`, target for `loadgen`
    /// (`loadgen` boots an in-process server when absent).
    pub addr: Option<String>,
    /// `serve`: connections to serve before exiting (0 = forever).
    pub conns: usize,
    /// `loadgen`: concurrent client sessions.
    pub clients: usize,
    /// `loadgen`: frames each session sends.
    pub frames: usize,
    /// `loadgen`/`bench-parallel`: fail unless the run passes its smoke
    /// invariants.
    pub smoke: bool,
    /// `loadgen`/`bench-parallel`: summary output path.
    pub out: String,
    /// `serve`/`loadgen`: store shard count.
    pub shards: usize,
    /// `serve`/`loadgen`: prediction-cache capacity.
    pub cache_cap: usize,
    /// `serve`/`loadgen`: worker-thread pool size.
    pub workers: usize,
    /// `run`: record the per-node time-series capture (`--sample`).
    pub sample: bool,
    /// `report`: emit the self-contained HTML report instead of text.
    pub html: bool,
    /// `report`: capture file to render (`--capture FILE`).
    pub capture: Option<String>,
    /// `run`: write the pool worker timeline here; `report`: read it.
    pub timeline: Option<String>,
    /// `top`: redraw frames before exiting (bounded; never forever).
    pub ticks: usize,
    /// `top`: milliseconds between redraws.
    pub interval_ms: u64,
    /// `run`: sampler ring capacity, bins per series.
    pub capacity: usize,
    /// `bench`: positional words after the command (`diff <baseline>`,
    /// `migrate <file>`, ...). Only `bench` accepts positionals.
    pub positional: Vec<String>,
    /// `bench`: matrix config file (TOML subset or JSON).
    pub config: Option<String>,
    /// `bench diff`: baseline report (also the first positional).
    pub baseline: Option<String>,
    /// `bench diff`: pre-recorded current report (else run `--config`).
    pub current: Option<String>,
    /// `bench diff`: noise band, percent.
    pub noise_pct: f64,
    /// `bench diff`: Welch significance level.
    pub alpha: f64,
    /// `bench`: also write the markdown rendering here.
    pub md: Option<String>,
    /// `bench`: also write the CSV rendering here.
    pub csv: Option<String>,
    /// `bench trend`: append the run at `--current` to this history.
    pub append: Option<String>,
    /// `audit`: also write a SARIF 2.1.0 report here.
    pub sarif: Option<String>,
    /// `audit`: also write the unsafe-inventory markdown here.
    pub inventory: Option<String>,
    /// `patterns`: run the full registry verification sweep.
    pub verify: bool,
}

impl Cli {
    /// Parses `argv` (without the program name).
    pub fn parse(argv: &[String]) -> Result<Cli, String> {
        let mut it = argv.iter();
        // The observability flags are global: accept them before the
        // subcommand (`--telemetry t.json stat ...`) as well as after.
        let mut pre_telemetry = None;
        let mut pre_trace = None;
        let cmd = loop {
            match it.next() {
                None => return Err("missing command".to_string()),
                Some(a) if a == "--telemetry" => {
                    pre_telemetry = Some(it.next().cloned().ok_or("--telemetry needs a value")?)
                }
                Some(a) if a == "--trace" => {
                    pre_trace = Some(it.next().cloned().ok_or("--trace needs a value")?)
                }
                Some(a) => break a,
            }
        };
        let command = Command::parse(cmd).ok_or_else(|| format!("unknown command '{cmd}'"))?;

        let mut cli = Cli {
            command,
            machine: "dl580".into(),
            workload: None,
            workload_a: None,
            workload_b: None,
            size: None,
            threads: 4,
            reps: 3,
            seed: 1,
            costs: false,
            multiplexed: false,
            json: false,
            session: ".np-session".into(),
            save: None,
            telemetry: pre_telemetry,
            trace: pre_trace,
            path: ".".into(),
            addr: None,
            conns: 0,
            clients: 8,
            frames: 40,
            smoke: false,
            // `--out` default tracks the command's baseline file.
            out: match command {
                Command::BenchParallel => "baselines/bench-parallel.json",
                Command::Bench => "BENCH_matrix.json",
                Command::Run => "CAPTURE.json",
                Command::Report => "REPORT.html",
                Command::Patterns => "PATTERNS.json",
                _ => "BENCH_serve.json",
            }
            .into(),
            shards: 8,
            cache_cap: 128,
            workers: 4,
            sample: false,
            html: false,
            capture: None,
            timeline: None,
            ticks: 12,
            interval_ms: 100,
            capacity: 256,
            positional: Vec::new(),
            config: None,
            baseline: None,
            current: None,
            noise_pct: 15.0,
            alpha: 0.01,
            md: None,
            csv: None,
            append: None,
            sarif: None,
            inventory: None,
            verify: false,
        };

        let take_value =
            |flag: &str, it: &mut std::slice::Iter<String>| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };

        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--machine" => cli.machine = take_value("--machine", &mut it)?,
                "--workload" | "-w" => cli.workload = Some(take_value("--workload", &mut it)?),
                "-a" => cli.workload_a = Some(take_value("-a", &mut it)?),
                "-b" => cli.workload_b = Some(take_value("-b", &mut it)?),
                "--size" => {
                    cli.size = Some(
                        take_value("--size", &mut it)?
                            .parse()
                            .map_err(|_| "--size must be an integer".to_string())?,
                    )
                }
                "--threads" => {
                    cli.threads = take_value("--threads", &mut it)?
                        .parse()
                        .map_err(|_| "--threads must be an integer".to_string())?
                }
                "--reps" => {
                    cli.reps = take_value("--reps", &mut it)?
                        .parse()
                        .map_err(|_| "--reps must be an integer".to_string())?
                }
                "--seed" => {
                    cli.seed = take_value("--seed", &mut it)?
                        .parse()
                        .map_err(|_| "--seed must be an integer".to_string())?
                }
                "--costs" => cli.costs = true,
                "--multiplexed" => cli.multiplexed = true,
                "--json" => cli.json = true,
                "--session" => cli.session = take_value("--session", &mut it)?,
                "--save" => cli.save = Some(take_value("--save", &mut it)?),
                "--telemetry" => cli.telemetry = Some(take_value("--telemetry", &mut it)?),
                "--trace" => cli.trace = Some(take_value("--trace", &mut it)?),
                "--path" => cli.path = take_value("--path", &mut it)?,
                "--addr" => cli.addr = Some(take_value("--addr", &mut it)?),
                "--conns" => {
                    cli.conns = take_value("--conns", &mut it)?
                        .parse()
                        .map_err(|_| "--conns must be an integer".to_string())?
                }
                "--clients" => {
                    cli.clients = take_value("--clients", &mut it)?
                        .parse()
                        .map_err(|_| "--clients must be an integer".to_string())?
                }
                "--frames" => {
                    cli.frames = take_value("--frames", &mut it)?
                        .parse()
                        .map_err(|_| "--frames must be an integer".to_string())?
                }
                "--smoke" => cli.smoke = true,
                "--out" => cli.out = take_value("--out", &mut it)?,
                "--shards" => {
                    cli.shards = take_value("--shards", &mut it)?
                        .parse()
                        .map_err(|_| "--shards must be an integer".to_string())?
                }
                "--cache-cap" => {
                    cli.cache_cap = take_value("--cache-cap", &mut it)?
                        .parse()
                        .map_err(|_| "--cache-cap must be an integer".to_string())?
                }
                "--workers" => {
                    cli.workers = take_value("--workers", &mut it)?
                        .parse()
                        .map_err(|_| "--workers must be an integer".to_string())?
                }
                "--sample" => cli.sample = true,
                "--html" => cli.html = true,
                "--capture" => cli.capture = Some(take_value("--capture", &mut it)?),
                "--timeline" => cli.timeline = Some(take_value("--timeline", &mut it)?),
                "--ticks" => {
                    cli.ticks = take_value("--ticks", &mut it)?
                        .parse()
                        .map_err(|_| "--ticks must be an integer".to_string())?
                }
                "--interval" => {
                    cli.interval_ms = take_value("--interval", &mut it)?
                        .parse()
                        .map_err(|_| "--interval must be milliseconds".to_string())?
                }
                "--capacity" => {
                    cli.capacity = take_value("--capacity", &mut it)?
                        .parse()
                        .map_err(|_| "--capacity must be an integer".to_string())?
                }
                "--config" => cli.config = Some(take_value("--config", &mut it)?),
                "--baseline" => cli.baseline = Some(take_value("--baseline", &mut it)?),
                "--current" => cli.current = Some(take_value("--current", &mut it)?),
                "--noise" => {
                    cli.noise_pct = take_value("--noise", &mut it)?
                        .parse()
                        .map_err(|_| "--noise must be a percentage".to_string())?
                }
                "--alpha" => {
                    cli.alpha = take_value("--alpha", &mut it)?
                        .parse()
                        .map_err(|_| "--alpha must be a probability".to_string())?
                }
                "--md" => cli.md = Some(take_value("--md", &mut it)?),
                "--csv" => cli.csv = Some(take_value("--csv", &mut it)?),
                "--append" => cli.append = Some(take_value("--append", &mut it)?),
                "--sarif" => cli.sarif = Some(take_value("--sarif", &mut it)?),
                "--inventory" => cli.inventory = Some(take_value("--inventory", &mut it)?),
                "--verify" => cli.verify = true,
                // `bench` takes positional words (`diff <baseline>`,
                // `migrate <file>`); every other command rejects them.
                other if command == Command::Bench && !other.starts_with('-') => {
                    cli.positional.push(other.to_string())
                }
                other => return Err(format!("unknown option '{other}'")),
            }
        }
        Ok(cli)
    }

    /// Resolves the machine preset, or loads a config from a `.json` file
    /// (the §VI outlook: "simulating and incorporating different
    /// topologies should be investigated further").
    pub fn machine_config(&self) -> Result<MachineConfig, String> {
        // One resolver for the CLI and the bench harness, so presets
        // and machine-file validation can't drift apart.
        np_bench::harness::runner::resolve_machine(&self.machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Cli::parse(&v)
    }

    #[test]
    fn parses_a_full_command_line() {
        let cli = parse(&[
            "compare",
            "-a",
            "row-major",
            "-b",
            "column-major",
            "--size",
            "1024",
            "--reps",
            "5",
            "--machine",
            "ring",
            "--seed",
            "9",
        ])
        .unwrap();
        assert_eq!(cli.command, Command::Compare);
        assert_eq!(cli.workload_a.as_deref(), Some("row-major"));
        assert_eq!(cli.workload_b.as_deref(), Some("column-major"));
        assert_eq!(cli.size, Some(1024));
        assert_eq!(cli.reps, 5);
        assert_eq!(cli.seed, 9);
        assert_eq!(cli.machine, "ring");
        assert!(cli.machine_config().is_ok());
    }

    #[test]
    fn defaults_applied() {
        let cli = parse(&["stat", "--workload", "sift"]).unwrap();
        assert_eq!(cli.machine, "dl580");
        assert_eq!(cli.threads, 4);
        assert_eq!(cli.reps, 3);
        assert!(!cli.costs && !cli.multiplexed && !cli.json);
    }

    #[test]
    fn rejects_unknown_command_and_flags() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["stat", "--bogus"]).is_err());
        assert!(parse(&["stat", "--size"]).is_err());
        assert!(parse(&["stat", "--size", "abc"]).is_err());
    }

    #[test]
    fn flags_toggle() {
        let cli = parse(&["memhist", "-w", "mlc-remote", "--costs", "--multiplexed"]).unwrap();
        assert!(cli.costs && cli.multiplexed);
    }

    #[test]
    fn telemetry_flags_parse() {
        let cli = parse(&[
            "stat",
            "-w",
            "sift",
            "--telemetry",
            "m.json",
            "--trace",
            "t.trace.json",
        ])
        .unwrap();
        assert_eq!(cli.telemetry.as_deref(), Some("m.json"));
        assert_eq!(cli.trace.as_deref(), Some("t.trace.json"));
        // Global flags also parse before the subcommand.
        let pre = parse(&[
            "--telemetry",
            "m.json",
            "--trace",
            "t.trace.json",
            "stat",
            "-w",
            "sift",
        ])
        .unwrap();
        assert_eq!(pre.command, Command::Stat);
        assert_eq!(pre.telemetry.as_deref(), Some("m.json"));
        assert_eq!(pre.trace.as_deref(), Some("t.trace.json"));
        // Off by default: parsing must not enable the global registry.
        let plain = parse(&["stat", "-w", "sift"]).unwrap();
        assert!(plain.telemetry.is_none() && plain.trace.is_none());
    }

    #[test]
    fn analyze_and_lint_parse() {
        let cli = parse(&["analyze", "-w", "sort", "--machine", "two-socket"]).unwrap();
        assert_eq!(cli.command, Command::Analyze);
        assert_eq!(cli.workload.as_deref(), Some("sort"));
        let cli = parse(&["lint", "--path", "/tmp/ws"]).unwrap();
        assert_eq!(cli.command, Command::Lint);
        assert_eq!(cli.path, "/tmp/ws");
        // Default lint root is the current directory.
        assert_eq!(parse(&["lint"]).unwrap().path, ".");
    }

    #[test]
    fn audit_parses() {
        let cli = parse(&[
            "audit",
            "--path",
            "/tmp/ws",
            "--baseline",
            "audit-baseline.json",
            "--sarif",
            "audit.sarif",
            "--inventory",
            "UNSAFE_INVENTORY.md",
            "--json",
        ])
        .unwrap();
        assert_eq!(cli.command, Command::Audit);
        assert_eq!(cli.path, "/tmp/ws");
        assert_eq!(cli.baseline.as_deref(), Some("audit-baseline.json"));
        assert_eq!(cli.sarif.as_deref(), Some("audit.sarif"));
        assert_eq!(cli.inventory.as_deref(), Some("UNSAFE_INVENTORY.md"));
        assert!(cli.json);
        // Defaults: audit the current tree, no side outputs.
        let cli = parse(&["audit"]).unwrap();
        assert_eq!(cli.path, ".");
        assert!(cli.baseline.is_none() && cli.sarif.is_none() && cli.inventory.is_none());
    }

    #[test]
    fn serve_and_loadgen_parse() {
        let cli = parse(&[
            "serve",
            "--addr",
            "127.0.0.1:7070",
            "--conns",
            "5",
            "--shards",
            "16",
            "--cache-cap",
            "64",
            "--workers",
            "2",
        ])
        .unwrap();
        assert_eq!(cli.command, Command::Serve);
        assert_eq!(cli.addr.as_deref(), Some("127.0.0.1:7070"));
        assert_eq!(cli.conns, 5);
        assert_eq!(cli.shards, 16);
        assert_eq!(cli.cache_cap, 64);
        assert_eq!(cli.workers, 2);

        let cli = parse(&[
            "loadgen",
            "--clients",
            "12",
            "--frames",
            "20",
            "--smoke",
            "--out",
            "b.json",
        ])
        .unwrap();
        assert_eq!(cli.command, Command::Loadgen);
        assert_eq!(cli.clients, 12);
        assert_eq!(cli.frames, 20);
        assert!(cli.smoke);
        assert_eq!(cli.out, "b.json");
        assert!(cli.addr.is_none(), "no --addr means in-process server");

        // Defaults: a forever server, an 8-way loadgen, tracked baseline.
        let cli = parse(&["serve"]).unwrap();
        assert_eq!(cli.conns, 0);
        let cli = parse(&["loadgen"]).unwrap();
        assert_eq!(cli.clients, 8);
        assert_eq!(cli.frames, 40);
        assert_eq!(cli.out, "BENCH_serve.json");
        assert!(!cli.smoke);
    }

    #[test]
    fn bench_parallel_parses() {
        let cli = parse(&[
            "bench-parallel",
            "--reps",
            "8",
            "--seed",
            "7",
            "--smoke",
            "--out",
            "bp.json",
        ])
        .unwrap();
        assert_eq!(cli.command, Command::BenchParallel);
        assert_eq!(cli.reps, 8);
        assert_eq!(cli.seed, 7);
        assert!(cli.smoke);
        assert_eq!(cli.out, "bp.json");
        // The default baseline path is per-command.
        let cli = parse(&["bench-parallel"]).unwrap();
        assert_eq!(cli.out, "baselines/bench-parallel.json");
        assert!(!cli.smoke);
    }

    #[test]
    fn run_top_report_parse() {
        let cli = parse(&[
            "run",
            "-w",
            "row-major",
            "--sample",
            "--capacity",
            "64",
            "--timeline",
            "tl.json",
            "--save",
            "trace1",
        ])
        .unwrap();
        assert_eq!(cli.command, Command::Run);
        assert!(cli.sample);
        assert_eq!(cli.capacity, 64);
        assert_eq!(cli.timeline.as_deref(), Some("tl.json"));
        assert_eq!(cli.save.as_deref(), Some("trace1"));
        assert_eq!(cli.out, "CAPTURE.json");

        let cli = parse(&["top", "--ticks", "3", "--interval", "10"]).unwrap();
        assert_eq!(cli.command, Command::Top);
        assert_eq!(cli.ticks, 3);
        assert_eq!(cli.interval_ms, 10);
        // Bounded by default: a forgotten --ticks still terminates.
        assert_eq!(parse(&["top"]).unwrap().ticks, 12);

        let cli = parse(&["report", "--capture", "c.json", "--html"]).unwrap();
        assert_eq!(cli.command, Command::Report);
        assert_eq!(cli.capture.as_deref(), Some("c.json"));
        assert!(cli.html);
        assert_eq!(cli.out, "REPORT.html");
    }

    #[test]
    fn bench_parses_modes_and_gate_flags() {
        let cli = parse(&[
            "bench",
            "--config",
            "matrix.toml",
            "--md",
            "b.md",
            "--csv",
            "b.csv",
        ])
        .unwrap();
        assert_eq!(cli.command, Command::Bench);
        assert_eq!(cli.config.as_deref(), Some("matrix.toml"));
        assert_eq!(cli.md.as_deref(), Some("b.md"));
        assert_eq!(cli.csv.as_deref(), Some("b.csv"));
        assert!(cli.positional.is_empty());
        assert_eq!(cli.out, "BENCH_matrix.json");
        assert_eq!(cli.noise_pct, 15.0);
        assert_eq!(cli.alpha, 0.01);

        let cli = parse(&[
            "bench",
            "diff",
            "baselines/ci.json",
            "--current",
            "cur.json",
            "--noise",
            "50",
            "--alpha",
            "0.05",
        ])
        .unwrap();
        assert_eq!(cli.positional, vec!["diff", "baselines/ci.json"]);
        assert_eq!(cli.current.as_deref(), Some("cur.json"));
        assert_eq!(cli.noise_pct, 50.0);
        assert_eq!(cli.alpha, 0.05);

        let cli = parse(&["bench", "trend", "--append", "history.jsonl"]).unwrap();
        assert_eq!(cli.positional, vec!["trend"]);
        assert_eq!(cli.append.as_deref(), Some("history.jsonl"));

        // Positionals stay a bench-only affordance.
        assert!(parse(&["stat", "positional"]).is_err());
        assert!(parse(&["bench", "--noise", "abc"]).is_err());
    }

    #[test]
    fn patterns_parses() {
        let cli = parse(&["patterns", "--verify", "--json", "--out", "p.json"]).unwrap();
        assert_eq!(cli.command, Command::Patterns);
        assert!(cli.verify && cli.json);
        assert_eq!(cli.out, "p.json");

        let cli = parse(&["patterns", "-w", "stream-bound", "--threads", "2"]).unwrap();
        assert_eq!(cli.workload.as_deref(), Some("stream-bound"));
        assert_eq!(cli.threads, 2);
        assert!(!cli.verify);
        assert_eq!(cli.out, "PATTERNS.json");

        let cli = parse(&["patterns", "--capture", "c.json"]).unwrap();
        assert_eq!(cli.capture.as_deref(), Some("c.json"));
    }

    #[test]
    fn unknown_machine_rejected_at_resolution() {
        let cli = parse(&["table1", "--machine", "cray"]).unwrap();
        assert!(cli.machine_config().is_err());
    }
}
