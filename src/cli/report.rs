//! `np report`: render a deterministic capture as a text summary or a
//! self-contained single-file HTML report.
//!
//! The HTML is NUMAscope-flavoured: phase-banded per-node sparklines,
//! a per-series intensity heatmap and (when a timeline file is given)
//! the pool's worker-chunk gantt — all inline SVG and CSS, no
//! JavaScript, no external assets, so the file works from a CI artifact
//! store or an `mail -a` attachment.

use np_core::capture::{Capture, SeriesDoc, Timeline};

/// Per-phase band colours (cycled when a capture has more phases).
const PALETTE: &[&str] = &[
    "#9aa0a6", "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1",
];

fn phase_color(phase: u64) -> &'static str {
    PALETTE[phase as usize % PALETTE.len()]
}

fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// The plain-text rendering: per-series totals grouped under the capture
/// header, plus the worker-busy split when a timeline rides along.
pub fn text_summary(cap: &Capture, timeline: Option<&Timeline>) -> String {
    let mut out = format!(
        "capture: {} on {} (seed {}, {} repetition(s), schema {})\n",
        cap.workload, cap.machine, cap.seed, cap.repetitions, cap.schema
    );
    out.push_str(&format!(
        "phases:  {}\n",
        if cap.phases.is_empty() {
            "-".to_string()
        } else {
            cap.phases.join(", ")
        }
    ));
    out.push_str(&format!(
        "nodes:   {:?}\n\n  {:<28} {:>6} {:>12} {:>10} {:>10}\n",
        cap.node_ids(),
        "series",
        "bins",
        "sum",
        "min",
        "max"
    ));
    for s in &cap.series {
        let sum: u64 = s.sum.iter().sum();
        let min = s.min.iter().min().copied().unwrap_or(0);
        let max = s.max.iter().max().copied().unwrap_or(0);
        out.push_str(&format!(
            "  {:<28} {:>6} {:>12} {:>10} {:>10}\n",
            s.name,
            s.dt.len(),
            sum,
            min,
            max
        ));
    }
    if !cap.phases.is_empty() {
        out.push_str("\npatterns:\n");
        for (idx, phase) in cap.phases.iter().enumerate() {
            let fired = phase_patterns(cap, idx).1;
            let label = if fired.is_empty() {
                "healthy".to_string()
            } else {
                fired.join(", ")
            };
            out.push_str(&format!("  {phase:<16} {label}\n"));
        }
    }
    if let Some(tl) = timeline {
        out.push_str(&format!(
            "\nworker timeline: {} chunk(s) across {} worker(s)\n",
            tl.chunk.len(),
            tl.workers
        ));
        for (w, busy) in tl.busy_per_worker().iter().enumerate() {
            let chunks = tl.worker.iter().filter(|&&x| x == w as u64).count();
            out.push_str(&format!(
                "  worker {w}: {chunks} chunk(s), busy {:.3} ms\n",
                *busy as f64 / 1e6
            ));
        }
    }
    out
}

/// Classifies one capture phase through np-patterns (no envelope priors:
/// a capture carries counters, not the program). Returns the verdicts
/// and the fired names.
fn phase_patterns(cap: &Capture, phase: usize) -> (Vec<np_patterns::Verdict>, Vec<String>) {
    let indicators = np_patterns::Indicators::from_capture_phase(cap, phase);
    let verdicts = np_patterns::classify(&np_patterns::derive(&indicators), None);
    let fired = np_patterns::fired_names(&verdicts);
    (verdicts, fired)
}

/// The per-phase pattern band: one chip per phase, tinted with the
/// phase's band colour, labeled with the fired patterns, carrying the
/// rule evidence in a plain `title` tooltip — hover works without a
/// line of JavaScript.
fn pattern_band(cap: &Capture) -> String {
    let mut band = String::from("<p class=\"legend\">");
    for (idx, phase) in cap.phases.iter().enumerate() {
        let (verdicts, fired) = phase_patterns(cap, idx);
        let label = if fired.is_empty() {
            "healthy".to_string()
        } else {
            fired.join(" + ")
        };
        let mut tips: Vec<String> = Vec::new();
        for v in verdicts.iter().filter(|v| v.fired) {
            for e in &v.evidence {
                tips.push(format!(
                    "{}: {} {} {} (observed {})",
                    v.pattern, e.metric, e.op, e.threshold_pm, e.observed_pm
                ));
            }
        }
        if tips.is_empty() {
            tips.push("no signature fired".to_string());
        }
        let tooltip: Vec<String> = tips.iter().map(|t| html_escape(t)).collect();
        band.push_str(&format!(
            "<span style=\"background:{}\" title=\"{}\">{}: {}</span>",
            phase_color(idx as u64),
            tooltip.join("&#10;"),
            html_escape(phase),
            html_escape(&label)
        ));
    }
    if cap.phases.is_empty() {
        band.push_str("(no phases recorded)");
    }
    band.push_str("</p>\n");
    band
}

/// One sparkline: phase bands behind a per-bin mean polyline.
fn svg_sparkline(s: &SeriesDoc, width: u64, height: u64) -> String {
    let n = s.dt.len().max(1) as u64;
    let means: Vec<f64> = (0..s.dt.len())
        .map(|i| s.sum[i] as f64 / s.count[i].max(1) as f64)
        .collect();
    let peak = means.iter().cloned().fold(1.0f64, f64::max);
    let mut svg = format!(
        "<svg width=\"{width}\" height=\"{height}\" viewBox=\"0 0 {width} {height}\" \
         role=\"img\" aria-label=\"{}\">",
        html_escape(&s.name)
    );
    // Phase bands first so the polyline draws on top.
    for (i, &phase) in s.phase.iter().enumerate() {
        let x = i as u64 * width / n;
        let w = ((i as u64 + 1) * width / n).saturating_sub(x).max(1);
        svg.push_str(&format!(
            "<rect x=\"{x}\" y=\"0\" width=\"{w}\" height=\"{height}\" \
             fill=\"{}\" fill-opacity=\"0.18\"/>",
            phase_color(phase)
        ));
    }
    let points: Vec<String> = means
        .iter()
        .enumerate()
        .map(|(i, &m)| {
            let x = (i as u64 * width / n) + width / (2 * n).max(1);
            let y = height as f64 - (m / peak) * (height as f64 - 2.0) - 1.0;
            format!("{x},{y:.1}")
        })
        .collect();
    svg.push_str(&format!(
        "<polyline points=\"{}\" fill=\"none\" stroke=\"#202124\" stroke-width=\"1.5\"/>",
        points.join(" ")
    ));
    svg.push_str("</svg>");
    svg
}

/// One heatmap row: per-bin cells shaded by the bin sum relative to the
/// series peak.
fn heatmap_row(s: &SeriesDoc) -> String {
    let peak = s.sum.iter().max().copied().unwrap_or(0).max(1) as f64;
    let mut row = format!("<tr><th class=\"rowname\">{}</th>", html_escape(&s.name));
    for (i, &v) in s.sum.iter().enumerate() {
        let alpha = v as f64 / peak;
        row.push_str(&format!(
            "<td style=\"background:rgba(66,103,178,{alpha:.2})\" \
             title=\"t={} sum={v}\"></td>",
            s.t0 + s.dt[..=i].iter().sum::<u64>()
        ));
    }
    row.push_str("</tr>");
    row
}

/// The worker-chunk gantt: one lane per worker, one rect per chunk.
fn svg_timeline(tl: &Timeline, width: u64) -> String {
    let lane = 22u64;
    let height = tl.workers.max(1) * lane + 4;
    let span = tl.end_ns.iter().max().copied().unwrap_or(1).max(1);
    let mut svg = format!(
        "<svg width=\"{width}\" height=\"{height}\" viewBox=\"0 0 {width} {height}\" \
         role=\"img\" aria-label=\"worker timeline\">"
    );
    for i in 0..tl.chunk.len() {
        let x = tl.start_ns[i] * width / span;
        let w = (tl.end_ns[i].saturating_sub(tl.start_ns[i]) * width / span).max(1);
        let y = tl.worker[i] * lane + 2;
        svg.push_str(&format!(
            "<rect x=\"{x}\" y=\"{y}\" width=\"{w}\" height=\"{}\" fill=\"{}\" \
             stroke=\"#fff\" stroke-width=\"0.5\"><title>chunk {} on worker {} \
             ({} ns, waited {} ns)</title></rect>",
            lane - 4,
            PALETTE[(tl.chunk[i] as usize % (PALETTE.len() - 1)) + 1],
            tl.chunk[i],
            tl.worker[i],
            tl.end_ns[i].saturating_sub(tl.start_ns[i]),
            tl.wait_ns[i]
        ));
    }
    svg.push_str("</svg>");
    svg
}

/// The full self-contained HTML document.
pub fn html_report(cap: &Capture, timeline: Option<&Timeline>) -> String {
    let mut html =
        String::from("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    html.push_str(&format!(
        "<title>np capture — {} on {}</title>\n",
        html_escape(&cap.workload),
        html_escape(&cap.machine)
    ));
    html.push_str(
        "<style>\n\
         body{font-family:ui-monospace,Menlo,Consolas,monospace;margin:2em;color:#202124}\n\
         h1{font-size:1.3em}h2{font-size:1.05em;margin-top:1.6em}\n\
         .meta{color:#5f6368}\n\
         .series{margin:.4em 0}.series b{display:inline-block;width:18em}\n\
         .legend span{display:inline-block;padding:.1em .6em;margin-right:.5em;\
         border-radius:3px;color:#fff}\n\
         table.heat{border-collapse:collapse}table.heat td{width:7px;height:14px;padding:0}\n\
         table.heat th.rowname{text-align:right;padding-right:.6em;font-weight:normal;\
         font-size:.85em}\n\
         </style>\n</head>\n<body>\n",
    );
    html.push_str(&format!(
        "<h1>np capture report</h1>\n<p class=\"meta\">workload <b>{}</b> on machine \
         <b>{}</b> — seed {}, {} repetition(s), schema {}</p>\n",
        html_escape(&cap.workload),
        html_escape(&cap.machine),
        cap.seed,
        cap.repetitions,
        html_escape(&cap.schema)
    ));

    html.push_str("<h2>Phases</h2>\n<p class=\"legend\">");
    if cap.phases.is_empty() {
        html.push_str("(none recorded)");
    }
    for (i, p) in cap.phases.iter().enumerate() {
        html.push_str(&format!(
            "<span style=\"background:{}\">{}</span>",
            phase_color(i as u64),
            html_escape(p)
        ));
    }
    html.push_str("</p>\n");

    html.push_str(
        "<h2>Pattern attribution</h2>\n<p class=\"meta\">per-phase verdicts from the \
         np-patterns signature table; hover a chip for the rule evidence</p>\n",
    );
    html.push_str(&pattern_band(cap));

    html.push_str("<h2>Per-node series</h2>\n");
    for s in &cap.series {
        html.push_str(&format!(
            "<div class=\"series\"><b>{}</b> {}</div>\n",
            html_escape(&s.name),
            svg_sparkline(s, 560, 48)
        ));
    }

    html.push_str("<h2>Intensity heatmap</h2>\n<table class=\"heat\">\n");
    for s in &cap.series {
        html.push_str(&heatmap_row(s));
        html.push('\n');
    }
    html.push_str("</table>\n");

    if let Some(tl) = timeline {
        html.push_str(&format!(
            "<h2>Worker timeline</h2>\n<p class=\"meta\">{} chunk(s) across {} \
             worker(s); hover a block for chunk, duration and queue wait</p>\n{}\n",
            tl.chunk.len(),
            tl.workers,
            svg_timeline(tl, 560)
        ));
    }

    html.push_str("</body>\n</html>\n");
    html
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_parallel::ChunkProfile;
    use np_telemetry::timeseries::Sampler;

    fn capture() -> Capture {
        let mut sampler = Sampler::new(8);
        for t in 0..6u64 {
            sampler.record_with_phase("rep0.node0.qpi", t * 100, t + 1, "measure");
            sampler.record_with_phase("rep0.node1.qpi", t * 100, 2 * t, "measure");
        }
        Capture::from_sampler("two-socket", "row-major", 9, 1, &sampler)
    }

    #[test]
    fn text_summary_lists_every_series() {
        let out = text_summary(&capture(), None);
        assert!(out.contains("rep0.node0.qpi"));
        assert!(out.contains("rep0.node1.qpi"));
        assert!(out.contains("measure"));
    }

    #[test]
    fn html_is_self_contained_and_escaped() {
        let mut cap = capture();
        cap.workload = "a<b&\"c\"".to_string();
        let tl = Timeline::from_profile(
            2,
            &[
                ChunkProfile {
                    chunk: 0,
                    worker: 0,
                    wait_ns: 3,
                    start_ns: 100,
                    end_ns: 400,
                },
                ChunkProfile {
                    chunk: 1,
                    worker: 1,
                    wait_ns: 8,
                    start_ns: 150,
                    end_ns: 300,
                },
            ],
        );
        let html = html_report(&cap, Some(&tl));
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("worker timeline"));
        assert!(html.contains("a&lt;b&amp;&quot;c&quot;"));
        // Self-contained: no scripts, no external fetches.
        assert!(!html.contains("<script"));
        assert!(!html.contains("http://") && !html.contains("https://"));
        assert!(html.contains("rep0.node0.qpi"));
    }

    #[test]
    fn pattern_band_attributes_each_phase() {
        // A phase shaped like a dependent chase: deep stalls at a tiny
        // request rate. The band must flag it and carry the evidence in
        // a title tooltip; the quiet phase reads healthy.
        let mut s = Sampler::new(8);
        for (short, v) in [
            ("instructions", 10_000u64),
            ("cycles", 1_000_000),
            ("mem_stall", 900_000),
            ("local_dram", 9_000),
            ("load", 9_500),
            ("store", 100),
            ("imc_read", 9_000),
        ] {
            s.record_with_phase(&format!("rep0.node0.{short}"), 100, v, "chase");
        }
        for (short, v) in [
            ("instructions", 100_000u64),
            ("cycles", 200_000),
            ("mem_stall", 10_000),
            ("local_dram", 500),
            ("load", 50_000),
            ("imc_read", 500),
        ] {
            s.record_with_phase(&format!("rep0.node0.{short}"), 200, v, "idle");
        }
        let cap = Capture::from_sampler("two-socket", "chase", 1, 1, &s);
        let html = html_report(&cap, None);
        assert!(html.contains("Pattern attribution"), "{html}");
        assert!(html.contains("chase: latency-bound"), "{html}");
        assert!(html.contains("idle: healthy"), "{html}");
        assert!(
            html.contains("title=\"latency-bound: mem_stall_frac &gt;= 750 (observed 900)"),
            "{html}"
        );
        assert!(!html.contains("<script"));

        let text = text_summary(&cap, None);
        assert!(text.contains("patterns:"), "{text}");
        assert!(text.contains("latency-bound"), "{text}");
    }

    #[test]
    fn sparkline_scales_to_the_series_peak() {
        let cap = capture();
        let svg = svg_sparkline(&cap.series[0], 560, 48);
        assert!(svg.contains("<polyline"));
        // One phase band per bin.
        assert_eq!(svg.matches("<rect").count(), cap.series[0].dt.len());
    }
}
