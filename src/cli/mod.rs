//! The `numa-perf-tools` command-line front-end.
//!
//! A perf-style driver over the tool suite: every analysis in the paper is
//! one subcommand away. Argument parsing is hand-rolled (the CLI surface
//! is small and the workspace keeps its dependency set tight).

pub mod args;
pub mod commands;
pub mod workloads;

pub use args::{Cli, Command};

/// Runs the CLI with the given arguments (excluding the program name);
/// returns the text to print or a usage error.
pub fn run(argv: &[String]) -> Result<String, String> {
    let cli = Cli::parse(argv)?;
    commands::execute(&cli)
}

/// The usage text.
pub fn usage() -> &'static str {
    "numa-perf-tools — NUMA performance assessment on a simulated machine

USAGE:
    numa-perf-tools <COMMAND> [OPTIONS]

COMMANDS:
    table1      print the simulated test-system specification (Table I)
    catalog     print the hardware event catalog (--json for EvSel's format)
    stat        measure a workload and print all counters (EvSel single set)
    compare     EvSel comparison of two workloads (-a NAME -b NAME)
    sweep       EvSel thread-count sweep with regressions (Fig. 9 style)
    memhist     load-latency histogram (Fig. 10; --costs for cost mode)
    phasen      phase detection and per-phase counters (Fig. 11)
    annotate    per-source-region event attribution (events-to-code)
    objprof     object-relative memory profile (per-allocation stats)
    balance     NUMA node balance report
    mlc         node-to-node latency matrix (Intel-mlc analogue)
    c2c         cacheline contention report (perf-c2c analogue)
    diff        compare two recorded archives (-a NAME -b NAME)
    archives    list recorded measurement archives

OPTIONS:
    --machine NAME     dl580 (default) | two-socket | ring
    --workload NAME    row-major | column-major | sort | sift | sift-naive |
                       mlc-local | mlc-remote | stream-local | stream-bound |
                       stream-interleaved | chrome | bsp | matmul
    -a NAME, -b NAME   workloads for `compare`
    --size N           workload size parameter (elements / pixels / edge)
    --threads N        worker threads (default 4)
    --reps N           measurement repetitions (default 3)
    --seed N           base seed (default 1)
    --costs            memhist: weight bins by latency
    --multiplexed      acquire via timeslice multiplexing instead of
                       repeated batched runs
    --json             catalog: emit JSON
    --save NAME        stat: record the measurement as an archive
    --session DIR      archive directory (default .np-session)

EXAMPLES:
    numa-perf-tools compare -a row-major -b column-major --size 1024
    numa-perf-tools memhist --workload sift --machine dl580
    numa-perf-tools sweep --workload sort --size 65536
    numa-perf-tools balance --workload stream-bound
"
}
