//! The `numa-perf-tools` command-line front-end.
//!
//! A perf-style driver over the tool suite: every analysis in the paper is
//! one subcommand away. Argument parsing is hand-rolled (the CLI surface
//! is small and the workspace keeps its dependency set tight).

pub mod args;
pub mod commands;
pub mod report;
pub mod top;
pub mod workloads;

pub use args::{Cli, Command};

/// Runs the CLI with the given arguments (excluding the program name);
/// returns the text to print or a usage error.
pub fn run(argv: &[String]) -> Result<String, String> {
    let cli = Cli::parse(argv)?;
    let observed = cli.telemetry.is_some() || cli.trace.is_some();
    if observed {
        np_telemetry::set_enabled(true);
    }
    if cli.trace.is_some() {
        np_telemetry::set_tracing(true);
    }
    np_telemetry::counter!("cli.commands").inc();
    let mut output = {
        let _span = np_telemetry::span!("cli.execute", "cli");
        commands::execute(&cli)?
    };
    if observed {
        if let Some(section) = np_core::report::telemetry_section() {
            output.push_str(&section);
        }
    }
    if let Some(path) = &cli.telemetry {
        let json = np_telemetry::global().snapshot().to_json();
        std::fs::write(path, json + "\n")
            .map_err(|e| format!("cannot write telemetry snapshot '{path}': {e}"))?;
    }
    if let Some(path) = &cli.trace {
        std::fs::write(path, np_telemetry::export_chrome_trace())
            .map_err(|e| format!("cannot write trace '{path}': {e}"))?;
    }
    Ok(output)
}

/// The usage text.
pub fn usage() -> &'static str {
    "numa-perf-tools — NUMA performance assessment on a simulated machine

USAGE:
    numa-perf-tools <COMMAND> [OPTIONS]

COMMANDS:
    table1      print the simulated test-system specification (Table I)
    catalog     print the hardware event catalog (--json for EvSel's format)
    stat        measure a workload and print all counters (EvSel single set)
    compare     EvSel comparison of two workloads (-a NAME -b NAME)
    sweep       EvSel thread-count sweep with regressions (Fig. 9 style)
    memhist     load-latency histogram (Fig. 10; --costs for cost mode)
    phasen      phase detection and per-phase counters (Fig. 11)
    annotate    per-source-region event attribution (events-to-code)
    objprof     object-relative memory profile (per-allocation stats)
    balance     NUMA node balance report
    mlc         node-to-node latency matrix (Intel-mlc analogue)
    c2c         cacheline contention report (perf-c2c analogue)
    diff        compare two recorded archives (-a NAME -b NAME)
    archives    list recorded measurement archives
    analyze     static code-to-indicator analysis: barrier/deadlock check,
                data races, per-event bounds proven against a dynamic run
    lint        workspace invariant linter (token-level, zero-dependency)
    audit       workspace concurrency & determinism audit: lock-order
                cycles, condvar discipline, atomics orderings, hot-path
                hygiene, unsafe inventory, panic reachability
                (--baseline FILE, --sarif FILE, --inventory FILE)
    serve       run the indicator-exchange server (put/query/predict over
                line-delimited JSON frames)
    loadgen     benchmark an exchange: seeded concurrent load, cache-hit
                speedup and cross-machine transfer audit (np-bench/1
                artifact)
    bench-parallel
                benchmark the deterministic worker pool: sequential vs
                2/4/N threads on every pooled path, with a bit-equality
                audit (np-bench/1 artifact)
    bench       matrix benchmark harness: `bench [run]` executes a
                declarative workload x threads matrix (--config FILE,
                default: the built-in smoke matrix) with warmup + repeat
                sampling; `bench diff BASELINE` gates a run against a
                committed baseline (Welch t-test inside a noise band,
                regressions exit 2); `bench migrate FILE` converts
                legacy BENCH_* artifacts; `bench trend HISTORY` renders
                a JSONL run history; `bench speedup [REPORT]` gates
                measured multi-core speedup within one report
    run         sampled measurement campaign: per-node time-series
                capture with phase attribution (needs --sample; writes
                CAPTURE.json, --timeline FILE for the pool gantt)
    top         live NUMAscope-style per-node telemetry view (plain
                ANSI redraw; --ticks N frames every --interval MS)
    report      render a capture as text or, with --html, as a
                self-contained single-file HTML report (inline SVG)
    patterns    performance-pattern identification: classify a workload
                run (or each phase of a capture) into bandwidth-bound /
                latency-bound / false-sharing / numa-imbalance /
                tlb-thrashing / load-imbalance with per-rule evidence;
                `--verify` re-proves every registry label (exit 2 on a
                mismatch; writes the np-patterns/1 document to --out)

OPTIONS:
    --machine NAME     dl580 (default) | two-socket | ring
    --workload NAME    row-major | column-major | sort | sift | sift-naive |
                       mlc-local | mlc-remote | stream-local | stream-bound |
                       stream-interleaved | chrome | bsp | matmul | bfs |
                       bfs-bound | bfs-interleaved | hashjoin-small |
                       hashjoin-large | chase-small | chase-large |
                       stencil-small | stencil-large | walk-small |
                       walk-large
    -a NAME, -b NAME   workloads for `compare`
    --size N           workload size parameter (elements / pixels / edge)
    --threads N        worker threads (default 4)
    --reps N           measurement repetitions (default 3)
    --seed N           base seed (default 1)
    --costs            memhist: weight bins by latency
    --multiplexed      acquire via timeslice multiplexing instead of
                       repeated batched runs
    --json             catalog: emit JSON
    --save NAME        stat: record the measurement as an archive
    --session DIR      archive directory (default .np-session)
    --telemetry FILE   write the tools' own metrics snapshot as JSON
                       (see `numa-perf-tools help telemetry`)
    --trace FILE       write a Chrome-trace of internal spans
                       (load in chrome://tracing or ui.perfetto.dev)
    --path DIR         lint / audit: workspace root to scan (default .)
    --sarif FILE       audit: also write a SARIF 2.1.0 report
    --inventory FILE   audit: regenerate the unsafe-inventory markdown
    --baseline FILE    audit: suppression baseline (default: the
                       committed audit-baseline.json, if present);
                       bench diff: baseline report
    --addr HOST:PORT   serve: bind address (default 127.0.0.1:0);
                       loadgen: exchange to hammer (default: boot an
                       in-process server)
    --conns N          serve: connections to serve before exiting
                       (default 0 = forever)
    --clients N        loadgen: concurrent sessions (default 8)
    --frames N         loadgen: frames per session (default 40)
    --smoke            loadgen: fail unless the run is error-free, the
                       cache was exercised and the transfer audit passed;
                       bench-parallel / bench: fail unless every cell
                       audit (bit-equality vs sequential) held
    --out FILE         loadgen / bench-parallel / bench: artifact path
                       (defaults BENCH_serve.json / BENCH_matrix.json /
                       baselines/bench-parallel.json)
    --config FILE      bench: matrix config, TOML subset or JSON
    --baseline FILE    bench diff: baseline report (or first positional)
    --current FILE     bench diff/trend/speedup: pre-recorded report
                       (default: run the configured matrix)
    --noise PCT        bench diff: noise band in percent (default 15)
    --alpha P          bench diff: Welch significance level (default 0.01)
    --md FILE          bench: also write the markdown rendering
    --csv FILE         bench: also write the CSV rendering
    --append FILE      bench trend: append the current run to this
                       JSONL history, then render it
    --shards N         serve/loadgen: store shards (default 8)
    --cache-cap N      serve/loadgen: prediction-cache entries (default 128)
    --workers N        serve/loadgen: worker threads (default 4)
    --sample           run: switch the time-series sampler on
    --capacity N       run: sampler ring capacity per series (default 256)
    --capture FILE     report: the capture JSON to render
    --timeline FILE    run: write the pool worker timeline here;
                       report: include it as a gantt lane chart
    --html             report: emit the single-file HTML report to --out
    --ticks N          top: frames to draw before exiting (default 12)
    --interval MS      top: redraw interval in milliseconds (default 100)
    --verify           patterns: run the full labeled-registry sweep
                       (both machine presets x 2/4 threads); a missed or
                       spurious pattern exits 2

EXAMPLES:
    numa-perf-tools compare -a row-major -b column-major --size 1024
    numa-perf-tools memhist --workload sift --machine dl580
    numa-perf-tools sweep --workload sort --size 65536
    numa-perf-tools balance --workload stream-bound
    numa-perf-tools bench --smoke --out current.json
    numa-perf-tools bench diff baselines/ci.json --current current.json

HELP TOPICS:
    numa-perf-tools help telemetry     observing the tools themselves
    numa-perf-tools help resilience    fault tolerance in the probe and
                                       acquisition paths
    numa-perf-tools help analyze       static code-to-indicator analysis
    numa-perf-tools help lint          the workspace invariant linter
    numa-perf-tools help audit         the concurrency & determinism audit
    numa-perf-tools help serve         the indicator-exchange service
    numa-perf-tools help loadgen       benchmarking the exchange
    numa-perf-tools help parallel      deterministic worker-pool execution
    numa-perf-tools help bench         the matrix harness and the
                                       regression gate
    numa-perf-tools help top           the live telemetry view
    numa-perf-tools help report        captures and the HTML report
    numa-perf-tools help patterns      performance-pattern identification
"
}

/// The `help telemetry` topic: observing the tool suite itself.
pub fn telemetry_help() -> &'static str {
    "Observing the tools themselves
==============================

The suite carries its own zero-dependency metrics layer (np-telemetry).
It is off by default and costs one relaxed atomic load per
instrumentation site while off. Two global flags turn it on:

    --telemetry FILE   enable metrics; after the command finishes, write
                       a JSON snapshot of every counter, gauge and
                       latency histogram to FILE, and append a
                       `== tool telemetry ==` section to the report
    --trace FILE       additionally buffer every internal span and write
                       a Chrome-trace JSON array to FILE; open it in
                       chrome://tracing or https://ui.perfetto.dev

WHAT IS RECORDED:
    sim.*       simulator throughput: runs, instructions, cycles,
                per-NUMA-node memory ops, cache/coherence event totals
    acq.*       acquisition: sim runs executed, batched register runs,
                multiplexed timeslices, PEBS threshold rotations
    runner.*    campaigns, repetitions, pool fan-out occupancy
    par.*       worker pool: tasks executed, chunks run beyond a fair
                share (par.steal), per-pop idle time (par.idle_ns)
    session.*   archive saves/loads and bytes written/read
    probe.*     Memhist TCP probe: requests, bytes on wire, per-
                connection errors, request latency
    span.*      wall-time histograms (ns) for every traced region

EXAMPLES:
    numa-perf-tools stat -w sift --telemetry tele.json
    numa-perf-tools compare -a row-major -b column-major \\
        --telemetry tele.json --trace trace.json
"
}

/// The `help resilience` topic: fault tolerance across the tool suite.
pub fn resilience_help() -> &'static str {
    "Fault tolerance in the probe and acquisition paths
==================================================

Remote measurement (the Memhist TCP probe of Fig. 6) and long
acquisition campaigns run against links and machines that fail. The
np-resilience crate supplies the policy layer; the probe client/server,
the acquisition batcher and the campaign runner are wired through it.

RETRY:       exponential backoff with deterministic, seedable jitter
             (a schedule is a pure function of its seed), a max-attempt
             cap, and per-attempt + overall deadlines.
TIMEOUTS:    every probe connection pins read/write deadlines on the
             socket and bounds the request/response frame size, so a
             hostile or wedged peer cannot hang or OOM either side.
BREAKER:     a circuit breaker (closed -> open -> half-open) stops
             hammering a failing endpoint; its state is exported as the
             `<name>.state` gauge (0 closed, 1 half-open, 2 open) with
             `<name>.opens` / `<name>.rejected` counters.
DEGRADATION: a chunked remote fetch that loses part of the threshold
             ladder past its retry budget returns a histogram assembled
             from the surviving thresholds, flagged `degraded`, with
             the lost `[lo, hi)` intervals enumerated — partial data
             beats no data. Memhist renders a DEGRADED footer.
QUARANTINE:  a torn archive file fails its load, is renamed to
             `<name>.json.corrupt`, and stops shadowing the name.

FAULT INJECTION (tests and drills):
    Deterministic scripted faults — drop-connection, truncate-payload,
    delay, garbage-bytes, refuse-accept — can be queued per site:
        probe.accept        server accept loop
        probe.response      server response path
        acq.batch_run       one batched acquisition run
        acq.pebs.rotation   one PEBS threshold rotation timeslice
    The fault matrix in tests/integration_resilience.rs drives every
    fault through a live probe round-trip nightly in CI.

TELEMETRY (with --telemetry FILE):
    resilience.retries        sleeps taken between retry attempts
    faults.injected           scripted faults consumed
    probe.fetch.*             chunks, chunks_lost, degraded fetches,
                              deadline_exceeded
    probe.faults.*            server-side injected fault outcomes
    acq.retries / acq.faults  acquisition retry traffic
    runner.failed_repetitions / runner.skipped_repetitions
    runner.circuit.*          campaign breaker state
    session.quarantined       corrupt archives quarantined

CI:
    .github/workflows/ci.yml runs fmt, clippy -D warnings, a release
    build and the workspace tests offline on stable + the pinned MSRV;
    nightly.yml adds the fault matrix, the telemetry-overhead guard and
    uploads a telemetry snapshot artifact. scripts/ci-local.sh
    reproduces both locally (`--quick` skips the nightly tier).
"
}

/// The `help analyze` topic: the static half of code-to-indicator.
pub fn analyze_help() -> &'static str {
    "Static code-to-indicator analysis
=================================

The paper maps code to hardware indicators by running it and reading
counters (dynamic). `analyze` supplies the static half of that mapping:
it derives, from program structure alone, what the counters *can* say —
and proves the claim against the engine on every invocation.

    numa-perf-tools analyze --workload sort --size 4096
    numa-perf-tools analyze --machine two-socket     # all workloads

PASSES (crate np-analysis):
    CFG       per-thread basic blocks cut at barriers, branches, labels
    barriers  abstract lockstep over each thread's barrier-id sequence;
              sound and complete against the engine's release rule, so
              `analyze` reports a deadlock exactly when `run` would hang
    races     happens-before detection over barrier supersteps: two
              accesses race when different threads touch the same byte,
              at least one writes, and no barrier orders them
    bounds    a static envelope [min, max] per hardware event. Retired
              counts are exact; placement events (local/remote DRAM)
              come from AllocPolicy x thread pinning; dTLB bounds from
              per-flush-segment working sets against the TLB geometry;
              interrupt and cycle bounds from a fixed point over the
              timer-interrupt feedback loop. An unbounded max renders
              as infinity (interrupts can outpace forward progress).

DIFFERENTIAL PROOF:
    With --workload, the table's observed column is one engine run at
    --seed; any total outside its envelope fails the command. Without
    --workload, every registry workload is analyzed and run once. The
    same check runs in CI and as property tests over generated programs
    (crates/analysis/tests/proptests.rs), so the static model cannot
    drift from engine accounting unnoticed.
"
}

/// The `help lint` topic: workspace invariants.
pub fn lint_help() -> &'static str {
    "The workspace invariant linter
==============================

`lint` enforces cross-crate rules the type system cannot express, with
a token-level scan (no syn, no rustc plumbing). Comments, strings and
#[cfg(test)] modules are exempt; `// lint:allow(rule): why` silences
one line with an audit trail. Findings are errors (exit code 2), so CI
fails on a violation.

    numa-perf-tools lint [--path DIR] [--json]

RULES:
    no-panic           no .unwrap()/.expect()/panic!/unreachable!/todo!
                       in probe and acquisition paths (memhist/probe.rs,
                       resilience/io.rs, counters/acquisition.rs,
                       counters/pebs.rs) — a panic there aborts a whole
                       measurement campaign instead of surfacing a
                       typed error
    bounded-reads      files touching TcpStream must not call raw
                       .read()/read_to_string()/read_to_end(); go
                       through np_resilience::io::read_line_bounded so
                       a slow or hostile peer cannot wedge the client
    relaxed-ordering   Ordering::Relaxed only inside crates/telemetry
                       (the one place the relaxed-counter argument has
                       been made); everything else uses SeqCst
    guarded-telemetry  np_telemetry::global() and time-series sampling
                       (sample / sample_cumulative) on a hot path must
                       sit under an enabled() / sampling_enabled()
                       check in the enclosing fn
    no-wall-clock      Instant::now()/SystemTime::now() are forbidden
                       in the simulator, the fault plan, the worker
                       pool (crates/parallel/src), the time-series
                       sampler (captures are timestamped in simulated
                       cycles), `np top`, the bench matrix harness
                       (crates/bench/src/harness) and the np-patterns
                       classifier (crates/patterns/src; its verdicts
                       are byte-identical at any thread count) —
                       seeded determinism is the whole point; pool and
                       harness timings flow through
                       np_telemetry::now_ns for reporting only

OUTPUT:
    file.rs:LINE: [rule] message       (text, one finding per line)
    --json emits {files_scanned, findings: [{path, line, rule,
    message}]} for CI artifacts.
"
}

/// The `help audit` topic: concurrency & determinism audit.
pub fn audit_help() -> &'static str {
    "The workspace concurrency & determinism audit
=============================================

`audit` is the linter's deeper sibling: the same token-level scan
(shared blanking lexer, no syn), plus a per-file function index and an
approximate workspace call graph, applied to the concurrency rules a
type checker cannot express. Unsuppressed findings are errors (exit
code 2). #[cfg(test)] modules are exempt; `// audit:allow(rule): why`
silences one line with an audit trail.

    numa-perf-tools audit [--path DIR] [--json] [--sarif FILE]
                          [--baseline FILE] [--inventory FILE]

RULES:
    lock-order           two lock labels acquired in opposite orders
                         anywhere in the workspace (one-hop callee
                         extension, crate-qualified labels) — a cycle
                         in the acquisition-order graph is a deadlock
                         waiting for the right interleaving
    condvar-discipline   a bare Condvar wait/wait_timeout outside a
                         predicate re-check loop (spurious wakeups),
                         and notify_one/notify_all in a fn that neither
                         acquires the guarded mutex nor takes a
                         MutexGuard parameter (missed wakeups)
    atomics-ordering     Ordering::Relaxed outside crates/telemetry,
                         and Acquire loads with no Release store (or
                         vice versa) on the same atomic field — an
                         unpaired ordering synchronizes nothing
    hot-path-hygiene     fns marked `// audit:hot` must not allocate,
                         format, lock, or do I/O
    unsafe-safety        every `unsafe` needs a `// SAFETY:` comment
                         within three lines; the full inventory is
                         committed as UNSAFE_INVENTORY.md and CI
                         regenerates and diffs it
    no-panic-reachable   .unwrap()/.expect()/panic!/unreachable!/todo!
                         in any fn reachable (bounded call-graph walk)
                         from the server and probe/acquisition entry
                         points — a panic there kills a campaign or a
                         connection instead of returning an error

BASELINE:
    audit-baseline.json (np-audit-baseline/1) suppresses known legacy
    findings: entries are {rule, path, contains, reason}. Suppressed
    findings stay visible in --json/--sarif (SARIF `suppressions`);
    entries that no longer match anything are reported as stale
    warnings so the baseline shrinks over time. This tree's committed
    baseline is empty — every finding was fixed at source.

OUTPUT:
    [rule] file.rs:LINE message        (text, one finding per line)
    --json emits the deterministic np-audit/1 report (byte-identical
    across runs); --sarif writes SARIF 2.1.0 for code-scanning UIs;
    --inventory regenerates UNSAFE_INVENTORY.md.
"
}

/// The `help serve` topic: the indicator exchange.
pub fn serve_help() -> &'static str {
    "The indicator-exchange service
==============================

The paper's two-step assessment measures indicators on one machine and
maps them to costs on another — indicators are designed to *transfer*.
`serve` gives that transfer a networked home: a long-running service
(np-serve) where measurement campaigns publish indicator sets and any
client prices them on any calibrated machine.

    numa-perf-tools serve [--addr HOST:PORT] [--conns N]
                          [--shards N] [--cache-cap N] [--workers N]

WIRE PROTOCOL (versioned, line-delimited JSON):
    One frame per line; a request frame batches any mix of requests and
    is answered positionally. Frames carry a `version` field checked by
    both sides.
    put      store an indicator set keyed (machine, program, param):
             EvSel per-event means + mean cycles, optional Memhist
             interval counts and Phasenpruefer split
    query    fetch sets by machine/program/param filters (None = any);
             all queries of a frame are answered in ONE pass per shard
    predict  transfer a stored set onto a *different* target machine:
             the server fits the np-models TransferModel over the
             target's stored (indicators, cycles) pairs and evaluates
             the source indicators — deterministic, so clients can
             re-derive and audit the answer
    stats    store/cache/generation counters

CONCURRENCY:
    The store is N-sharded (per-shard RwLock, FNV key routing): writers
    only contend with readers of their own shard. Connections are
    handed to a fixed worker pool, so one slow client cannot starve the
    accept loop. Predictions go through a deterministic LRU cache keyed
    by (content digest, target machine, model, store generation) — any
    put bumps the generation, so stale costs are unservable.

HARDENING (np-resilience):
    bounded frame reads, socket deadlines, typed error frames instead
    of dropped connections, and scripted fault sites `serve.accept` /
    `serve.response` for the nightly fault matrix.

TELEMETRY (with --telemetry FILE):
    span.serve.{put,query,predict,stats}   per-endpoint latency
    serve.inflight                         connections being served
    serve.cache.{hit,miss,evict}           prediction-cache traffic
    serve.faults.* / serve.errors          injected faults, IO failures
"
}

/// The `help loadgen` topic: benchmarking the exchange.
pub fn loadgen_help() -> &'static str {
    "Benchmarking the exchange
=========================

`loadgen` drives a seeded, deterministic workload against an exchange
and writes its artifact (default BENCH_serve.json) in the unified
np-bench/1 schema — one `loadgen/t<clients>` cell — so `np bench diff`
and `np bench trend` read it directly. Without --addr it boots an
in-process server first. The hammer phase starts its client sessions
behind a barrier, so the throughput window covers N genuinely
concurrent sessions rather than a spawn ramp.

    numa-perf-tools loadgen [--addr HOST:PORT] [--clients N]
                            [--frames N] [--seed N] [--smoke]
                            [--out FILE]

PHASES:
    seed     publish 48 indicator sets for each of two synthetic
             machines whose cost is an exact linear function of their
             indicators (the structure the transfer model fits)
    predict  time the same cross-machine predict cold (fit) and warm
             (cache hit) — their ratio is the reported cache speedup
    audit    refit the transfer model client-side from queried sets and
             check the server's transferred cost matches the direct
             np-models evaluation (the fit is deterministic: they must)
    hammer   N concurrent sessions send mixed batched frames (queries,
             predicts, puts); every protocol or server error counts

SMOKE GATE (--smoke, used by CI):
    errors == 0, cache hits observed, transfer audit passed. Latency
    and speedup numbers are reported, never gated — they are hardware-
    dependent and would flake in CI.
"
}

/// The `help parallel` topic: deterministic worker-pool execution.
pub fn parallel_help() -> &'static str {
    "Deterministic worker-pool execution
===================================

Campaigns, the Memhist threshold ladder, the Phasenprüfer pivot scan,
the all-counters correlation sweep and the differential-envelope
analysis sweep all fan out across the np-parallel pool: a
zero-dependency, std::thread-based fork-join layer.

DETERMINISM CONTRACT:
    Results merge in submission order (by chunk index, not completion
    order), so every pooled path is bit-identical to its sequential
    loop at ANY thread count. `--threads` is purely a throughput knob;
    it can never change a measured value. The pool itself is in the
    linter's no-wall-clock scope, so nothing in it can branch on
    timing.

SCHEDULES (test harness):
    Free         first-come scheduling (the default)
    Seeded(n)    a seeded turnstile picks which worker gets each chunk;
                 different seeds give different interleavings, always
                 the same output
    Replay(t)    re-run the exact interleaving recorded in trace t —
                 a failing schedule is a reproducible artifact

FAILURE SEMANTICS:
    A worker panic propagates to the caller (earliest item wins,
    deterministically); `try_run` surfaces it as a typed error instead.
    Pools hold no long-lived state, so nothing is poisoned: the same
    pool value keeps working after a panic.

BENCHMARK:
    numa-perf-tools bench-parallel [--smoke] [--out FILE]
    runs every pooled path at 1/2/4/N threads through the `np bench`
    matrix harness and writes the unified np-bench/1 artifact (default
    baselines/bench-parallel.json, the committed baseline): per cell,
    wall-time samples, a modeled
    speedup (greedy makespan of the sequential chunk costs —
    meaningful even on a single-core CI host), and a bit-equality
    audit. --smoke gates ONLY the audit; speedups are reported, never
    gated. Legacy bench-parallel/{1,2} artifacts convert with
    `numa-perf-tools bench migrate FILE`.

TELEMETRY (with --telemetry FILE):
    par.tasks      chunks executed
    par.steal      chunks executed beyond a worker's fair share
    par.idle_ns    per-pop idle time histogram
"
}

/// The `help bench` topic: the matrix harness and the regression gate.
pub fn bench_help() -> &'static str {
    "The matrix benchmark harness
============================

`bench` runs a declarative matrix of workload x threads x params cells
with warmup + repeat sampling and writes one versioned np-bench/1 JSON
report. One schema for every benchmark artifact: the matrix harness,
`bench-parallel` and `loadgen` all emit it, and the diff/trend tooling
reads every era (legacy artifacts via `bench migrate`).

    numa-perf-tools bench [run] [--config FILE] [--threads N]
                          [--out FILE] [--md FILE] [--csv FILE] [--smoke]
    numa-perf-tools bench diff BASELINE [--current FILE] [--config FILE]
                          [--noise PCT] [--alpha P] [--md FILE]
    numa-perf-tools bench migrate LEGACY.json [--out FILE]
    numa-perf-tools bench trend HISTORY.jsonl | --append HISTORY.jsonl
    numa-perf-tools bench speedup [REPORT.json] [--current FILE]

CONFIG (TOML subset or JSON):
    machine = \"two-socket\"        # dl580 | two-socket | ring | file.json
    warmup  = 1                   # unrecorded runs per cell
    repeats = 3                   # recorded samples per cell
    seed    = 1
    threads = [1, 2, 4]           # global thread axis

    [[cell]]
    workload = \"campaign\"         # campaign | memhist-ladder |
    size     = 48                 # phasen-scan | correlate-sweep |
    reps     = 6                  # analysis-sweep | loadgen

    Any numeric key becomes a cell param; a per-cell `threads = [...]`
    overrides the global axis. Without --config, the built-in smoke
    matrix runs every driver at small sizes (the CI gate shape).

DETERMINISM CONTRACT:
    Everything except the wall-time samples is a pure function of
    (config, seed, machine): cell identity, result digests, audits and
    det_-prefixed metrics. --threads is outer parallelism across cells
    (cells merge in matrix order); it can change wall times, never the
    report structure. Worker threads inside a cell start behind a
    barrier so samples never fold spawn skew into the measured wall.

THE DIFF GATE (CI):
    Deterministic fields hard-fail on any change: a missing cell, a
    digest change, a failed audit, a drifted det_ metric. Wall time is
    judged statistically: a cell regresses only when its mean moved
    outside the noise band (--noise, percent) AND Welch's t-test calls
    the shift significant at --alpha. Single-sample baselines (migrated
    legacy artifacts) gate on the band alone. Regressions exit 2;
    improvements and new cells pass. Committed baselines live under
    baselines/ (see EXPERIMENTS.md for the recording procedure).

THE SPEEDUP GATE (multi-core CI):
    `bench speedup` compares every multi-threaded cell of one report to
    its own single-thread cell: measured speedup = mean(t1)/mean(tk).
    Cells that publish a modeled_speedup metric (campaign,
    analysis-sweep — the pooled simulator paths) are gated: measured
    must exceed 1.0x or the command exits 2. Self-contained within one
    run, so cross-host clock noise can neither fake nor mask a result;
    on hosts with < 2 hardware threads it prints SKIP and passes, which
    keeps the gate meaningful exactly where parallelism exists.

TREND:
    `bench trend --append HISTORY.jsonl` appends the current run as one
    compact JSON line and renders a per-cell mean-ms table across runs
    with an oldest->newest drift column — the nightly workflow keeps
    this file as its bench-history artifact.
"
}

/// The `help top` topic: the live telemetry view.
pub fn top_help() -> &'static str {
    "The live telemetry view
=======================

`top` is NUMAscope for the simulated machine: a producer thread runs
the selected workload in a loop with the time-series sampler switched
on, and the foreground redraws a plain ANSI frame (no TUI dependency)
with per-node event rates and the active phase.

    numa-perf-tools top [--workload NAME] [--machine NAME]
                        [--ticks N] [--interval MS]

COLUMNS:
    series     sim.node<N>.<event> — one row per NUMA node per event
               (local_dram, remote_dram, qpi, hitm, l3_miss, dtlb_miss)
    rate/s     events per second: the delta of the cumulative series
               since the previous frame, scaled by --interval
    total      the cumulative count since `top` started
    bins       ring-buffer bins currently held for the series

DETERMINISM:
    The sampler timestamps are simulated cycles, never wall clock —
    `top` itself sits in the linter's no-wall-clock scope; pacing comes
    from thread::sleep and the tick counter only. The default workload
    is row-major at size 4096, large enough that the engine's timeslice
    hook fires at the default granularity.

EXAMPLES:
    numa-perf-tools top
    numa-perf-tools top --workload column-major --ticks 30 --interval 250
"
}

/// The `help report` topic: captures and the HTML report.
pub fn report_help() -> &'static str {
    "Captures and the HTML report
============================

`run --sample` records a campaign as a *capture*: every per-node
hardware-event series, delta-encoded into ring-buffer bins with phase
attribution, timestamped in simulated cycles. The capture is
deterministic — the same plan produces a byte-identical JSON file at
ANY --threads, because each repetition samples into its own local
sampler and the results merge in repetition order.

    numa-perf-tools run --sample --workload sort --size 4096 \\
        --out CAPTURE.json [--timeline TIMELINE.json] [--save NAME]
    numa-perf-tools report --capture CAPTURE.json
    numa-perf-tools report --capture CAPTURE.json --html --out REPORT.html

CAPTURE (schema np-capture/1):
    series   rep<R>.node<N>.<event> — per-repetition, per-node series
             with per-bin count/sum/min/max and a phase index
    phases   the phase-name table the series index into
    --save   archives the capture in the --session directory next to
             the measurement run sets (`archives` lists both)

TIMELINE (schema np-timeline/1):
    --timeline on `run` writes the pool's worker-chunk profile: which
    worker ran which chunk, queue wait and duration. Wall-clock based,
    so it lives in a separate file and never contaminates the capture.

HTML REPORT (--html):
    a single self-contained file — inline CSS + SVG, no JavaScript, no
    external assets: phase-banded sparklines per series, a per-bin
    intensity heatmap, and (when --timeline is given) the worker gantt.
    Safe to park in a CI artifact store and open anywhere.
"
}

/// The `help patterns` topic: performance-pattern identification.
pub fn patterns_help() -> &'static str {
    "Performance-pattern identification
==================================

The paper's indicators say *what* the counters measured; `patterns`
says what the numbers *mean*. The np-patterns crate maps an indicator
vector to six named performance patterns through a declarative
signature table — each pattern is a conjunction of threshold rules over
derived per-mille metrics — and proves the mapping against the labeled
workload registry on every CI run.

    numa-perf-tools patterns --workload stream-bound --machine two-socket
    numa-perf-tools patterns --capture CAPTURE.json
    numa-perf-tools patterns --verify [--threads N] [--out PATTERNS.json]

PATTERNS (badge / name / canonical symptom):
    BW   bandwidth-bound   DRAM request rate at the machine's saturated
                           ceiling with deep memory stalls
    LAT  latency-bound     deep stalls at a *low* request rate —
                           dependent loads waiting out the latency
    SHR  false-sharing     HITM cache-to-cache transfers per retired
                           memory op (threads ping-ponging dirty lines)
    RMT  numa-imbalance    a high remote share of DRAM requests with
                           the traffic concentrated on one controller
    TLB  tlb-thrashing     dTLB misses per retired k-instruction beyond
                           what any sequential walk produces
    SKW  load-imbalance    per-node retired-instruction skew over the
                           active nodes

METRICS (integer per-mille, deterministic at any thread count):
    remote_ratio, dram_per_kcycle, mem_stall_frac, hitm_per_kop,
    dtlb_mpki, imc_skew (count-normalised concentration), work_skew.
    A metric whose denominator is absent is *unavailable*: its rules
    cannot fire and the evidence says why.

CONFIDENCE:
    the weakest rule's margin beyond (or short of) its threshold sets a
    base score; with `--workload`, the np-analysis static envelope of
    the pattern's primary event blends in as a prior — a verdict backed
    by a tight envelope outranks one the static pass can barely bound.
    Capture slices carry no program, so phase verdicts skip the prior.

MODES:
    --workload NAME    one registry run on --machine: full metric table,
                       all six verdicts with evidence, fired vs expected
    --capture FILE     per-phase attribution over an np-capture/1
                       timeline (from `run --sample`) — the same rules
                       applied to each phase slice; `report --html`
                       renders the verdicts as a chip band and `top`
                       shows live per-node badges on these thresholds
    --verify           the calibration proof: all 24 registry workloads
                       x {two-socket, ring} x {2, 4} threads on the
                       quiet simulator must recover their labels
                       *exactly* — a missed pattern and a spurious one
                       both exit 2. Runs as a tier-1 CI stage.

ARTIFACT (np-patterns/1, written to --out):
    cases[] with per-metric values, per-rule evidence, fired/expected/
    matched; phases[] in capture mode. Integers only, fixed ordering:
    byte-identical at any --threads for the same inputs.
"
}

#[cfg(test)]
mod tests {
    #[test]
    fn help_topics_cover_analysis() {
        assert!(super::usage().contains("help analyze"));
        assert!(super::usage().contains("help lint"));
        assert!(super::usage().contains("help audit"));
        assert!(super::analyze_help().contains("DIFFERENTIAL PROOF"));
        for rule in [
            "no-panic",
            "bounded-reads",
            "relaxed-ordering",
            "guarded-telemetry",
            "no-wall-clock",
        ] {
            assert!(super::lint_help().contains(rule), "missing rule {rule}");
        }
        for rule in [
            "lock-order",
            "condvar-discipline",
            "atomics-ordering",
            "hot-path-hygiene",
            "unsafe-safety",
            "no-panic-reachable",
        ] {
            assert!(super::audit_help().contains(rule), "missing rule {rule}");
        }
    }

    #[test]
    fn help_topics_cover_resilience() {
        assert!(super::usage().contains("help resilience"));
        assert!(super::usage().contains("help telemetry"));
        assert!(super::resilience_help().contains("probe.accept"));
        assert!(super::resilience_help().contains("degraded"));
    }

    #[test]
    fn help_topics_cover_the_exchange() {
        assert!(super::usage().contains("help serve"));
        assert!(super::usage().contains("help loadgen"));
        for term in ["put", "query", "predict", "serve.accept", "serve.cache"] {
            assert!(super::serve_help().contains(term), "missing term {term}");
        }
        for term in ["--smoke", "BENCH_serve.json", "audit", "cache speedup"] {
            assert!(super::loadgen_help().contains(term), "missing term {term}");
        }
    }

    #[test]
    fn help_topics_cover_the_worker_pool() {
        assert!(super::usage().contains("help parallel"));
        assert!(super::usage().contains("bench-parallel"));
        for term in [
            "bit-identical",
            "submission order",
            "Seeded",
            "Replay",
            "baselines/bench-parallel.json",
            "par.steal",
            "no-wall-clock",
        ] {
            assert!(super::parallel_help().contains(term), "missing term {term}");
        }
        // The telemetry topic names the pool's metric family.
        assert!(super::telemetry_help().contains("par."));
    }

    #[test]
    fn help_topics_cover_the_bench_harness() {
        assert!(super::usage().contains("help bench"));
        assert!(super::usage().contains("BENCH_matrix.json"));
        assert!(super::usage().contains("--noise"));
        for term in [
            "np-bench/1",
            "[[cell]]",
            "Welch",
            "--alpha",
            "baselines/",
            "bench migrate",
            "--append",
            "DETERMINISM CONTRACT",
        ] {
            assert!(super::bench_help().contains(term), "missing term {term}");
        }
        // The sibling topics point at the unified schema too.
        assert!(super::loadgen_help().contains("np-bench/1"));
        assert!(super::parallel_help().contains("np-bench/1"));
    }

    #[test]
    fn help_topics_cover_pattern_identification() {
        assert!(super::usage().contains("help patterns"));
        assert!(super::usage().contains("--verify"));
        for term in [
            "bandwidth-bound",
            "latency-bound",
            "false-sharing",
            "numa-imbalance",
            "tlb-thrashing",
            "load-imbalance",
            "np-patterns/1",
            "imc_skew",
            "exit 2",
        ] {
            assert!(super::patterns_help().contains(term), "missing term {term}");
        }
    }

    #[test]
    fn help_topics_cover_the_timeseries_layer() {
        assert!(super::usage().contains("help top"));
        assert!(super::usage().contains("help report"));
        for term in ["rate/s", "no-wall-clock", "sim.node"] {
            assert!(super::top_help().contains(term), "missing term {term}");
        }
        for term in [
            "np-capture/1",
            "np-timeline/1",
            "byte-identical",
            "--html",
            "no JavaScript",
        ] {
            assert!(super::report_help().contains(term), "missing term {term}");
        }
    }
}
