//! The `numa-perf-tools` command-line front-end.
//!
//! A perf-style driver over the tool suite: every analysis in the paper is
//! one subcommand away. Argument parsing is hand-rolled (the CLI surface
//! is small and the workspace keeps its dependency set tight).

pub mod args;
pub mod commands;
pub mod workloads;

pub use args::{Cli, Command};

/// Runs the CLI with the given arguments (excluding the program name);
/// returns the text to print or a usage error.
pub fn run(argv: &[String]) -> Result<String, String> {
    let cli = Cli::parse(argv)?;
    let observed = cli.telemetry.is_some() || cli.trace.is_some();
    if observed {
        np_telemetry::set_enabled(true);
    }
    if cli.trace.is_some() {
        np_telemetry::set_tracing(true);
    }
    np_telemetry::counter!("cli.commands").inc();
    let mut output = {
        let _span = np_telemetry::span!("cli.execute", "cli");
        commands::execute(&cli)?
    };
    if observed {
        if let Some(section) = np_core::report::telemetry_section() {
            output.push_str(&section);
        }
    }
    if let Some(path) = &cli.telemetry {
        let json = np_telemetry::global().snapshot().to_json();
        std::fs::write(path, json + "\n")
            .map_err(|e| format!("cannot write telemetry snapshot '{path}': {e}"))?;
    }
    if let Some(path) = &cli.trace {
        std::fs::write(path, np_telemetry::export_chrome_trace())
            .map_err(|e| format!("cannot write trace '{path}': {e}"))?;
    }
    Ok(output)
}

/// The usage text.
pub fn usage() -> &'static str {
    "numa-perf-tools — NUMA performance assessment on a simulated machine

USAGE:
    numa-perf-tools <COMMAND> [OPTIONS]

COMMANDS:
    table1      print the simulated test-system specification (Table I)
    catalog     print the hardware event catalog (--json for EvSel's format)
    stat        measure a workload and print all counters (EvSel single set)
    compare     EvSel comparison of two workloads (-a NAME -b NAME)
    sweep       EvSel thread-count sweep with regressions (Fig. 9 style)
    memhist     load-latency histogram (Fig. 10; --costs for cost mode)
    phasen      phase detection and per-phase counters (Fig. 11)
    annotate    per-source-region event attribution (events-to-code)
    objprof     object-relative memory profile (per-allocation stats)
    balance     NUMA node balance report
    mlc         node-to-node latency matrix (Intel-mlc analogue)
    c2c         cacheline contention report (perf-c2c analogue)
    diff        compare two recorded archives (-a NAME -b NAME)
    archives    list recorded measurement archives

OPTIONS:
    --machine NAME     dl580 (default) | two-socket | ring
    --workload NAME    row-major | column-major | sort | sift | sift-naive |
                       mlc-local | mlc-remote | stream-local | stream-bound |
                       stream-interleaved | chrome | bsp | matmul
    -a NAME, -b NAME   workloads for `compare`
    --size N           workload size parameter (elements / pixels / edge)
    --threads N        worker threads (default 4)
    --reps N           measurement repetitions (default 3)
    --seed N           base seed (default 1)
    --costs            memhist: weight bins by latency
    --multiplexed      acquire via timeslice multiplexing instead of
                       repeated batched runs
    --json             catalog: emit JSON
    --save NAME        stat: record the measurement as an archive
    --session DIR      archive directory (default .np-session)
    --telemetry FILE   write the tools' own metrics snapshot as JSON
                       (see `numa-perf-tools help telemetry`)
    --trace FILE       write a Chrome-trace of internal spans
                       (load in chrome://tracing or ui.perfetto.dev)

EXAMPLES:
    numa-perf-tools compare -a row-major -b column-major --size 1024
    numa-perf-tools memhist --workload sift --machine dl580
    numa-perf-tools sweep --workload sort --size 65536
    numa-perf-tools balance --workload stream-bound

HELP TOPICS:
    numa-perf-tools help telemetry    observing the tools themselves
"
}

/// The `help telemetry` topic: observing the tool suite itself.
pub fn telemetry_help() -> &'static str {
    "Observing the tools themselves
==============================

The suite carries its own zero-dependency metrics layer (np-telemetry).
It is off by default and costs one relaxed atomic load per
instrumentation site while off. Two global flags turn it on:

    --telemetry FILE   enable metrics; after the command finishes, write
                       a JSON snapshot of every counter, gauge and
                       latency histogram to FILE, and append a
                       `== tool telemetry ==` section to the report
    --trace FILE       additionally buffer every internal span and write
                       a Chrome-trace JSON array to FILE; open it in
                       chrome://tracing or https://ui.perfetto.dev

WHAT IS RECORDED:
    sim.*       simulator throughput: runs, instructions, cycles,
                per-NUMA-node memory ops, cache/coherence event totals
    acq.*       acquisition: sim runs executed, batched register runs,
                multiplexed timeslices, PEBS threshold rotations
    runner.*    campaigns, repetitions, rayon fan-out occupancy
    session.*   archive saves/loads and bytes written/read
    probe.*     Memhist TCP probe: requests, bytes on wire, per-
                connection errors, request latency
    span.*      wall-time histograms (ns) for every traced region

EXAMPLES:
    numa-perf-tools stat -w sift --telemetry tele.json
    numa-perf-tools compare -a row-major -b column-major \\
        --telemetry tele.json --trace trace.json
"
}
