//! The CLI's workload registry.
//!
//! The name-to-workload table itself lives in `np_workloads::registry`
//! (shared with the `np bench` matrix harness); this module re-exports it
//! and keeps the CLI-presentation extras (region and object names).

pub use np_workloads::registry::{build, NAMES};

/// Region names for `annotate`, where a workload declares regions.
pub fn region_names(name: &str) -> Vec<(u32, &'static str)> {
    use np_workloads::{cache_miss, parallel_sort};
    match name {
        "row-major" | "column-major" => vec![
            (cache_miss::regions::FILL, "fill loop"),
            (cache_miss::regions::READ, "alternating-sum read"),
        ],
        "sort" => vec![
            (parallel_sort::regions::FILL, "fill (Listing 3)"),
            (parallel_sort::regions::LOCAL_SORT, "local sort"),
            (parallel_sort::regions::EXCHANGE, "exchange"),
            (parallel_sort::regions::MERGE, "final merge"),
            (parallel_sort::regions::RUNTIME, "runtime/barriers"),
        ],
        _ => Vec::new(),
    }
}

/// Object (allocation) names for `objprof`, in allocation order.
pub fn object_names(name: &str) -> Vec<&'static str> {
    match name {
        "row-major" | "column-major" => vec!["array"],
        "sort" => vec!["data", "out", "progress words", "runtime bookkeeping"],
        "stream-local" | "stream-bound" | "stream-interleaved" => vec!["a", "b", "c"],
        "matmul" => vec!["A", "B", "C"],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_reexport_builds() {
        let machine = np_simulator::MachineConfig::two_socket_small();
        assert!(build("row-major", Some(64), 1, &machine).is_ok());
        assert!(NAMES.contains(&"matmul"));
    }

    #[test]
    fn labelled_workloads_have_region_names() {
        assert!(!region_names("sort").is_empty());
        assert!(!region_names("column-major").is_empty());
        assert!(region_names("sift").is_empty());
    }
}
