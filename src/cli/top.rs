//! `np top`: a live, NUMAscope-style per-node telemetry view.
//!
//! A producer thread runs the selected workload in a loop on the
//! simulated machine with global sampling switched on; the engine's
//! timeslice hook feeds cumulative `sim.node<N>.<event>` series into
//! the global sampler. The foreground loop redraws a plain ANSI frame
//! (`ESC[2J ESC[H` — no TUI dependency) every `--interval` ms for
//! `--ticks` frames, showing per-node event rates and the active phase.
//!
//! This file sits in the linter's no-wall-clock scope: pacing comes
//! from `thread::sleep` and the tick counter, rates are deltas of the
//! sampler's simulated-cycle series between redraws — nothing here
//! branches on `Instant::now`.

use super::args::Cli;
use super::workloads;
use np_simulator::MachineSim;
use np_telemetry::timeseries::{self, Sampler};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;

/// Per-series cumulative sums of the previous frame, for rate deltas.
type Totals = BTreeMap<String, u64>;

/// Per-node pattern badges from the snapshot's cumulative
/// `sim.node<N>.<event>` totals: each node's vector goes through the
/// np-patterns node-local signature subset, so a `BW` here and a
/// bandwidth-bound verdict in `np patterns` sit on the same thresholds.
fn badge_rows(sampler: &Sampler) -> Vec<(usize, String)> {
    let mut nodes: Vec<np_patterns::NodeVector> = Vec::new();
    for (name, series) in sampler.iter() {
        let Some(rest) = name.strip_prefix("sim.") else {
            continue;
        };
        let mut parts = rest.split('.');
        let (Some(node), Some(short), None) = (parts.next(), parts.next(), parts.next()) else {
            continue;
        };
        let Some(id) = node
            .strip_prefix("node")
            .and_then(|n| n.parse::<usize>().ok())
        else {
            continue;
        };
        if nodes.len() <= id {
            nodes.resize(id + 1, np_patterns::NodeVector::default());
        }
        nodes[id].add(short, series.total_sum());
    }
    nodes
        .iter()
        .enumerate()
        .map(|(id, n)| (id, np_patterns::node_badges(n)))
        .collect()
}

/// Renders one frame (without ANSI control codes — the caller prepends
/// the clear sequence). Pure, so tests can pin the layout.
pub fn render_frame(
    sampler: &Sampler,
    prev: &Totals,
    tick: usize,
    ticks: usize,
    interval_ms: u64,
) -> (String, Totals) {
    let mut out = format!(
        "np top — live NUMA telemetry   tick {}/{}   phase: {}\n\n",
        tick,
        ticks,
        timeseries::active_phase()
    );
    out.push_str(&format!(
        "{:<32} {:>14} {:>14} {:>6}\n",
        "series", "rate/s", "total", "bins"
    ));
    // events per second = per-tick delta scaled by the redraw interval.
    let per_sec = 1e3 / interval_ms.max(1) as f64;
    let mut next = Totals::new();
    if sampler.is_empty() {
        out.push_str("  (no samples yet)\n");
    }
    for (name, series) in sampler.iter() {
        let total = series.total_sum();
        let delta = total.saturating_sub(prev.get(name).copied().unwrap_or(0));
        next.insert(name.to_string(), total);
        out.push_str(&format!(
            "{:<32} {:>14.0} {:>14} {:>6}\n",
            name,
            delta as f64 * per_sec,
            total,
            series.bins.len()
        ));
    }
    let badges = badge_rows(sampler);
    if !badges.is_empty() {
        out.push_str(&format!("\n{:<6} patterns\n", "node"));
        for (id, badge) in badges {
            out.push_str(&format!("{id:<6} {badge}\n"));
        }
    }
    (out, next)
}

/// `np top` entry point: bounded redraw loop over a background workload.
pub fn run_top(cli: &Cli) -> Result<String, String> {
    let machine = cli.machine_config()?;
    // `top` is a live view, not a measurement: default to a workload
    // with visible NUMA traffic instead of demanding --workload.
    let name = cli.workload.as_deref().unwrap_or("row-major");
    let size = cli.size.or(Some(4096));
    let w = workloads::build(name, size, cli.threads, &machine)?;
    let program = w.build(&machine);

    timeseries::reset_global_sampler(timeseries::GLOBAL_CAPACITY);
    timeseries::set_sampling(true);
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let seed = cli.seed;
    let sim = MachineSim::new(machine);
    let producer = std::thread::spawn(move || {
        let _phase = np_telemetry::phase("simulate");
        let mut rep = 0u64;
        while !stop2.load(SeqCst) {
            let _ = sim.run(&program, seed + rep);
            rep += 1;
        }
        rep
    });

    let ticks = cli.ticks.clamp(1, 10_000);
    let mut prev = Totals::new();
    let mut last_frame = String::new();
    for tick in 1..=ticks {
        std::thread::sleep(std::time::Duration::from_millis(cli.interval_ms.max(1)));
        let snapshot = timeseries::global_sampler_snapshot();
        let (frame, next) = render_frame(&snapshot, &prev, tick, ticks, cli.interval_ms);
        prev = next;
        // Clear screen + home, then the frame — classic watch(1) redraw.
        print!("\x1b[2J\x1b[H{frame}");
        last_frame = frame;
    }
    stop.store(true, SeqCst);
    let reps = producer
        .join()
        .map_err(|_| "top: producer thread panicked")?;
    timeseries::set_sampling(false);

    Ok(format!(
        "np top: {} tick(s) over {} simulated run(s) of {} — final frame:\n\n{last_frame}",
        ticks, reps, name
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_frame_shows_rates_and_phase() {
        let mut s = Sampler::new(16);
        s.record_cumulative("sim.node0.qpi", 1_000, 40);
        s.record_cumulative("sim.node0.qpi", 2_000, 100);
        let (frame, totals) = render_frame(&s, &Totals::new(), 1, 4, 100);
        assert!(frame.contains("tick 1/4"));
        assert!(frame.contains("sim.node0.qpi"));
        assert_eq!(totals.get("sim.node0.qpi"), Some(&100));
        // Second frame rates against the remembered totals.
        s.record_cumulative("sim.node0.qpi", 3_000, 130);
        let (frame, _) = render_frame(&s, &totals, 2, 4, 100);
        assert!(frame.contains("tick 2/4"));
        assert!(frame.contains("30"), "{frame}");
    }

    #[test]
    fn empty_sampler_renders_a_placeholder() {
        let (frame, _) = render_frame(&Sampler::new(4), &Totals::new(), 1, 1, 50);
        assert!(frame.contains("no samples yet"));
    }

    #[test]
    fn badge_column_flags_a_remote_heavy_node() {
        let mut s = Sampler::new(16);
        // Node 0: almost everything it loads is remote -> RMT badge.
        s.record_cumulative("sim.node0.instructions", 1_000, 100_000);
        s.record_cumulative("sim.node0.cycles", 1_000, 200_000);
        s.record_cumulative("sim.node0.mem_stall", 1_000, 20_000);
        s.record_cumulative("sim.node0.load", 1_000, 50_000);
        s.record_cumulative("sim.node0.local_dram", 1_000, 100);
        s.record_cumulative("sim.node0.remote_dram", 1_000, 900);
        // Node 1: healthy local traffic -> dash.
        s.record_cumulative("sim.node1.instructions", 1_000, 100_000);
        s.record_cumulative("sim.node1.cycles", 1_000, 200_000);
        s.record_cumulative("sim.node1.load", 1_000, 50_000);
        s.record_cumulative("sim.node1.local_dram", 1_000, 900);
        let (frame, _) = render_frame(&s, &Totals::new(), 1, 1, 100);
        assert!(frame.contains("node   patterns"), "{frame}");
        assert!(frame.contains("0      RMT"), "{frame}");
        assert!(frame.contains("1      -"), "{frame}");
        // Non-node series never grow a badge row.
        assert!(!frame.contains("2      "), "{frame}");
    }
}
