//! Command implementations for the CLI.

use super::args::{Cli, Command};
use super::{report, top, workloads};
use np_core::annotate::{annotate, RegionNames};
use np_core::balance::BalanceReport;
use np_core::capture::{Capture, Timeline, CAPTURE_SCHEMA};
use np_core::evsel::{EvSel, ParameterSweep};
use np_core::memhist::{HistogramMode, Memhist};
use np_core::objprof;
use np_core::phasen::Phasenpruefer;
use np_core::runner::{MeasurementPlan, Runner};
use np_counters::catalog::EventCatalog;
use np_simulator::{HwEvent, MachineSim};
use np_workloads::mlc;

/// Executes a parsed command line.
pub fn execute(cli: &Cli) -> Result<String, String> {
    match cli.command {
        Command::Table1 => table1(cli),
        Command::Catalog => catalog(cli),
        Command::Stat => stat(cli),
        Command::Compare => compare(cli),
        Command::Sweep => sweep(cli),
        Command::Memhist => memhist(cli),
        Command::Phasen => phasen(cli),
        Command::Annotate => annotate_cmd(cli),
        Command::Objprof => objprof_cmd(cli),
        Command::Balance => balance(cli),
        Command::Mlc => mlc_cmd(cli),
        Command::Diff => diff(cli),
        Command::Archives => archives(cli),
        Command::C2c => c2c(cli),
        Command::Analyze => analyze_cmd(cli),
        Command::Lint => lint_cmd(cli),
        Command::Audit => audit_cmd(cli),
        Command::Serve => serve_cmd(cli),
        Command::Loadgen => loadgen_cmd(cli),
        Command::BenchParallel => bench_parallel_cmd(cli),
        Command::Bench => bench_cmd(cli),
        Command::Run => run_cmd(cli),
        Command::Top => top::run_top(cli),
        Command::Report => report_cmd(cli),
        Command::Patterns => patterns_cmd(cli),
    }
}

/// `np run --sample`: a seeded measurement campaign with a deterministic
/// per-node time-series capture. Writes the capture JSON to `--out`
/// (byte-identical for the same plan at ANY `--threads`), optionally the
/// pool worker timeline to `--timeline`, and `--save NAME` records the
/// capture in the session archive next to the run sets.
fn run_cmd(cli: &Cli) -> Result<String, String> {
    if !cli.sample {
        return Err("run needs --sample (for an unsampled measurement, use `stat`)".to_string());
    }
    let machine = cli.machine_config()?;
    let name = workload_name(cli)?;
    let w = workloads::build(name, cli.size, cli.threads, &machine)?;
    let runner = Runner::new(machine).with_threads(cli.threads.max(1));
    let campaign = runner.measure_sampled(w.as_ref(), &plan(cli), cli.capacity.max(2))?;
    let cap = Capture::from_sampler(&cli.machine, name, cli.seed, cli.reps, &campaign.sampler);
    let json =
        serde_json::to_string_pretty(&cap).map_err(|e| format!("run: serialize capture: {e}"))?;
    std::fs::write(&cli.out, json + "\n")
        .map_err(|e| format!("run: cannot write '{}': {e}", cli.out))?;
    let mut out = format!(
        "sampled campaign: {} on {} ({} repetition(s), {} worker(s))\n\
         capture: {} series, {} phase(s) -> {}\n",
        name,
        cli.machine,
        cli.reps,
        campaign.workers,
        cap.series.len(),
        cap.phases.len(),
        cli.out
    );
    if let Some(tl_path) = &cli.timeline {
        let tl = Timeline::from_profile(campaign.workers, &campaign.profile);
        let json = serde_json::to_string_pretty(&tl)
            .map_err(|e| format!("run: serialize timeline: {e}"))?;
        std::fs::write(tl_path, json + "\n")
            .map_err(|e| format!("run: cannot write '{tl_path}': {e}"))?;
        out.push_str(&format!(
            "timeline: {} chunk(s) across {} worker(s) -> {tl_path}\n",
            tl.chunk.len(),
            tl.workers
        ));
    }
    if let Some(save) = &cli.save {
        session(cli)?
            .save_capture(save, &cap)
            .map_err(|e| format!("run: save capture: {e}"))?;
        out.push_str(&format!(
            "archived as capture '{save}' in {}\n",
            cli.session
        ));
    }
    Ok(out)
}

/// `np report`: render a capture (from `np run --sample`) as a text
/// summary, or with `--html` as a self-contained single-file HTML report
/// written to `--out`.
fn report_cmd(cli: &Cli) -> Result<String, String> {
    let path = cli
        .capture
        .as_deref()
        .ok_or("report needs --capture FILE (from `run --sample`)")?;
    let json =
        std::fs::read_to_string(path).map_err(|e| format!("report: cannot read '{path}': {e}"))?;
    let cap: Capture = serde_json::from_str(&json)
        .map_err(|e| format!("report: invalid capture '{path}': {e}"))?;
    if cap.schema != CAPTURE_SCHEMA {
        return Err(format!(
            "report: '{path}' has schema '{}' (this build reads '{CAPTURE_SCHEMA}')",
            cap.schema
        ));
    }
    let timeline = match &cli.timeline {
        Some(tl_path) => {
            let json = std::fs::read_to_string(tl_path)
                .map_err(|e| format!("report: cannot read '{tl_path}': {e}"))?;
            Some(
                serde_json::from_str::<Timeline>(&json)
                    .map_err(|e| format!("report: invalid timeline '{tl_path}': {e}"))?,
            )
        }
        None => None,
    };
    if cli.html {
        let html = report::html_report(&cap, timeline.as_ref());
        std::fs::write(&cli.out, html)
            .map_err(|e| format!("report: cannot write '{}': {e}", cli.out))?;
        Ok(format!(
            "HTML report ({} series, {} phase(s)) written to {}\n",
            cap.series.len(),
            cap.phases.len(),
            cli.out
        ))
    } else {
        Ok(report::text_summary(&cap, timeline.as_ref()))
    }
}

/// `np patterns`: the performance-pattern identification engine.
///
/// Three modes:
/// * `--verify` re-proves every registry label on both quiet machine
///   presets at 2 and 4 threads; any mismatch is an error (exit 2). The
///   full `np-patterns/1` document lands in `--out` either way, so CI
///   keeps the artifact even for a red run.
/// * `--capture FILE` classifies each phase slice of an `np-capture/1`
///   timeline — attribution without re-running anything (and without
///   envelope priors: no program is in hand).
/// * `--workload NAME` classifies one registry workload on `--machine`
///   with the np-analysis envelope priors of that very program.
fn patterns_cmd(cli: &Cli) -> Result<String, String> {
    if cli.verify {
        patterns_verify(cli)
    } else if cli.capture.is_some() {
        patterns_capture(cli)
    } else {
        patterns_single(cli)
    }
}

/// Writes the `np-patterns/1` document to `--out` and returns the body
/// to print: the pretty JSON itself under `--json`, else `text`.
fn patterns_emit(
    cli: &Cli,
    doc: &np_patterns::PatternsDoc,
    text: String,
) -> Result<String, String> {
    let json = serde_json::to_string_pretty(doc)
        .map_err(|e| format!("patterns: serialize document: {e}"))?
        + "\n";
    std::fs::write(&cli.out, &json)
        .map_err(|e| format!("patterns: cannot write '{}': {e}", cli.out))?;
    Ok(if cli.json { json } else { text })
}

/// One verdict line: `bandwidth-bound   fired  conf 812  dram_per_kcycle >= 34 (38)`.
fn patterns_verdict_lines(out: &mut String, verdicts: &[np_patterns::Verdict], indent: &str) {
    for v in verdicts {
        let evidence: Vec<String> = v
            .evidence
            .iter()
            .map(|e| {
                if e.available {
                    format!(
                        "{} {} {} ({})",
                        e.metric, e.op, e.threshold_pm, e.observed_pm
                    )
                } else {
                    format!("{} unavailable", e.metric)
                }
            })
            .collect();
        out.push_str(&format!(
            "{indent}{:<16} {:>5}  conf {:>4}  {}\n",
            v.pattern,
            if v.fired { "FIRED" } else { "-" },
            v.confidence_pm,
            evidence.join(", ")
        ));
    }
}

/// Renders one classified case for the text report.
fn patterns_case_text(case: &np_patterns::CaseDoc) -> String {
    let mut out = format!(
        "pattern verdicts: {} on {} x{} (seed {})\n\n",
        case.workload, case.machine, case.threads, case.seed
    );
    out.push_str("  metric              value_pm\n");
    for m in &case.metrics {
        if m.available {
            out.push_str(&format!("  {:<18} {:>9}\n", m.metric, m.value_pm));
        } else {
            out.push_str(&format!("  {:<18} {:>9}\n", m.metric, "n/a"));
        }
    }
    out.push('\n');
    patterns_verdict_lines(&mut out, &case.verdicts, "  ");
    out.push_str(&format!(
        "\n  fired:    [{}]\n  expected: [{}]  {}\n",
        case.fired.join(", "),
        case.expected.join(", "),
        if case.matched { "MATCH" } else { "MISMATCH" }
    ));
    out
}

/// `np patterns --verify`: the full labeled-registry sweep.
fn patterns_verify(cli: &Cli) -> Result<String, String> {
    let pool = np_parallel::Pool::new(cli.threads.max(1));
    let outcome = np_patterns::sweep(&pool, cli.seed);
    let machines: Vec<String> = np_patterns::sweep_machines()
        .iter()
        .map(|(label, _)| label.to_string())
        .collect();
    let threads: Vec<String> = np_patterns::SWEEP_THREADS
        .iter()
        .map(|t| t.to_string())
        .collect();
    let mut text = format!(
        "pattern verification sweep: {} case(s) — {{{}}} x {{{}}} thread(s) x {} workload(s), seed {}\n",
        outcome.doc.total_cases,
        machines.join(", "),
        threads.join(", "),
        workloads::NAMES.len(),
        cli.seed
    );
    text.push_str(&format!("document -> {}\n", cli.out));
    if outcome.failures.is_empty() {
        text.push_str("every expected pattern recovered (0 mismatches)\n");
        patterns_emit(cli, &outcome.doc, text)
    } else {
        // Still park the artifact: a red sweep's evidence is the thing
        // you want to look at.
        patterns_emit(cli, &outcome.doc, String::new())?;
        Err(format!(
            "pattern verification failed ({} of {} case(s)):\n{}",
            outcome.failures.len(),
            outcome.doc.total_cases,
            outcome.failures.join("\n")
        ))
    }
}

/// `np patterns --capture FILE`: per-phase attribution over a capture.
fn patterns_capture(cli: &Cli) -> Result<String, String> {
    let path = cli.capture.as_deref().unwrap_or_default();
    let json = std::fs::read_to_string(path)
        .map_err(|e| format!("patterns: cannot read '{path}': {e}"))?;
    let cap: Capture = serde_json::from_str(&json)
        .map_err(|e| format!("patterns: invalid capture '{path}': {e}"))?;
    if cap.schema != CAPTURE_SCHEMA {
        return Err(format!(
            "patterns: '{path}' has schema '{}' (this build reads '{CAPTURE_SCHEMA}')",
            cap.schema
        ));
    }
    let mut phases = Vec::with_capacity(cap.phases.len());
    for (idx, phase) in cap.phases.iter().enumerate() {
        let indicators = np_patterns::Indicators::from_capture_phase(&cap, idx);
        let metrics = np_patterns::derive(&indicators);
        let verdicts = np_patterns::classify(&metrics, None);
        let fired = np_patterns::fired_names(&verdicts);
        phases.push(np_patterns::PhaseDoc {
            phase: phase.clone(),
            metrics: np_patterns::metric_docs(&metrics),
            verdicts,
            fired,
        });
    }
    let doc = np_patterns::PatternsDoc::new(&cap.workload, Vec::new(), phases);
    let mut text = format!(
        "per-phase pattern attribution: {} on {} ({} phase(s))\n\n",
        cap.workload,
        cap.machine,
        doc.phases.len()
    );
    for p in &doc.phases {
        let label = if p.fired.is_empty() {
            "healthy".to_string()
        } else {
            p.fired.join(", ")
        };
        text.push_str(&format!("  phase {:<16} -> {label}\n", p.phase));
        patterns_verdict_lines(&mut text, &p.verdicts, "    ");
        text.push('\n');
    }
    text.push_str(&format!("document -> {}\n", cli.out));
    patterns_emit(cli, &doc, text)
}

/// `np patterns --workload NAME`: classify one registry workload.
fn patterns_single(cli: &Cli) -> Result<String, String> {
    let machine = cli.machine_config()?;
    let name = workload_name(cli)?;
    let w = workloads::build(name, cli.size, cli.threads, &machine)?;
    let program = w.build(&machine);
    let (metrics, verdicts) = np_patterns::classify_run(&program, &machine, cli.seed)?;
    let fired = np_patterns::fired_names(&verdicts);
    let expected: Vec<String> = np_workloads::registry::expected_patterns(name)
        .unwrap_or(&[])
        .iter()
        .map(|s| s.to_string())
        .collect();
    let matched = fired == expected;
    let case = np_patterns::CaseDoc {
        workload: name.to_string(),
        machine: cli.machine.clone(),
        threads: cli.threads as u64,
        seed: cli.seed,
        metrics: np_patterns::metric_docs(&metrics),
        verdicts,
        fired,
        expected,
        matched,
    };
    let mut text = patterns_case_text(&case);
    text.push_str(&format!("\ndocument -> {}\n", cli.out));
    let doc = np_patterns::PatternsDoc::new(name, vec![case], Vec::new());
    patterns_emit(cli, &doc, text)
}

/// `np bench-parallel`: compatibility shim over the `np bench` matrix
/// harness. The historical five-path pool benchmark (campaign, Memhist
/// ladder, Phasenprüfer pivot scan, correlation sweep, analysis sweep)
/// is now a matrix config run through [`np_bench::harness::run_matrix`],
/// so the artifact is the unified `np-bench/1` schema instead of the
/// retired hand-rolled `bench-parallel/2` JSON (old artifacts convert
/// with `np bench migrate`). `--smoke` still turns the bit-equality
/// audits into the exit status; speedup numbers are reported, never
/// gated (they depend on host cores).
fn bench_parallel_cmd(cli: &Cli) -> Result<String, String> {
    use np_bench::harness::config::{CellSpec, MatrixConfig};

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut thread_counts = vec![1usize, 2, 4, host];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    // --smoke shrinks every path so CI stays fast; the audit is identical.
    let (camp_reps, camp_size, ladder_size, foot_len) = if cli.smoke {
        (cli.reps.max(6), 48.0, 65536.0, 160.0)
    } else {
        (cli.reps.max(16), 96.0, 524288.0, 360.0)
    };
    let mut campaign = CellSpec::named("campaign");
    campaign.params.insert("size".to_string(), camp_size);
    campaign.params.insert("reps".to_string(), camp_reps as f64);
    let mut ladder = CellSpec::named("memhist-ladder");
    ladder.params.insert("size".to_string(), ladder_size);
    let mut phasen = CellSpec::named("phasen-scan");
    phasen.params.insert("footprint".to_string(), foot_len);
    let correlate = CellSpec::named("correlate-sweep");
    let mut analysis = CellSpec::named("analysis-sweep");
    analysis.params.insert("size".to_string(), camp_size);
    let cfg = MatrixConfig {
        machine: cli.machine.clone(),
        warmup: 0,
        repeats: 1,
        seed: cli.seed,
        threads: thread_counts.clone(),
        cells: vec![campaign, ladder, phasen, correlate, analysis],
    };

    let mut report = np_bench::harness::run_matrix(&cfg, cli.threads.max(1))?;
    report.bench_meta.tool = "bench-parallel".to_string();
    std::fs::write(&cli.out, report.to_json_pretty()?)
        .map_err(|e| format!("bench-parallel: cannot write '{}': {e}", cli.out))?;

    let audit_ok = report.audit_ok();
    let mut out = String::from("== deterministic worker-pool benchmark ==\n");
    out.push_str(&format!(
        "host threads {host}; thread counts {thread_counts:?}; \
         modeled speedup = sequential chunk-cost total / greedy makespan\n\n"
    ));
    out.push_str(&np_bench::harness::formats::live_table(&report));
    out.push_str("\nmodeled speedup:\n");
    for c in &report.cells {
        if let Some(s) = c.metrics.get("modeled_speedup") {
            out.push_str(&format!("  {:<24} {s:.2}x\n", c.id));
        }
    }
    out.push_str(&format!(
        "\naudit: {}\nsummary written to {} ({})\n",
        if audit_ok {
            "every pooled result bit-identical to sequential"
        } else {
            "DIVERGENCE detected"
        },
        cli.out,
        np_bench::harness::BENCH_SCHEMA,
    ));
    if cli.smoke {
        if audit_ok {
            out.push_str("smoke: OK\n");
        } else {
            return Err(format!("bench-parallel --smoke failed:\n{out}"));
        }
    }
    Ok(out)
}

/// `np bench`: the matrix harness front-end. The first positional word
/// picks the mode: `run` (default) executes a `--config` matrix (or the
/// built-in smoke matrix) and writes the `np-bench/1` report plus
/// optional `--md`/`--csv` renderings; `diff <baseline>` gates a current
/// run against a committed baseline (regressions exit 2); `migrate
/// <file>` folds legacy artifacts into the unified schema; `trend
/// <history>` renders (and with `--append` extends) a JSONL run history.
fn bench_cmd(cli: &Cli) -> Result<String, String> {
    let mode = cli.positional.first().map(String::as_str).unwrap_or("run");
    match mode {
        "run" => bench_run(cli),
        "diff" => bench_diff(cli),
        "migrate" => bench_migrate(cli),
        "trend" => bench_trend(cli),
        "speedup" => bench_speedup(cli),
        other => Err(format!(
            "bench: unknown mode '{other}' (run | diff | migrate | trend | speedup)"
        )),
    }
}

/// Loads `--config` (TOML subset or JSON), or the built-in smoke matrix.
fn bench_load_config(cli: &Cli) -> Result<np_bench::harness::MatrixConfig, String> {
    let cfg = match &cli.config {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("bench: cannot read config '{path}': {e}"))?;
            np_bench::harness::MatrixConfig::parse(&text)
                .map_err(|e| format!("bench: config '{path}': {e}"))?
        }
        None => np_bench::harness::MatrixConfig::smoke(),
    };
    cfg.validate().map_err(|e| format!("bench: {e}"))
}

/// Runs the configured matrix with `--threads` outer parallelism.
fn bench_execute(cli: &Cli) -> Result<np_bench::harness::BenchReport, String> {
    np_bench::harness::run_matrix(&bench_load_config(cli)?, cli.threads.max(1))
}

/// Reads an `np-bench/1` report from disk.
fn bench_read_report(path: &str) -> Result<np_bench::harness::BenchReport, String> {
    let json =
        std::fs::read_to_string(path).map_err(|e| format!("bench: cannot read '{path}': {e}"))?;
    np_bench::harness::BenchReport::from_json(&json).map_err(|e| format!("bench: '{path}': {e}"))
}

/// Writes the optional `--md` / `--csv` renderings of a report.
fn bench_write_renderings(
    cli: &Cli,
    report: &np_bench::harness::BenchReport,
    out: &mut String,
) -> Result<(), String> {
    if let Some(md) = &cli.md {
        std::fs::write(md, np_bench::harness::formats::markdown(report))
            .map_err(|e| format!("bench: cannot write '{md}': {e}"))?;
        out.push_str(&format!("markdown written to {md}\n"));
    }
    if let Some(csv) = &cli.csv {
        std::fs::write(csv, np_bench::harness::formats::csv(report))
            .map_err(|e| format!("bench: cannot write '{csv}': {e}"))?;
        out.push_str(&format!("csv written to {csv}\n"));
    }
    Ok(())
}

fn bench_run(cli: &Cli) -> Result<String, String> {
    let report = bench_execute(cli)?;
    std::fs::write(&cli.out, report.to_json_pretty()?)
        .map_err(|e| format!("bench: cannot write '{}': {e}", cli.out))?;
    let mut out = np_bench::harness::formats::live_table(&report);
    out.push_str(&format!(
        "report written to {} ({})\n",
        cli.out,
        np_bench::harness::BENCH_SCHEMA
    ));
    bench_write_renderings(cli, &report, &mut out)?;
    if cli.smoke {
        if report.audit_ok() {
            out.push_str("smoke: OK\n");
        } else {
            return Err(format!(
                "bench --smoke failed: a cell audit diverged\n{out}"
            ));
        }
    }
    Ok(out)
}

fn bench_diff(cli: &Cli) -> Result<String, String> {
    let baseline_path = cli
        .baseline
        .clone()
        .or_else(|| cli.positional.get(1).cloned())
        .ok_or("bench diff needs a baseline (`np bench diff <baseline.json>` or --baseline)")?;
    let baseline = bench_read_report(&baseline_path)?;
    let current = match &cli.current {
        Some(path) => bench_read_report(path)?,
        None => bench_execute(cli)?,
    };
    let d = np_bench::harness::diff_reports(&baseline, &current, cli.noise_pct, cli.alpha);
    let mut out = np_bench::harness::formats::diff_table(&d);
    if let Some(md) = &cli.md {
        std::fs::write(md, np_bench::harness::formats::diff_markdown(&d))
            .map_err(|e| format!("bench: cannot write '{md}': {e}"))?;
        out.push_str(&format!("markdown written to {md}\n"));
    }
    // A failing gate surfaces as Err, which main maps to exit code 2 —
    // the CI contract.
    match np_bench::harness::gate(&d) {
        Ok(()) => Ok(format!("{out}\ngate: OK ({} cell(s))\n", d.cells.len())),
        Err(e) => Err(format!("{out}\n{e}")),
    }
}

/// `np bench speedup [report.json]`: the measured-speedup gate. Judges
/// every multi-threaded cell of one report against its *own*
/// single-thread cell — no cross-host baseline, so wall-clock noise
/// between machines cannot fake or mask a result. Cells whose driver
/// publishes a modeled speedup (the pooled compute paths) must measure
/// strictly above 1.0; a pool slower than its sequential baseline exits
/// 2. On hosts with fewer than two hardware threads the gate reports
/// and skips — measured parallel speedup is physically impossible there.
fn bench_speedup(cli: &Cli) -> Result<String, String> {
    let report = match cli
        .current
        .clone()
        .or_else(|| cli.positional.get(1).cloned())
    {
        Some(path) => bench_read_report(&path)?,
        None => bench_execute(cli)?,
    };
    let rows = np_bench::harness::speedup_rows(&report);
    let mut out = np_bench::harness::speedup::render(&report, &rows);
    if !np_bench::harness::speedup::host_can_speed_up(&report) {
        out.push_str(
            "speedup: SKIP (recorded on a host with < 2 hardware threads; \
             the gate needs real parallelism)\n",
        );
        return Ok(out);
    }
    match np_bench::harness::gate_speedup(&rows) {
        Ok(()) => {
            let gated = rows.iter().filter(|r| r.gated).count();
            Ok(format!("{out}\nspeedup gate: OK ({gated} gated cell(s))\n"))
        }
        Err(e) => Err(format!("{out}\n{e}")),
    }
}

fn bench_migrate(cli: &Cli) -> Result<String, String> {
    let input = cli
        .positional
        .get(1)
        .ok_or("bench migrate needs an input file (`np bench migrate <legacy.json>`)")?;
    let json =
        std::fs::read_to_string(input).map_err(|e| format!("bench: cannot read '{input}': {e}"))?;
    let report = np_bench::harness::migrate::migrate_json(&json)?;
    std::fs::write(&cli.out, report.to_json_pretty()?)
        .map_err(|e| format!("bench: cannot write '{}': {e}", cli.out))?;
    Ok(format!(
        "migrated {} ({} cell(s), tool {}) -> {} ({})\n",
        input,
        report.cells.len(),
        report.bench_meta.tool,
        cli.out,
        np_bench::harness::BENCH_SCHEMA
    ))
}

fn bench_trend(cli: &Cli) -> Result<String, String> {
    use np_bench::harness::trend;
    let history_path = cli
        .append
        .clone()
        .or_else(|| cli.positional.get(1).cloned())
        .ok_or(
            "bench trend needs a history file (`np bench trend <history.jsonl>` or --append FILE)",
        )?;
    let mut history = match std::fs::read_to_string(&history_path) {
        Ok(text) => text,
        // --append bootstraps a missing history file.
        Err(_) if cli.append.is_some() => String::new(),
        Err(e) => return Err(format!("bench: cannot read '{history_path}': {e}")),
    };
    let mut out = String::new();
    if cli.append.is_some() {
        let run = match &cli.current {
            Some(path) => bench_read_report(path)?,
            None => bench_execute(cli)?,
        };
        history = trend::append_run(&history, &run)?;
        std::fs::write(&history_path, &history)
            .map_err(|e| format!("bench: cannot write '{history_path}': {e}"))?;
        out.push_str(&format!("appended run to {history_path}\n"));
    }
    let runs = trend::parse_history(&history)?;
    if let Some(md) = &cli.md {
        std::fs::write(md, trend::trend_markdown(&runs))
            .map_err(|e| format!("bench: cannot write '{md}': {e}"))?;
        out.push_str(&format!("markdown written to {md}\n"));
    }
    out.push_str(&trend::render_trend(&runs));
    Ok(out)
}

/// `np serve`: run the indicator exchange. Binds `--addr` (an ephemeral
/// localhost port by default), announces the bound address on stdout so
/// clients can dial in, then serves `--conns` connections (forever when
/// 0) before summarising store and cache state.
fn serve_cmd(cli: &Cli) -> Result<String, String> {
    let addr = cli.addr.as_deref().unwrap_or("127.0.0.1:0");
    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| format!("serve: cannot bind '{addr}': {e}"))?;
    serve_on(cli, listener)
}

/// The serving half of `np serve`, parameterised over the listener so
/// tests can pick the port.
fn serve_on(cli: &Cli, listener: std::net::TcpListener) -> Result<String, String> {
    let server =
        np_serve::ExchangeServer::new(cli.shards, cli.cache_cap).with_workers(cli.workers.max(1));
    let store = server.store();
    let cache = server.cache();
    let local = listener
        .local_addr()
        .map_err(|e| format!("serve: no local address: {e}"))?;
    println!(
        "np serve: indicator exchange on {local} ({} shards, cache {}, {} workers)",
        cli.shards.max(1),
        cli.cache_cap.max(1),
        cli.workers.max(1)
    );
    let conns = if cli.conns == 0 {
        usize::MAX
    } else {
        cli.conns
    };
    server
        .serve(&listener, conns)
        .map_err(|e| format!("serve: {e}"))?;
    Ok(format!(
        "served {} connections: {} sets across {} shards (generation {}), \
         cache {}/{} entries, {} hits / {} misses / {} evictions\n",
        conns,
        store.len(),
        store.shard_count(),
        store.generation(),
        cache.len(),
        cache.capacity(),
        cache.hits(),
        cache.misses(),
        cache.evictions(),
    ))
}

/// `np loadgen`: benchmark an exchange. With `--addr` it hammers a
/// running server; without, it boots an in-process one (same `--shards`
/// / `--cache-cap` / `--workers` knobs as `serve`). The summary is
/// written to `--out` as JSON, and `--smoke` turns the run's invariants
/// (zero errors, cache exercised, transfer audit passed) into the exit
/// status — the CI gate.
fn loadgen_cmd(cli: &Cli) -> Result<String, String> {
    let local = match cli.addr {
        Some(_) => None,
        None => {
            let server = np_serve::ExchangeServer::new(cli.shards, cli.cache_cap)
                .with_workers(cli.workers.max(1));
            let listener =
                np_serve::ExchangeServer::bind().map_err(|e| format!("loadgen: bind: {e}"))?;
            Some(
                server
                    .start(listener)
                    .map_err(|e| format!("loadgen: start server: {e}"))?,
            )
        }
    };
    let addr = match (&cli.addr, &local) {
        (Some(addr), _) => addr.clone(),
        (None, Some(handle)) => handle.addr().to_string(),
        (None, None) => return Err("loadgen: no server".to_string()),
    };
    let config = np_serve::LoadgenConfig {
        addr,
        clients: cli.clients.max(1),
        frames_per_client: cli.frames.max(1),
        seed: cli.seed,
    };
    let result = np_serve::loadgen::run(&config);
    if let Some(handle) = local {
        handle.stop();
    }
    let summary = result.map_err(|e| format!("loadgen: {e}"))?;
    // The artifact goes through the unified np-bench/1 schema (one
    // loadgen cell), so `np bench diff`/`trend` read it directly.
    let report = np_bench::harness::migrate::from_load_summary(&summary)?;
    std::fs::write(&cli.out, report.to_json_pretty()?)
        .map_err(|e| format!("loadgen: cannot write '{}': {e}", cli.out))?;
    let mut out = format!(
        "== indicator-exchange load ==\n\
         clients               {}\n\
         frames                {}\n\
         requests              {}\n\
         errors                {}\n\
         degraded frames       {}\n\
         hammer throughput     {:.0} frames/s ({:.1} ms)\n\
         predict cold          {:.1} us\n\
         predict warm (cached) {:.1} us\n\
         cache speedup         {:.1}x\n\
         cache hits/misses     {}/{} ({} evictions)\n\
         transfer audit        {} (rel diff {:.2e})\n\
         stored sets           {}\n\
         summary written to    {}\n",
        summary.clients,
        summary.frames,
        summary.requests,
        summary.errors,
        summary.degraded_frames,
        summary.frames_per_sec,
        summary.hammer_ms,
        summary.cold_predict_micros,
        summary.warm_predict_micros,
        summary.cache_speedup,
        summary.cache_hits,
        summary.cache_misses,
        summary.cache_evictions,
        if summary.transfer_consistent {
            "consistent with direct np-models evaluation"
        } else {
            "INCONSISTENT"
        },
        summary.transfer_rel_diff,
        summary.stored_sets,
        cli.out,
    );
    out.push_str("\n== server rate window ==\n");
    out.push_str(&summary.rate_table());
    if cli.smoke {
        if summary.smoke_ok() {
            out.push_str("smoke: OK\n");
        } else {
            return Err(format!("loadgen --smoke failed:\n{out}"));
        }
    }
    Ok(out)
}

/// `np analyze`: static code-to-indicator analysis, proven against one
/// dynamic run — every observed counter total must land inside its static
/// envelope, or the command fails.
fn analyze_cmd(cli: &Cli) -> Result<String, String> {
    let machine = cli.machine_config()?;
    match cli.workload.as_deref() {
        Some(name) => analyze_one(cli, &machine, name),
        None => analyze_all(cli, &machine),
    }
}

fn fmt_max(max: Option<u64>) -> String {
    match max {
        Some(m) => m.to_string(),
        None => "∞".to_string(),
    }
}

fn analyze_one(
    cli: &Cli,
    machine: &np_simulator::MachineConfig,
    name: &str,
) -> Result<String, String> {
    let w = workloads::build(name, cli.size, cli.threads, machine)?;
    let program = w.build(machine);
    let a = np_analysis::analyze(&program, machine);
    let mut out = format!(
        "static analysis: {} on {} ({} thread(s), {} basic block(s))\n\n",
        w.name(),
        cli.machine,
        program.threads.len(),
        a.block_count
    );
    match &a.validate {
        Ok(()) => out.push_str("  validation: ok\n"),
        Err(e) => out.push_str(&format!("  validation: FAILED — {e}\n")),
    }
    match &a.barriers {
        Ok(order) if order.is_empty() => out.push_str("  barriers:   none\n"),
        Ok(order) => out.push_str(&format!("  barriers:   {} release(s)\n", order.len())),
        Err(dl) => out.push_str(&format!("  barriers:   {dl}\n")),
    }
    if a.races.is_empty() {
        out.push_str("  races:      none\n");
    } else {
        out.push_str(&format!("  races:      {} finding(s)\n", a.races.len()));
        for r in a.races.iter().take(8) {
            out.push_str(&format!("              {r}\n"));
        }
        if a.races.len() > 8 {
            out.push_str(&format!("              … {} more\n", a.races.len() - 8));
        }
    }
    if a.validate.is_err() || a.barriers.is_err() {
        out.push_str("\nno dynamic run: the program cannot execute\n");
        return Ok(out);
    }

    // Differential proof: one engine run, every total inside its envelope.
    let sim = MachineSim::new(machine.clone());
    let run = sim
        .run(&program, cli.seed)
        .map_err(|e| format!("invalid program: {e}"))?;
    let totals = run.counters.totals();
    out.push_str(&format!(
        "\n  {:<28} {:>16} {:>16} {:>16}\n",
        "event",
        "static min",
        "static max",
        format!("observed@{}", cli.seed)
    ));
    let mut violations = 0usize;
    for (event, bound) in a.bounds.iter() {
        let observed = totals[event.index()];
        let ok = bound.contains(observed);
        if !ok {
            violations += 1;
        }
        out.push_str(&format!(
            "  {:<28} {:>16} {:>16} {:>16}{}\n",
            event.name(),
            bound.min,
            fmt_max(bound.max),
            observed,
            if ok { "" } else { "  OUTSIDE" }
        ));
    }
    let wall_ok = a.bounds.wall_cycles.contains(run.cycles);
    if !wall_ok {
        violations += 1;
    }
    out.push_str(&format!(
        "  {:<28} {:>16} {:>16} {:>16}{}\n",
        "wall cycles",
        a.bounds.wall_cycles.min,
        fmt_max(a.bounds.wall_cycles.max),
        run.cycles,
        if wall_ok { "" } else { "  OUTSIDE" }
    ));
    if violations > 0 {
        return Err(format!(
            "static envelope violated: {violations} event(s) outside bounds for {name} (seed {})",
            cli.seed
        ));
    }
    out.push_str("\ndifferential: every observed total inside its static envelope\n");
    Ok(out)
}

fn analyze_all(cli: &Cli, machine: &np_simulator::MachineConfig) -> Result<String, String> {
    // Registry defaults are sized for real measurements; a sweep over all
    // workloads uses a small size unless one is given explicitly.
    let size = cli.size.unwrap_or(96);
    let sim = MachineSim::new(machine.clone());
    let mut out = format!(
        "static analysis of {} registry workloads (size {}, {} thread(s), seed {})\n\n",
        workloads::NAMES.len(),
        size,
        cli.threads,
        cli.seed
    );
    out.push_str(&format!(
        "  {:<20} {:>7} {:>9} {:>6}  envelope\n",
        "workload", "blocks", "releases", "races"
    ));
    let mut programs = Vec::with_capacity(workloads::NAMES.len());
    for name in workloads::NAMES {
        let w = workloads::build(name, Some(size), cli.threads, machine)?;
        programs.push((name.to_string(), w.build(machine)));
    }
    // The static passes fan across the pool in registry order; the
    // differential runs stay serial so failures read top-to-bottom.
    let analyses = np_analysis::analyze_many(&programs, machine, &np_parallel::Pool::default());
    let mut failures = Vec::new();
    for ((name, a), (_, program)) in analyses.iter().zip(&programs) {
        let releases = match &a.barriers {
            Ok(order) => order.len().to_string(),
            Err(_) => "DEADLOCK".to_string(),
        };
        let verdict = if a.validate.is_ok() && a.barriers.is_ok() {
            let run = sim
                .run(program, cli.seed)
                .map_err(|e| format!("invalid program: {e}"))?;
            let v = a.bounds.check(&run.counters.totals(), run.cycles);
            if v.is_empty() {
                "ok"
            } else {
                failures.push(format!("{name}: {}", v.join("; ")));
                "OUTSIDE"
            }
        } else {
            failures.push(format!("{name}: does not execute"));
            "skipped"
        };
        out.push_str(&format!(
            "  {:<20} {:>7} {:>9} {:>6}  {}\n",
            name,
            a.block_count,
            releases,
            a.races.len(),
            verdict
        ));
    }
    if failures.is_empty() {
        out.push_str(
            "\ndifferential: every workload's observed totals inside its static envelope\n",
        );
        Ok(out)
    } else {
        Err(format!(
            "static envelopes violated:\n{}",
            failures.join("\n")
        ))
    }
}

/// `np lint`: the workspace invariant linter. Findings are an error so CI
/// fails on a violation; `--json` emits the machine-readable report.
fn lint_cmd(cli: &Cli) -> Result<String, String> {
    let report = np_analysis::lint_workspace(std::path::Path::new(&cli.path))
        .map_err(|e| format!("lint: cannot scan '{}': {e}", cli.path))?;
    if cli.json {
        let body = report.to_json() + "\n";
        return if report.is_clean() {
            Ok(body)
        } else {
            Err(body)
        };
    }
    let body = report.render() + "\n";
    if report.is_clean() {
        Ok(body)
    } else {
        Err(body)
    }
}

/// `np audit`: the workspace concurrency & determinism audit. Unsuppressed
/// findings are an error (the binary exits 2), mirroring `lint`; the
/// committed baseline file gates legacy findings, `--sarif` emits the
/// code-scanning report, and `--inventory` regenerates the committed
/// unsafe inventory.
fn audit_cmd(cli: &Cli) -> Result<String, String> {
    use np_analysis::audit::{audit_workspace, Baseline};
    let root = std::path::Path::new(&cli.path);
    // Baseline resolution: an explicit --baseline must parse; without the
    // flag, a committed audit-baseline.json is picked up when present.
    let baseline = match &cli.baseline {
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| format!("audit: cannot read baseline '{p}': {e}"))?;
            Baseline::parse(&text).map_err(|e| format!("audit: bad baseline '{p}': {e}"))?
        }
        None => match std::fs::read_to_string(root.join("audit-baseline.json")) {
            Ok(text) => Baseline::parse(&text)
                .map_err(|e| format!("audit: bad committed audit-baseline.json: {e}"))?,
            Err(_) => Baseline::empty(),
        },
    };
    let report = audit_workspace(root, &baseline)
        .map_err(|e| format!("audit: cannot scan '{}': {e}", cli.path))?;
    if let Some(p) = &cli.sarif {
        std::fs::write(p, report.to_sarif())
            .map_err(|e| format!("audit: cannot write SARIF '{p}': {e}"))?;
    }
    if let Some(p) = &cli.inventory {
        std::fs::write(p, report.inventory_markdown())
            .map_err(|e| format!("audit: cannot write inventory '{p}': {e}"))?;
    }
    let body = if cli.json {
        report.to_json() + "\n"
    } else {
        report.render() + "\n"
    };
    if report.is_clean() {
        Ok(body)
    } else {
        Err(body)
    }
}

fn c2c(cli: &Cli) -> Result<String, String> {
    let machine = cli.machine_config()?;
    let name = workload_name(cli)?;
    let w = workloads::build(name, cli.size, cli.threads, &machine)?;
    let program = w.build(&machine);
    let sim = MachineSim::new(machine);
    let analysis = np_core::c2c::analyse(&sim, &program, cli.seed);
    Ok(analysis.render(10))
}

fn session(cli: &Cli) -> Result<np_core::session::Session, String> {
    np_core::session::Session::open(&cli.session).map_err(|e| format!("session: {e}"))
}

fn diff(cli: &Cli) -> Result<String, String> {
    let a = cli.workload_a.as_deref().ok_or("diff needs -a ARCHIVE")?;
    let b = cli.workload_b.as_deref().ok_or("diff needs -b ARCHIVE")?;
    let report = session(cli)?
        .compare(&EvSel::default(), a, b)
        .map_err(|e| format!("diff: {e}"))?;
    Ok(report.render())
}

fn archives(cli: &Cli) -> Result<String, String> {
    let names = session(cli)?.list().map_err(|e| format!("archives: {e}"))?;
    if names.is_empty() {
        return Ok(format!("no archives in {}\n", cli.session));
    }
    Ok(names.join("\n") + "\n")
}

fn workload_name(cli: &Cli) -> Result<&str, String> {
    cli.workload
        .as_deref()
        .ok_or_else(|| "this command needs --workload NAME".to_string())
}

fn plan(cli: &Cli) -> MeasurementPlan {
    let mut p = MeasurementPlan::all_events(cli.reps, cli.seed);
    if cli.multiplexed {
        p = p.multiplexed();
    }
    p
}

fn table1(cli: &Cli) -> Result<String, String> {
    let machine = cli.machine_config()?;
    if cli.json {
        // Dump the full config: edit the JSON and pass it back with
        // `--machine my-machine.json` to simulate a custom topology.
        return serde_json::to_string_pretty(&machine)
            .map(|mut s| {
                s.push('\n');
                s
            })
            .map_err(|e| e.to_string());
    }
    let mut out = String::from("Simulated test system\n");
    for (k, v) in machine.table_i_rows() {
        out.push_str(&format!("  {k:<18} {v}\n"));
    }
    Ok(out)
}

fn catalog(cli: &Cli) -> Result<String, String> {
    let cat = EventCatalog::builtin();
    if cli.json {
        return Ok(cat.to_json());
    }
    let mut out = String::new();
    for e in &cat.events {
        out.push_str(&format!(
            "{:#06x}/{:#04x}  {:<28} {}  — {}\n",
            e.code,
            e.umask,
            e.name,
            if e.uncore { "[uncore]" } else { "[core]  " },
            e.description
        ));
    }
    Ok(out)
}

fn stat(cli: &Cli) -> Result<String, String> {
    let machine = cli.machine_config()?;
    let name = workload_name(cli)?;
    let w = workloads::build(name, cli.size, cli.threads, &machine)?;
    let runner = Runner::new(machine);
    let runs = runner.measure(w.as_ref(), &plan(cli))?;
    if let Some(save) = &cli.save {
        session(cli)?
            .save(save, &runs)
            .map_err(|e| format!("save: {e}"))?;
    }
    let mut out = format!(
        "counters for {} ({} repetitions, {}):\n\n",
        runs.label,
        runs.len(),
        if cli.multiplexed {
            "multiplexed"
        } else {
            "batched runs"
        }
    );
    for event in runs.events() {
        let mean = runs.mean(event).unwrap_or(0.0);
        if mean == 0.0 {
            continue;
        }
        out.push_str(&format!("  {:<28} {:>16.0}\n", event.name(), mean));
    }
    let zeroes = runs.all_zero_events().len();
    out.push_str(&format!(
        "\n  ({zeroes} events stayed zero and are not shown)\n"
    ));
    Ok(out)
}

fn compare(cli: &Cli) -> Result<String, String> {
    let machine = cli.machine_config()?;
    let a_name = cli.workload_a.as_deref().ok_or("compare needs -a NAME")?;
    let b_name = cli.workload_b.as_deref().ok_or("compare needs -b NAME")?;
    let a = workloads::build(a_name, cli.size, cli.threads, &machine)?;
    let b = workloads::build(b_name, cli.size, cli.threads, &machine)?;
    let runner = Runner::new(machine);
    let runs_a = runner.measure(a.as_ref(), &plan(cli))?;
    let runs_b = runner.measure(b.as_ref(), &plan(cli))?;
    Ok(EvSel::default().compare(&runs_a, &runs_b).render())
}

fn sweep(cli: &Cli) -> Result<String, String> {
    let machine = cli.machine_config()?;
    let name = workload_name(cli)?;
    let runner = Runner::new(machine.clone());
    let mut sweep = ParameterSweep::new("threads");
    for threads in [1usize, 2, 3, 4, 6, 8, 12, 16] {
        if threads > machine.topology.total_cores() {
            break;
        }
        let w = workloads::build(name, cli.size, threads, &machine)?;
        let runs = runner.measure(w.as_ref(), &plan(cli))?;
        sweep.push(threads as f64, runs);
    }
    Ok(EvSel::default().correlate(&sweep).render())
}

fn memhist(cli: &Cli) -> Result<String, String> {
    let machine = cli.machine_config()?;
    let name = workload_name(cli)?;
    let w = workloads::build(name, cli.size, cli.threads, &machine)?;
    let program = w.build(&machine);
    let sim = MachineSim::new(machine);
    let tool = Memhist::with_defaults();
    let result = tool.measure(&sim, &program, cli.seed);
    let mode = if cli.costs {
        HistogramMode::Costs
    } else {
        HistogramMode::Occurrences
    };
    let mut out = format!(
        "Memhist, {} ({} mode):\n\n",
        w.name(),
        if cli.costs {
            "event costs"
        } else {
            "event occurrences"
        }
    );
    out.push_str(&result.render(mode));
    out.push_str(&format!("\nnegative bins: {}\n", result.negative_bins()));
    Ok(out)
}

fn phasen(cli: &Cli) -> Result<String, String> {
    let machine = cli.machine_config()?;
    let name = workload_name(cli)?;
    let w = workloads::build(name, cli.size, cli.threads, &machine)?;
    let program = w.build(&machine);
    let sim = MachineSim::new(machine);
    let pp = Phasenpruefer::default();
    let events = [
        HwEvent::Instructions,
        HwEvent::LoadRetired,
        HwEvent::StoreRetired,
        HwEvent::L1dMiss,
        HwEvent::LocalDramAccess,
    ];
    let (report, attr) = pp
        .measure(&sim, &program, cli.seed, &events)
        .ok_or("phase detection failed (footprint too short?)")?;
    let mut out = format!(
        "phase transition at cycle {} (ramp slope {:+.3} MiB/sample, compute {:+.3})\n\n",
        report.pivot_time,
        report.ramp_slope(),
        report.compute_slope()
    );
    out.push_str(&attr.render(&events));
    Ok(out)
}

fn annotate_cmd(cli: &Cli) -> Result<String, String> {
    let machine = cli.machine_config()?;
    let name = workload_name(cli)?;
    let regions = workloads::region_names(name);
    if regions.is_empty() {
        return Err(format!("workload '{name}' declares no source regions"));
    }
    let w = workloads::build(name, cli.size, cli.threads, &machine)?;
    let program = w.build(&machine);
    let sim = MachineSim::new(machine);
    let run = sim
        .run(&program, cli.seed)
        .map_err(|e| format!("invalid program: {e}"))?;
    let names = RegionNames::new(&regions);
    let events = [
        HwEvent::Instructions,
        HwEvent::L1dMiss,
        HwEvent::FillBufferReject,
        HwEvent::HitmTransfer,
        HwEvent::StallCycles,
    ];
    Ok(annotate(&run, &names, &events))
}

fn objprof_cmd(cli: &Cli) -> Result<String, String> {
    let machine = cli.machine_config()?;
    let name = workload_name(cli)?;
    let w = workloads::build(name, cli.size, cli.threads, &machine)?;
    let program = w.build(&machine);
    let sim = MachineSim::new(machine);
    let prof = objprof::profile(&sim, &program, cli.seed);
    Ok(prof.render(&workloads::object_names(name)))
}

fn balance(cli: &Cli) -> Result<String, String> {
    let machine = cli.machine_config()?;
    let name = workload_name(cli)?;
    let w = workloads::build(name, cli.size, cli.threads, &machine)?;
    let program = w.build(&machine);
    let sim = MachineSim::new(machine.clone());
    let run = sim
        .run(&program, cli.seed)
        .map_err(|e| format!("invalid program: {e}"))?;
    Ok(BalanceReport::from_run(&machine, &run).render())
}

fn mlc_cmd(cli: &Cli) -> Result<String, String> {
    let machine = cli.machine_config()?;
    let sim = MachineSim::new(machine.clone());
    let matrix = mlc::measure_matrix(&sim, 8 << 20, 500, cli.seed);
    let mut out =
        String::from("node-to-node load latency (cycles, median of a dependent chase):\n\n      ");
    for to in 0..machine.topology.nodes {
        out.push_str(&format!("{to:>8}"));
    }
    out.push('\n');
    for (from, row) in matrix.iter().enumerate() {
        out.push_str(&format!("  {from:>4}"));
        for v in row {
            out.push_str(&format!("{v:>8.0}"));
        }
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    fn run(args: &[&str]) -> Result<String, String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        super::super::run(&v)
    }

    #[test]
    fn table1_prints_machine() {
        let out = run(&["table1", "--machine", "two-socket"]).unwrap();
        assert!(out.contains("Two-socket"));
    }

    #[test]
    fn catalog_text_and_json() {
        let text = run(&["catalog"]).unwrap();
        assert!(text.contains("fill-buffer-rejects"));
        let json = run(&["catalog", "--json"]).unwrap();
        assert!(json.trim_start().starts_with('{'));
    }

    #[test]
    fn stat_measures_a_small_workload() {
        let out = run(&[
            "stat",
            "--workload",
            "row-major",
            "--size",
            "64",
            "--machine",
            "two-socket",
            "--reps",
            "2",
        ])
        .unwrap();
        assert!(out.contains("instructions"));
        assert!(out.contains("stayed zero"));
    }

    #[test]
    fn compare_requires_both_workloads() {
        let err = run(&["compare", "-a", "row-major"]).unwrap_err();
        assert!(err.contains("-b"));
    }

    #[test]
    fn compare_small_kernels() {
        let out = run(&[
            "compare",
            "-a",
            "row-major",
            "-b",
            "column-major",
            "--size",
            "96",
            "--machine",
            "two-socket",
            "--reps",
            "2",
        ])
        .unwrap();
        assert!(out.contains("EvSel comparison"));
        assert!(out.contains("L1-dcache-load-misses"));
    }

    #[test]
    fn memhist_renders_bins() {
        let out = run(&[
            "memhist",
            "--workload",
            "mlc-local",
            "--size",
            "2097152",
            "--machine",
            "two-socket",
        ])
        .unwrap();
        assert!(out.contains("negative bins"));
        assert!(out.contains("inf"));
    }

    #[test]
    fn balance_flags_bound_traffic() {
        let out = run(&[
            "balance",
            "--workload",
            "stream-bound",
            "--size",
            "16384",
            "--machine",
            "two-socket",
        ])
        .unwrap();
        assert!(out.contains("imbalance index"));
    }

    #[test]
    fn annotate_requires_labelled_workload() {
        let err = run(&["annotate", "--workload", "sift", "--machine", "two-socket"]).unwrap_err();
        assert!(err.contains("regions"));
    }

    #[test]
    fn objprof_names_objects() {
        let out = run(&[
            "objprof",
            "--workload",
            "stream-bound",
            "--size",
            "8192",
            "--machine",
            "two-socket",
        ])
        .unwrap();
        assert!(out.contains("mean latency"));
    }

    #[test]
    fn mlc_prints_matrix() {
        let out = run(&["mlc", "--machine", "two-socket"]).unwrap();
        assert!(out.lines().count() >= 4);
    }

    #[test]
    fn missing_workload_is_a_clear_error() {
        let err = run(&["stat"]).unwrap_err();
        assert!(err.contains("--workload"));
    }

    #[test]
    fn phasen_detects_the_chrome_trace() {
        let out = run(&["phasen", "--workload", "chrome", "--machine", "two-socket"]).unwrap();
        assert!(out.contains("phase transition at cycle"));
        assert!(out.contains("phase 1") && out.contains("phase 2"));
    }

    #[test]
    fn c2c_reports_sort_contention() {
        let out = run(&[
            "c2c",
            "--workload",
            "sort",
            "--size",
            "8192",
            "--machine",
            "two-socket",
        ])
        .unwrap();
        assert!(out.contains("total HITM"));
    }

    #[test]
    fn analyze_single_workload_shows_differential_table() {
        let out = run(&[
            "analyze",
            "--workload",
            "sort",
            "--size",
            "512",
            "--machine",
            "two-socket",
        ])
        .unwrap();
        assert!(out.contains("static min"));
        assert!(out.contains("instructions"));
        assert!(out.contains("wall cycles"));
        assert!(out.contains("differential: every observed total inside its static envelope"));
        assert!(!out.contains("OUTSIDE"));
    }

    #[test]
    fn analyze_all_workloads_sweeps_the_registry() {
        let out = run(&["analyze", "--machine", "two-socket", "--size", "64"]).unwrap();
        assert!(out.contains("row-major"));
        assert!(out.contains("bfs-interleaved"));
        assert!(!out.contains("OUTSIDE"));
        assert!(out.contains("differential: every workload's observed totals"));
    }

    #[test]
    fn lint_runs_clean_on_this_workspace() {
        // Tests run with the package root as cwd, which is the workspace
        // root for the top-level crate.
        let out = run(&["lint"]).unwrap();
        assert!(out.contains("0 finding(s)"), "{out}");
        let json = run(&["lint", "--json"]).unwrap();
        assert!(json.contains("\"findings\":[]"), "{json}");
    }

    #[test]
    fn lint_fails_on_a_seeded_violation() {
        let dir = std::env::temp_dir().join(format!("np-lint-seed-{}", std::process::id()));
        let src = dir.join("crates/counters/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(
            src.join("acquisition.rs"),
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        )
        .unwrap();
        let err = run(&["lint", "--path", &dir.to_string_lossy()]).unwrap_err();
        assert!(err.contains("no-panic"), "{err}");
        assert!(err.contains("acquisition.rs:1"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn audit_runs_clean_on_this_workspace() {
        let out = run(&["audit"]).unwrap();
        assert!(out.contains("audit clean"), "{out}");
        let json = run(&["audit", "--json"]).unwrap();
        assert!(json.contains("\"version\":\"np-audit/1\""), "{json}");
        assert!(json.contains("\"unsuppressed\":0"), "{json}");
    }

    /// Each injected rule violation must fail the gate (`run` returns
    /// `Err`, which `main` maps to exit code 2) and name its rule.
    #[test]
    fn audit_fails_per_seeded_rule_violation() {
        let seeds: &[(&str, &[(&str, &str)])] = &[
            (
                "lock-order",
                &[(
                    "crates/a/src/lib.rs",
                    "fn ab(s: &S) {\n    let a = s.alpha.lock();\n    let b = s.beta.lock();\n    \
                     drop(b);\n    drop(a);\n}\nfn ba(s: &S) {\n    let b = s.beta.lock();\n    \
                     let a = s.alpha.lock();\n    drop(a);\n    drop(b);\n}\n",
                )],
            ),
            (
                "condvar-discipline",
                &[(
                    "crates/a/src/lib.rs",
                    "fn poke(cv: &std::sync::Condvar) {\n    cv.notify_one();\n}\n",
                )],
            ),
            (
                "atomics-ordering",
                &[(
                    "crates/a/src/lib.rs",
                    "use std::sync::atomic::{AtomicU64, Ordering};\nfn bump(c: &AtomicU64) {\n    \
                     c.fetch_add(1, Ordering::Relaxed);\n}\n",
                )],
            ),
            (
                "hot-path-hygiene",
                &[(
                    "crates/a/src/lib.rs",
                    "// audit:hot\nfn hot(xs: &[u32]) -> Vec<u32> {\n    \
                     xs.iter().map(|x| x + 1).collect()\n}\n",
                )],
            ),
            (
                "unsafe-safety",
                &[(
                    "crates/a/src/lib.rs",
                    "fn launder(x: u32) -> u32 {\n    \
                     unsafe { std::mem::transmute::<u32, u32>(x) }\n}\n",
                )],
            ),
            (
                "no-panic-reachable",
                &[
                    (
                        "crates/serve/src/lib.rs",
                        "pub fn handle(req: u32) -> String { render(req) }\n",
                    ),
                    (
                        "crates/util/src/lib.rs",
                        "pub fn render(req: u32) -> String {\n    \
                         checked(req).unwrap()\n}\nfn checked(req: u32) -> Option<String> {\n    \
                         Some(req.to_string())\n}\n",
                    ),
                ],
            ),
        ];
        for (rule, files) in seeds {
            let dir =
                std::env::temp_dir().join(format!("np-audit-seed-{rule}-{}", std::process::id()));
            for (path, src) in *files {
                let full = dir.join(path);
                std::fs::create_dir_all(full.parent().unwrap()).unwrap();
                std::fs::write(&full, src).unwrap();
            }
            let err = run(&["audit", "--path", &dir.to_string_lossy()]).unwrap_err();
            assert!(err.contains(rule), "seed for {rule} produced:\n{err}");
            assert!(err.contains("audit FAILED"), "{err}");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn audit_baseline_suppresses_and_sarif_inventory_land_on_disk() {
        let dir = std::env::temp_dir().join(format!("np-audit-cli-{}", std::process::id()));
        let src = dir.join("crates/a/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(
            src.join("lib.rs"),
            "fn launder(x: u32) -> u32 {\n    unsafe { std::mem::transmute::<u32, u32>(x) }\n}\n",
        )
        .unwrap();
        let baseline = dir.join("suppress.json");
        std::fs::write(
            &baseline,
            r#"{"version": "np-audit-baseline/1", "suppressions": [
                {"rule": "unsafe-safety", "path": "crates/a/src/lib.rs",
                 "contains": "", "reason": "grandfathered fixture"}]}"#,
        )
        .unwrap();
        let sarif = dir.join("audit.sarif");
        let inventory = dir.join("UNSAFE_INVENTORY.md");
        let out = run(&[
            "audit",
            "--path",
            &dir.to_string_lossy(),
            "--baseline",
            &baseline.to_string_lossy(),
            "--sarif",
            &sarif.to_string_lossy(),
            "--inventory",
            &inventory.to_string_lossy(),
        ])
        .unwrap();
        assert!(out.contains("audit clean (1 suppressed)"), "{out}");
        let sarif_text = std::fs::read_to_string(&sarif).unwrap();
        assert!(sarif_text.contains("\"suppressions\""), "{sarif_text}");
        assert!(sarif_text.contains("unsafe-safety"), "{sarif_text}");
        let inv = std::fs::read_to_string(&inventory).unwrap();
        assert!(inv.contains("crates/a/src/lib.rs:2"), "{inv}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn custom_machine_file_roundtrip() {
        let json = run(&["table1", "--machine", "two-socket", "--json"]).unwrap();
        let path = std::env::temp_dir().join(format!("np-machine-{}.json", std::process::id()));
        std::fs::write(&path, &json).unwrap();
        let p = path.to_string_lossy().to_string();
        let out = run(&["table1", "--machine", &p]).unwrap();
        assert!(out.contains("Two-socket"));
        // And the custom machine actually drives a measurement.
        let out = run(&["mlc", "--machine", &p]).unwrap();
        assert!(out.lines().count() >= 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn record_then_diff_workflow() {
        let dir = std::env::temp_dir().join(format!("np-cli-session-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = dir.to_string_lossy().to_string();
        run(&[
            "stat",
            "--workload",
            "row-major",
            "--size",
            "96",
            "--machine",
            "two-socket",
            "--reps",
            "3",
            "--save",
            "rowA",
            "--session",
            &session,
        ])
        .unwrap();
        run(&[
            "stat",
            "--workload",
            "column-major",
            "--size",
            "96",
            "--machine",
            "two-socket",
            "--reps",
            "3",
            "--save",
            "colB",
            "--session",
            &session,
        ])
        .unwrap();
        let listed = run(&["archives", "--session", &session]).unwrap();
        assert!(listed.contains("rowA") && listed.contains("colB"));
        let out = run(&["diff", "-a", "rowA", "-b", "colB", "--session", &session]).unwrap();
        assert!(out.contains("EvSel comparison"));
        assert!(out.contains("L1-dcache-load-misses"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loadgen_smoke_against_in_process_server() {
        let out_path =
            std::env::temp_dir().join(format!("np-bench-serve-{}.json", std::process::id()));
        let out = run(&[
            "loadgen",
            "--clients",
            "8",
            "--frames",
            "8",
            "--seed",
            "5",
            "--smoke",
            "--out",
            out_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("smoke: OK"), "{out}");
        assert!(out.contains("errors                0"), "{out}");
        assert!(out.contains("consistent with direct np-models evaluation"));
        // The artifact is the unified np-bench/1 schema: one loadgen cell.
        let json = std::fs::read_to_string(&out_path).unwrap();
        let report = np_bench::harness::BenchReport::from_json(&json).unwrap();
        assert_eq!(report.bench_meta.tool, "loadgen");
        assert_eq!(report.cells.len(), 1);
        let cell = &report.cells[0];
        assert_eq!(cell.id, "loadgen/t8");
        assert_eq!(cell.workload, "loadgen");
        assert!(cell.audit_ok, "smoke invariants map to the cell audit");
        assert!(cell.metrics["frames_per_sec"] > 0.0);
        std::fs::remove_file(&out_path).unwrap();
    }

    #[test]
    fn bench_parallel_smoke_audits_determinism() {
        let out_path =
            std::env::temp_dir().join(format!("np-bench-parallel-{}.json", std::process::id()));
        let out = run(&[
            "bench-parallel",
            "--machine",
            "two-socket",
            "--smoke",
            "--seed",
            "3",
            "--out",
            out_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("smoke: OK"), "{out}");
        assert!(!out.contains("DIVERGED"), "{out}");
        for path in [
            "campaign",
            "memhist-ladder",
            "phasen-scan",
            "correlate-sweep",
            "analysis-sweep",
        ] {
            assert!(out.contains(path), "missing path {path} in {out}");
        }
        // The artifact is the unified np-bench/1 schema with the
        // bench-parallel tool tag, one cell per (path, thread count).
        let json = std::fs::read_to_string(&out_path).unwrap();
        let report = np_bench::harness::BenchReport::from_json(&json).unwrap();
        assert_eq!(report.bench_meta.tool, "bench-parallel");
        assert!(report.audit_ok(), "every pooled cell must audit clean");
        assert!(report.cells.iter().any(|c| c.id.starts_with("campaign/t")));
        // Pooled drivers carry the makespan model; the single-pass sweeps
        // (phasen-scan, correlate-sweep) legitimately do not.
        assert!(report
            .cells
            .iter()
            .filter(|c| c.id.starts_with("campaign/") || c.id.starts_with("analysis-sweep/"))
            .all(|c| c.metrics.contains_key("modeled_speedup")));
        std::fs::remove_file(&out_path).unwrap();
    }

    /// Builds an np-bench/1 report file with one campaign t1/t2 pair and
    /// a controlled host_threads, for the speedup-gate tests.
    fn write_speedup_report(host_threads: u64, t1_ns: f64, t2_ns: f64) -> std::path::PathBuf {
        use np_bench::harness::{BenchCell, BenchReport, BENCH_SCHEMA};
        let cell = |threads: u64, mean_ns: f64| {
            let mut metrics = std::collections::BTreeMap::new();
            metrics.insert("modeled_speedup".to_string(), 1.8);
            let mut c = BenchCell {
                id: format!("campaign/t{threads}/s48"),
                workload: "campaign".to_string(),
                threads,
                size: 48,
                samples_ns: vec![mean_ns as u64],
                mean_ns: 0.0,
                stddev_ns: 0.0,
                digest: "same".to_string(),
                audit_ok: true,
                metrics,
            };
            c.finalize();
            c
        };
        let mut meta = np_serve::BenchMeta::collect("np-bench", 1, 1);
        meta.host_threads = host_threads;
        let report = BenchReport {
            schema: BENCH_SCHEMA.to_string(),
            bench_meta: meta,
            machine: "two-socket".to_string(),
            warmup: 1,
            repeats: 1,
            cells: vec![cell(1, t1_ns), cell(2, t2_ns)],
        };
        let path = std::env::temp_dir().join(format!(
            "np-speedup-{}-{host_threads}-{t1_ns}.json",
            std::process::id()
        ));
        std::fs::write(&path, report.to_json_pretty().unwrap()).unwrap();
        path
    }

    #[test]
    fn bench_speedup_gates_a_multicore_report() {
        // Faster at 2 threads: gate OK.
        let good = write_speedup_report(4, 10e6, 6e6);
        let out = run(&["bench", "speedup", good.to_str().unwrap()]).unwrap();
        assert!(out.contains("speedup gate: OK"), "{out}");
        assert!(out.contains("1.67x"), "{out}");
        std::fs::remove_file(&good).unwrap();

        // Slower at 2 threads on a multi-core host: exit-2 regression.
        let bad = write_speedup_report(4, 10e6, 15e6);
        let err = run(&["bench", "speedup", "--current", bad.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("campaign/t2/s48"), "{err}");
        assert!(
            err.contains("slower than its own sequential baseline"),
            "{err}"
        );
        std::fs::remove_file(&bad).unwrap();
    }

    #[test]
    fn bench_speedup_skips_on_single_core_hosts() {
        // Same slow pool, but recorded on a 1-thread host: the gate
        // reports and passes — measured parallel speedup is impossible.
        let single = write_speedup_report(1, 10e6, 15e6);
        let out = run(&["bench", "speedup", single.to_str().unwrap()]).unwrap();
        assert!(out.contains("speedup: SKIP"), "{out}");
        std::fs::remove_file(&single).unwrap();
    }

    #[test]
    fn serve_command_serves_bounded_connections() {
        let listener = np_serve::ExchangeServer::bind().unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let cli = super::super::Cli::parse(&[
            "serve".to_string(),
            "--conns".to_string(),
            "1".to_string(),
            "--shards".to_string(),
            "4".to_string(),
            "--cache-cap".to_string(),
            "8".to_string(),
        ])
        .unwrap();
        let server = std::thread::spawn(move || super::serve_on(&cli, listener));

        let client = np_serve::ExchangeClient::new(addr);
        let mut session = client.connect().unwrap();
        session
            .put(vec![np_core::exchange::indicator_set(
                "dl580",
                3,
                &{
                    let mut rs = np_counters::measurement::RunSet::new("stride");
                    let mut m = np_counters::measurement::Measurement::new(1);
                    m.cycles = 100;
                    m.values.insert(np_simulator::HwEvent::L1dMiss, 5.0);
                    rs.runs.push(m);
                    rs
                },
                None,
                None,
            )])
            .unwrap();
        let sets = session.query(np_serve::QueryReq::machine("dl580")).unwrap();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].key.program, "stride");
        assert_eq!(sets[0].cycles, 100.0);
        drop(session);

        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("served 1 connections"), "{summary}");
        assert!(summary.contains("1 sets across 4 shards"), "{summary}");
    }
}
