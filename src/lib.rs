//! # numa-perf-tools
//!
//! A Rust reproduction of *"Assessing NUMA Performance Based on Hardware
//! Event Counters"* (Plauth, Sterz, Eberhardt, Feinbube, Polze — IPDPSW
//! 2017): the **EvSel**, **Memhist** and **Phasenprüfer** tools, the
//! two-step (code-to-indicator / indicator-to-cost) performance assessment
//! strategy, and every substrate they need — a deterministic NUMA machine
//! simulator, a perf-like hardware-event-counter layer, the paper's
//! micro-benchmark workloads, statistics, and computable classical cost
//! models.
//!
//! This crate is a façade: it re-exports the workspace crates under stable
//! module names so applications can depend on a single crate.
//!
//! ```
//! use numa_perf_tools::prelude::*;
//!
//! // Simulate the paper's test system (Table I) and measure one workload.
//! let machine = MachineConfig::dl580_gen9();
//! let workload = CacheMissKernel::row_major(64);
//! let runner = Runner::new(machine);
//! let run = runner.measure(&workload, &MeasurementPlan::all_events(3, 7)).unwrap();
//! assert!(run.mean(EventId::Instructions).unwrap() > 0.0);
//! ```

pub mod cli;

pub use np_core as core;
pub use np_counters as counters;
pub use np_linalg as linalg;
pub use np_models as models;
pub use np_simulator as simulator;
pub use np_stats as stats;
pub use np_workloads as workloads;

/// Commonly used items, re-exported for one-line imports.
pub mod prelude {
    pub use np_core::evsel::{ComparisonReport, EvSel, ParameterSweep};
    pub use np_core::memhist::{HistogramMode, Memhist, MemhistConfig, MemhistResult};
    pub use np_core::phasen::{PhaseDetector, Phasenpruefer};
    pub use np_core::runner::{MeasurementPlan, Runner};
    pub use np_core::strategy::{indicators_of, CostModel, IndicatorExtrapolator, TwoStepStrategy};
    pub use np_counters::catalog::{EventCatalog, EventId};
    pub use np_counters::measurement::{Measurement, RunSet};
    pub use np_simulator::config::MachineConfig;
    pub use np_simulator::topology::Topology;
    pub use np_simulator::{HwEvent, MachineSim};
    pub use np_workloads::cache_miss::CacheMissKernel;
    pub use np_workloads::mlc::LatencyChecker;
    pub use np_workloads::parallel_sort::ParallelSortKernel;
    pub use np_workloads::phases::PhaseTraceKernel;
    pub use np_workloads::sift::SiftKernel;
    pub use np_workloads::Workload;
}
