//! The `numa-perf-tools` binary: a perf-style CLI over the tool suite.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" || args[0] == "help" {
        match args.get(1).map(String::as_str) {
            Some("telemetry") => print!("{}", numa_perf_tools::cli::telemetry_help()),
            Some("resilience") => print!("{}", numa_perf_tools::cli::resilience_help()),
            _ => print!("{}", numa_perf_tools::cli::usage()),
        }
        return;
    }
    match numa_perf_tools::cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(err) => {
            eprintln!("error: {err}\n");
            eprint!("{}", numa_perf_tools::cli::usage());
            std::process::exit(2);
        }
    }
}
