//! The `numa-perf-tools` binary: a perf-style CLI over the tool suite.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" || args[0] == "help" {
        match args.get(1).map(String::as_str) {
            Some("telemetry") => print!("{}", numa_perf_tools::cli::telemetry_help()),
            Some("resilience") => print!("{}", numa_perf_tools::cli::resilience_help()),
            Some("analyze") => print!("{}", numa_perf_tools::cli::analyze_help()),
            Some("lint") => print!("{}", numa_perf_tools::cli::lint_help()),
            Some("audit") => print!("{}", numa_perf_tools::cli::audit_help()),
            Some("serve") => print!("{}", numa_perf_tools::cli::serve_help()),
            Some("loadgen") => print!("{}", numa_perf_tools::cli::loadgen_help()),
            Some("parallel") => print!("{}", numa_perf_tools::cli::parallel_help()),
            Some("bench") => print!("{}", numa_perf_tools::cli::bench_help()),
            Some("top") => print!("{}", numa_perf_tools::cli::top_help()),
            Some("report") => print!("{}", numa_perf_tools::cli::report_help()),
            Some("patterns") => print!("{}", numa_perf_tools::cli::patterns_help()),
            _ => print!("{}", numa_perf_tools::cli::usage()),
        }
        return;
    }
    match numa_perf_tools::cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(err) => {
            eprintln!("error: {err}");
            // Only a command line we failed to parse earns the usage dump;
            // a parseable command that failed (lint findings, an envelope
            // violation) already printed its own diagnosis.
            if numa_perf_tools::cli::Cli::parse(&args).is_err() {
                eprintln!();
                eprint!("{}", numa_perf_tools::cli::usage());
            }
            std::process::exit(2);
        }
    }
}
