//! The determinism matrix: every pooled path in the suite — campaign,
//! Memhist threshold ladder, Phasenprüfer pivot scan, all-counters
//! correlation sweep, analysis sweep — must be bit-identical across
//! threads ∈ {1, 2, 8} and to its sequential implementation. This is
//! the np-parallel contract exercised end-to-end through the real
//! tools, not through synthetic pool tasks.

use np_core::evsel::{EvSel, ParameterSweep};
use np_core::memhist::Memhist;
use np_core::phasen::Phasenpruefer;
use np_core::runner::{MeasurementPlan, Runner};
use np_counters::measurement::{Measurement, RunSet};
use np_parallel::Pool;
use np_simulator::{HwEvent, MachineConfig, MachineSim, Program};
use np_workloads::cache_miss::CacheMissKernel;
use np_workloads::mlc::LatencyChecker;
use np_workloads::Workload;

const THREADS: [usize; 3] = [1, 2, 8];

fn machine() -> MachineConfig {
    let mut cfg = MachineConfig::two_socket_small();
    cfg.noise.timer_interval = 5_000;
    cfg.noise.dram_jitter = 0.05;
    cfg
}

#[test]
fn campaign_matrix_is_bit_identical() {
    let cfg = machine();
    let w = CacheMissKernel::column_major(48);
    let program = w.build(&cfg);
    let plan = MeasurementPlan::events(
        vec![HwEvent::Cycles, HwEvent::L1dMiss, HwEvent::RemoteDramAccess],
        6,
        31,
    );
    // The sequential reference: the acquisition loop, one rep at a time.
    let sim = MachineSim::new(cfg.clone());
    let serial =
        np_counters::acquisition::measure_batched(&sim, &program, &plan.events, 6, 31, &plan.pmu)
            .expect("valid program");
    for threads in THREADS {
        let rs = Runner::new(cfg.clone())
            .with_threads(threads)
            .measure_program(&program, &plan)
            .unwrap();
        assert_eq!(rs.len(), serial.len(), "{threads} threads");
        for (a, b) in rs.runs.iter().zip(&serial.runs) {
            assert_eq!(a.values, b.values, "{threads} threads");
            assert_eq!(a.cycles, b.cycles, "{threads} threads");
        }
    }
}

#[test]
fn memhist_ladder_matrix_is_bit_identical() {
    let cfg = machine();
    let sim = MachineSim::new(cfg.clone());
    let program = LatencyChecker::new(0, 0, 1 << 18, 400).build(&cfg);
    let tool = Memhist::with_defaults();
    let serial = tool.measure_ladder(&sim, &program, 11);
    for threads in THREADS {
        let pool = Pool::new(threads);
        let pooled = tool.measure_ladder_pool(&sim, &program, 11, &pool);
        assert_eq!(
            format!("{:?}", pooled.histogram),
            format!("{:?}", serial.histogram),
            "{threads} threads"
        );
        assert_eq!(
            pooled.total_slices, serial.total_slices,
            "{threads} threads"
        );
    }
}

#[test]
fn phasen_scan_matrix_is_bit_identical() {
    // A ramp-then-flat footprint with deterministic jitter: the pivot
    // scan has many near-tied candidates, which is exactly where a
    // merge-order bug would surface as a different chosen pivot.
    let footprint: Vec<(u64, u64)> = (0..240u64)
        .map(|i| {
            let mib = if i < 80 { i * 3 } else { 240 + (i % 5) };
            (i * 50_000, mib << 20)
        })
        .collect();
    let pp = Phasenpruefer::default();
    let serial = pp.detect(&footprint).expect("two clear phases");
    for threads in THREADS {
        let pool = Pool::new(threads);
        let pooled = pp.detect_pool(&footprint, &pool).expect("two clear phases");
        assert_eq!(pooled.pivot_index, serial.pivot_index, "{threads} threads");
        assert_eq!(pooled.pivot_time, serial.pivot_time, "{threads} threads");
        assert_eq!(
            pooled.fit.combined_rss.to_bits(),
            serial.fit.combined_rss.to_bits(),
            "{threads} threads"
        );
    }
}

#[test]
fn correlation_sweep_matrix_is_bit_identical() {
    // Synthetic sweep over every catalog event, mixing the three
    // regression families so the strength sort has real work to do.
    let ids = np_counters::catalog::EventCatalog::builtin().ids();
    let mut sweep = ParameterSweep::new("threads");
    for &p in &[1.0f64, 2.0, 4.0, 8.0, 16.0] {
        let mut rs = RunSet::new(format!("p{p}"));
        for rep in 0..3u64 {
            let mut m = Measurement::new(p as u64 * 10 + rep);
            for (ei, &e) in ids.iter().enumerate() {
                let k = (ei + 1) as f64;
                let v = match ei % 3 {
                    0 => 10.0 * k + 7.0 * k * p,
                    1 => 5.0 * k + 0.4 * k * p * p,
                    _ => 1e4 * k * (-0.2 * p).exp(),
                };
                m.values.insert(e, v * (1.0 + rep as f64 * 1e-4));
            }
            rs.runs.push(m);
        }
        sweep.push(p, rs);
    }
    let serial = EvSel::default().correlate(&sweep);
    for threads in THREADS {
        let pool = Pool::new(threads);
        let pooled = EvSel::default().correlate_pool(&sweep, &pool);
        assert_eq!(pooled.rows.len(), serial.rows.len(), "{threads} threads");
        for (a, b) in pooled.rows.iter().zip(&serial.rows) {
            assert_eq!(a.event, b.event, "{threads} threads");
            assert_eq!(
                a.pearson.to_bits(),
                b.pearson.to_bits(),
                "{threads} threads"
            );
            assert_eq!(a.best.kind, b.best.kind, "{threads} threads");
            assert_eq!(
                a.best.r_squared.to_bits(),
                b.best.r_squared.to_bits(),
                "{threads} threads"
            );
        }
    }
}

#[test]
fn analysis_sweep_matrix_is_bit_identical() {
    let cfg = machine();
    let programs: Vec<(String, Program)> = [
        ("row", CacheMissKernel::row_major(64).build(&cfg)),
        ("col", CacheMissKernel::column_major(64).build(&cfg)),
        ("chase", LatencyChecker::new(0, 1, 1 << 16, 200).build(&cfg)),
    ]
    .into_iter()
    .map(|(n, p)| (n.to_string(), p))
    .collect();
    let serial: Vec<String> = programs
        .iter()
        .map(|(_, p)| format!("{:?}", np_analysis::analyze(p, &cfg)))
        .collect();
    for threads in THREADS {
        let pool = Pool::new(threads);
        let pooled = np_analysis::analyze_many(&programs, &cfg, &pool);
        assert_eq!(pooled.len(), serial.len(), "{threads} threads");
        for ((name, a), (s, (expect, _))) in pooled.iter().zip(serial.iter().zip(&programs)) {
            assert_eq!(*name, expect.as_str(), "{threads} threads");
            assert_eq!(&format!("{a:?}"), s, "{threads} threads");
        }
    }
}

/// Deterministic compute with no wall-clock dependence in the *work*:
/// a fixed-iteration LCG spin, so each item costs the same counted effort
/// on every run.
fn spin(item: usize, rounds: u64) -> u64 {
    let mut acc = item as u64;
    for i in 0..rounds {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

#[test]
fn queue_wakeups_stay_proportional_to_traffic() {
    // The counted-work storm guard: a reintroduced thundering herd (every
    // push waking every worker, each finding the queue already drained)
    // scales consumer waits with workers × pushes, while the healthy
    // single-notify queue stays proportional to traffic alone. Counts,
    // not wall-clock, so this cannot flake on a loaded CI runner.
    for threads in [2usize, 8] {
        let pool = Pool::new(threads);
        let report = pool.run_report(512, |i| spin(i, 2_000), &np_parallel::Schedule::Free);
        assert_eq!(report.results.len(), 512, "{threads} threads");
        let q = report.queue;
        let chunks = report.trace.steps.len() as u64;
        assert_eq!(
            q.pushes, chunks,
            "{threads} threads: every chunk pushed once"
        );
        assert_eq!(q.pops, chunks, "{threads} threads: every chunk popped once");
        let budget = 3 * (q.pops + threads as u64) + 16;
        assert!(
            q.consumer_waits <= budget,
            "{threads} threads: wakeup storm — {} consumer waits for {} pops (budget {budget})",
            q.consumer_waits,
            q.pops
        );
        assert!(
            q.producer_waits <= q.pushes,
            "{threads} threads: producer blocked {} times for {} pushes",
            q.producer_waits,
            q.pushes
        );
    }
}

#[test]
fn idle_wait_stays_bounded_by_useful_work() {
    // The serialization guard, as a *ratio* with deliberate headroom: the
    // idle time workers spend blocked on the queue must stay within a
    // workers-sized multiple of the useful chunk time plus a fixed
    // allowance for scheduler noise. Accidental serialization — a lock
    // held across user work, a producer that feeds one chunk at a time
    // and waits for it to finish — makes idle time scale with *total*
    // runtime times workers and blows through the bound by orders of
    // magnitude; legitimate contention on a saturated runner does not.
    for threads in [2usize, 8] {
        let pool = Pool::new(threads);
        let report = pool.run_report(64, |i| spin(i, 200_000), &np_parallel::Schedule::Free);
        assert_eq!(report.results.len(), 64, "{threads} threads");
        let busy: u64 = report.chunk_ns.iter().sum();
        let idle: u64 = report.profile.iter().map(|p| p.wait_ns).sum();
        let bound = threads as u64 * busy + 50_000_000;
        assert!(
            idle <= bound,
            "{threads} threads: {idle} ns idle vs {busy} ns useful (bound {bound})"
        );
    }
}

#[test]
fn auto_granularity_amortises_cheap_items() {
    // With no explicit chunk size, the pool probes per-item cost and
    // sizes chunks toward the ~1 ms work floor; for thousands of cheap
    // items that must collapse the chunk count far below item count —
    // the per-chunk deposit/merge overhead the profile measured.
    let pool = Pool::new(4);
    let report = pool.run_report(4096, |i| spin(i, 500), &np_parallel::Schedule::Free);
    assert_eq!(report.results.len(), 4096);
    let chunks = report.trace.steps.len();
    assert!(
        chunks < 4096 / 4,
        "auto-granularity regressed: {chunks} chunks for 4096 cheap items"
    );
    // The merged output is still the identity mapping of the input order.
    for (i, v) in report.results.iter().enumerate() {
        assert_eq!(*v, spin(i, 500));
    }
}

#[test]
fn replayed_campaign_schedule_reproduces_the_run() {
    // Record a seeded campaign-shaped run, then replay its trace: both
    // the output and the interleaving must reproduce exactly.
    let cfg = machine();
    let sim = MachineSim::new(cfg.clone());
    let program = CacheMissKernel::row_major(32).build(&cfg);
    let pool = Pool::new(4);
    let (recorded, trace) = pool.run_traced(
        8,
        |rep| {
            sim.run(&program, 100 + rep as u64)
                .expect("valid program")
                .cycles
        },
        &np_parallel::Schedule::Seeded(17),
    );
    let (replayed, replay_trace) = pool.run_traced(
        8,
        |rep| {
            sim.run(&program, 100 + rep as u64)
                .expect("valid program")
                .cycles
        },
        &np_parallel::Schedule::Replay(trace.clone()),
    );
    assert_eq!(recorded, replayed);
    assert_eq!(trace, replay_trace);
}
