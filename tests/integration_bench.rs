//! End-to-end contract of the `np bench` matrix harness: the
//! deterministic half of a report (cell identity, digests, audits,
//! `det_` metrics) must be byte-stable across harness thread counts and
//! across re-runs, the diff gate must pass an identical re-run and fail
//! an injected regression, and every rendering of a report must survive
//! a round trip. Everything here drives the public `np_bench::harness`
//! API plus the real CLI entry point (`numa_perf_tools::cli::run`), the
//! same paths CI exercises.

use np_bench::harness::{
    diff_reports, formats, gate, migrate, run_matrix, BenchReport, MatrixConfig, Verdict,
    BENCH_SCHEMA,
};

fn smoke_report(harness_threads: usize) -> BenchReport {
    run_matrix(&MatrixConfig::smoke(), harness_threads).expect("smoke matrix must run")
}

#[test]
fn structure_is_deterministic_across_harness_threads() {
    // The harness thread count is an execution detail: it schedules the
    // matrix cells, it must never leak into what the cells compute.
    let reference = smoke_report(1);
    assert_eq!(reference.schema, BENCH_SCHEMA);
    assert!(reference.audit_ok(), "smoke cells must audit clean");
    assert!(
        reference.cells.len() >= 6,
        "smoke matrix covers all drivers"
    );
    for threads in [2, 8] {
        let got = smoke_report(threads);
        assert_eq!(
            got.structure_digest(),
            reference.structure_digest(),
            "structure diverged at {threads} harness threads"
        );
        // Cell order is matrix order, not completion order.
        let ids: Vec<&str> = got.cells.iter().map(|c| c.id.as_str()).collect();
        let ref_ids: Vec<&str> = reference.cells.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(ids, ref_ids);
    }
}

#[test]
fn diff_gate_passes_identical_reruns_and_fails_injected_regressions() {
    let base = smoke_report(2);
    // Self-diff: every cell ok, gate passes.
    let clean = diff_reports(&base, &base.clone(), 15.0, 0.01);
    assert!(clean.cells.iter().all(|c| c.verdict == Verdict::Ok));
    assert!(gate(&clean).is_ok());

    // Inject a tight, repeatable 5x slowdown into one cell. Timing is
    // the one measured (non-deterministic) field, so the test pins the
    // samples itself rather than trusting container wall clocks.
    let mut tight_base = base.clone();
    let mut tight_cur = base;
    for (b, c) in tight_base.cells.iter_mut().zip(tight_cur.cells.iter_mut()) {
        b.samples_ns = vec![5_000_000, 5_010_000, 4_990_000];
        b.finalize();
        c.samples_ns = b.samples_ns.clone();
        c.finalize();
    }
    let victim = tight_cur.cells[0].id.clone();
    tight_cur.cells[0].samples_ns = vec![25_000_000, 25_050_000, 24_950_000];
    tight_cur.cells[0].finalize();
    let diff = diff_reports(&tight_base, &tight_cur, 15.0, 0.01);
    let bad: Vec<_> = diff.failures().iter().map(|c| c.id.clone()).collect();
    assert_eq!(bad, vec![victim.clone()]);
    let err = gate(&diff).expect_err("a 5x repeatable slowdown must fail the gate");
    assert!(err.contains(&victim), "{err}");
    assert!(err.contains("REGRESSED"), "{err}");

    // A digest flip is a hard failure even with identical timing.
    let mut forged = tight_base.clone();
    forged.cells[0].digest = "0000000000000000".to_string();
    let diff = diff_reports(&tight_base, &forged, 15.0, 0.01);
    assert_eq!(diff.failures().len(), 1);
    assert_eq!(diff.failures()[0].verdict, Verdict::DigestChanged);
}

#[test]
fn formats_round_trip_and_render_every_cell() {
    let report = smoke_report(2);
    // JSON: parse(to_json) reproduces the report exactly.
    let parsed = BenchReport::from_json(&report.to_json_pretty().unwrap()).unwrap();
    assert_eq!(parsed, report);
    // CSV: parse(render) reproduces the rows, and re-rendering those
    // rows is byte-identical.
    let csv = formats::csv(&report);
    let rows = formats::parse_csv(&csv).unwrap();
    assert_eq!(rows.len(), report.cells.len());
    let rerendered: String = std::iter::once(formats::CSV_HEADER.to_string())
        .chain(rows.iter().map(formats::render_csv_row))
        .map(|l| l + "\n")
        .collect();
    assert_eq!(rerendered, csv);
    // Table and markdown name every cell.
    let table = formats::live_table(&report);
    let md = formats::markdown(&report);
    for cell in &report.cells {
        assert!(table.contains(&cell.id), "table missing {}", cell.id);
        assert!(md.contains(&cell.id), "markdown missing {}", cell.id);
    }
}

#[test]
fn legacy_artifacts_migrate_and_diff_cleanly_against_themselves() {
    // The committed legacy schema keeps working through the shim, and
    // the migrated np-bench/1 baseline passes through it unchanged:
    // migration is idempotent and a migrated report self-diffs green.
    for path in ["baselines/bench-parallel.json", "BENCH_serve.json"] {
        let json = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let report = migrate::migrate_json(&json).unwrap_or_else(|e| panic!("{path}: {e}"));
        assert_eq!(report.schema, BENCH_SCHEMA);
        assert!(!report.cells.is_empty(), "{path} migrated to zero cells");
        let again = migrate::migrate_json(&report.to_json_pretty().unwrap()).unwrap();
        assert_eq!(again, report, "{path}: migration is not idempotent");
        let diff = diff_reports(&report, &report.clone(), 15.0, 0.01);
        assert!(gate(&diff).is_ok(), "{path}: migrated self-diff failed");
    }
}

#[test]
fn cli_run_diff_and_migrate_share_one_schema() {
    let cli = |args: &[&str]| {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        numa_perf_tools::cli::run(&owned)
    };
    let dir = std::env::temp_dir().join(format!("np-bench-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("run.json");
    let out_s = out.to_str().unwrap();

    // `np bench` (smoke) writes a gate-ready np-bench/1 artifact...
    let text = cli(&["bench", "--smoke", "--out", out_s]).unwrap();
    assert!(text.contains("smoke: OK"), "{text}");
    let report = BenchReport::from_json(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(report.schema, BENCH_SCHEMA);

    // ...which `np bench diff` accepts as both baseline and current.
    let text = cli(&["bench", "diff", out_s, "--current", out_s]).unwrap();
    assert!(text.contains("gate: OK"), "{text}");

    // `np bench migrate` on a current-schema file is a clean pass-through.
    let mig = dir.join("mig.json");
    cli(&["bench", "migrate", out_s, "--out", mig.to_str().unwrap()]).unwrap();
    let migrated = BenchReport::from_json(&std::fs::read_to_string(&mig).unwrap()).unwrap();
    assert_eq!(migrated, report);
    std::fs::remove_dir_all(&dir).unwrap();
}
