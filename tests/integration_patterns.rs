//! End-to-end contract of `np patterns` through the real CLI entry
//! point (`numa_perf_tools::cli::run`): single-workload classification
//! writes a byte-stable np-patterns/1 document and reports the verdict
//! against the registry label, per-phase capture attribution round-trips
//! a sampled capture deterministically, error paths reject unknown
//! workloads and foreign capture schemas with exit-2 errors, and the
//! full verification sweep is byte-identical at any pool width.

fn args(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("np-patterns-int-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn classify_single(out: &std::path::Path, json: bool) -> String {
    let mut argv = vec![
        "patterns",
        "--workload",
        "stream-bound",
        "--machine",
        "two-socket",
        "--size",
        "96",
        "--threads",
        "2",
        "--out",
        out.to_str().unwrap(),
    ];
    if json {
        argv.push("--json");
    }
    numa_perf_tools::cli::run(&args(&argv)).unwrap()
}

#[test]
fn single_mode_recovers_the_label_and_writes_a_stable_document() {
    let dir = tmp_dir("single");
    let a = dir.join("a.json");
    let b = dir.join("b.json");

    let text = classify_single(&a, false);
    assert!(text.contains("stream-bound"), "{text}");
    assert!(text.contains("MATCH"), "{text}");
    assert!(text.contains("numa-imbalance"), "{text}");

    // Identical invocations write byte-identical documents.
    classify_single(&b, false);
    let doc_a = std::fs::read_to_string(&a).unwrap();
    let doc_b = std::fs::read_to_string(&b).unwrap();
    assert_eq!(doc_a, doc_b, "single-mode document is not reproducible");
    assert!(doc_a.contains("\"np-patterns/1\""), "{doc_a}");
    assert!(doc_a.contains("\"matched\": true"), "{doc_a}");

    // --json streams exactly the bytes that went to disk.
    let streamed = classify_single(&a, true);
    assert_eq!(streamed, std::fs::read_to_string(&a).unwrap());
}

#[test]
fn capture_mode_attributes_phases_and_round_trips() {
    let dir = tmp_dir("capture");
    let cap = dir.join("capture.json");
    let tl = dir.join("timeline.json");
    let out = numa_perf_tools::cli::run(&args(&[
        "run",
        "--sample",
        "--workload",
        "row-major",
        "--size",
        "128",
        "--reps",
        "2",
        "--seed",
        "3",
        "--machine",
        "two-socket",
        "--out",
        cap.to_str().unwrap(),
        "--timeline",
        tl.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(out.contains("sampled campaign"), "{out}");

    let doc_a = dir.join("phases-a.json");
    let doc_b = dir.join("phases-b.json");
    let classify = |doc: &std::path::Path| {
        numa_perf_tools::cli::run(&args(&[
            "patterns",
            "--capture",
            cap.to_str().unwrap(),
            "--out",
            doc.to_str().unwrap(),
        ]))
        .unwrap()
    };
    let text = classify(&doc_a);
    assert!(text.contains("per-phase pattern attribution"), "{text}");
    assert!(text.contains("row-major"), "{text}");

    classify(&doc_b);
    assert_eq!(
        std::fs::read_to_string(&doc_a).unwrap(),
        std::fs::read_to_string(&doc_b).unwrap(),
        "capture attribution is not reproducible"
    );
}

#[test]
fn unknown_workload_is_rejected() {
    let dir = tmp_dir("unknown");
    let err = numa_perf_tools::cli::run(&args(&[
        "patterns",
        "--workload",
        "no-such-workload",
        "--out",
        dir.join("doc.json").to_str().unwrap(),
    ]))
    .unwrap_err();
    assert!(err.contains("no-such-workload"), "{err}");
}

#[test]
fn foreign_capture_schema_is_rejected() {
    let dir = tmp_dir("schema");
    let bogus = dir.join("bogus.json");
    std::fs::write(
        &bogus,
        r#"{"schema":"np-other/9","machine":"y","workload":"x","seed":1,"repetitions":1,"phases":[],"series":[]}"#,
    )
    .unwrap();
    let err = numa_perf_tools::cli::run(&args(&[
        "patterns",
        "--capture",
        bogus.to_str().unwrap(),
        "--out",
        dir.join("doc.json").to_str().unwrap(),
    ]))
    .unwrap_err();
    assert!(err.contains("schema"), "{err}");
    assert!(err.contains("np-other/9"), "{err}");
}

/// The full 96-case sweep at two pool widths — minutes of debug-mode
/// simulation on small hosts, so it is opt-in here (`-- --ignored`);
/// the nightly CI job runs the same byte-identity diff in release mode
/// on every run.
#[test]
#[ignore = "full verification sweep; covered in release by CI and nightly"]
fn verification_sweep_is_byte_identical_across_pool_widths() {
    let dir = tmp_dir("verify");
    let serial = dir.join("serial.json");
    let wide = dir.join("wide.json");
    for (threads, path) in [("1", &serial), ("8", &wide)] {
        let out = numa_perf_tools::cli::run(&args(&[
            "patterns",
            "--verify",
            "--threads",
            threads,
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("pattern verification sweep"), "{out}");
    }
    assert_eq!(
        std::fs::read_to_string(&serial).unwrap(),
        std::fs::read_to_string(&wide).unwrap(),
        "sweep document depends on pool width"
    );
}
