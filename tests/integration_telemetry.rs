//! End-to-end check of the observability layer: one CLI invocation with
//! `--telemetry` and `--trace` must produce a well-formed metrics
//! snapshot (counters from several subsystems) and a Chrome-trace file
//! that chrome://tracing / Perfetto would accept.
//!
//! Telemetry state is process-global, so everything lives in a single
//! test function — independent #[test]s would race on the enable flag.

use serde_json::Value;

fn args(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

#[test]
fn cli_produces_snapshot_and_valid_chrome_trace() {
    let dir = std::env::temp_dir().join(format!("np-tele-int-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let tele = dir.join("out.json");
    let trace = dir.join("out.trace.json");
    let session = dir.join("session");

    // `stat --save` exercises the simulator, acquisition, runner and
    // session layers in one command; the CLI layer itself is the fifth.
    let out = numa_perf_tools::cli::run(&args(&[
        "stat",
        "--workload",
        "row-major",
        "--size",
        "48",
        "--reps",
        "2",
        "--machine",
        "two-socket",
        "--save",
        "tele-run",
        "--session",
        session.to_str().unwrap(),
        "--telemetry",
        tele.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]))
    .unwrap();

    // The report embeds the snapshot.
    assert!(
        out.contains("== tool telemetry =="),
        "no telemetry section in:\n{out}"
    );

    // --- metrics snapshot ---------------------------------------------
    let snap: Value = serde_json::from_str(&std::fs::read_to_string(&tele).unwrap()).unwrap();
    let counters = match snap.get("counters") {
        Some(Value::Object(entries)) => entries.clone(),
        other => panic!("counters is not an object: {other:?}"),
    };
    let live: Vec<&str> = counters
        .iter()
        .filter(|(_, v)| !matches!(v, Value::UInt(0) | Value::Int(0)))
        .map(|(n, _)| n.as_str())
        .collect();
    for prefix in ["cli.", "sim.", "acq.", "runner.", "session."] {
        assert!(
            live.iter().any(|n| n.starts_with(prefix)),
            "no live {prefix}* counter in {live:?}"
        );
    }
    // Per-NUMA-node memory ops are attributed.
    assert!(
        live.iter().any(|n| n.starts_with("sim.mem_ops.node")),
        "{live:?}"
    );
    assert!(snap.get("histograms").is_some());

    // --- Chrome trace --------------------------------------------------
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    let events: Vec<Value> = match serde_json::from_str(&trace_text).unwrap() {
        Value::Array(events) => events,
        other => panic!("trace is not a JSON array: {other:?}"),
    };
    assert!(events.len() >= 2, "trace has no span events");

    let field = |e: &Value, k: &str| -> Option<Value> { e.get(k).cloned() };
    let as_u64 = |v: &Value| -> u64 {
        match v {
            Value::UInt(u) => *u,
            Value::Int(i) => u64::try_from(*i).unwrap(),
            other => panic!("not an integer: {other:?}"),
        }
    };

    // Leads with process-name metadata, then complete ("X") events whose
    // timestamps are monotonically non-decreasing and self-consistent.
    assert_eq!(field(&events[0], "ph"), Some(Value::Str("M".into())));
    let mut last_ts = 0u64;
    let mut cats = std::collections::BTreeSet::new();
    for e in &events[1..] {
        assert_eq!(field(e, "ph"), Some(Value::Str("X".into())), "{e:?}");
        let ts = as_u64(&field(e, "ts").unwrap());
        let dur = as_u64(&field(e, "dur").unwrap());
        assert!(ts >= last_ts, "events not sorted by ts");
        assert!(ts.checked_add(dur).is_some());
        last_ts = ts;
        if let Some(Value::Str(cat)) = field(e, "cat") {
            cats.insert(cat);
        }
    }
    // Spans cover multiple subsystems, and parents envelope children:
    // the cli.execute span must contain every sim.run span.
    assert!(cats.len() >= 3, "trace covers too few subsystems: {cats:?}");
    let span_of = |name: &str| -> Vec<(u64, u64)> {
        events[1..]
            .iter()
            .filter(|e| field(e, "name") == Some(Value::Str(name.into())))
            .map(|e| {
                (
                    as_u64(&field(e, "ts").unwrap()),
                    as_u64(&field(e, "dur").unwrap()),
                )
            })
            .collect()
    };
    let cli_spans = span_of("cli.execute");
    assert_eq!(cli_spans.len(), 1);
    let (cli_ts, cli_dur) = cli_spans[0];
    for (ts, dur) in span_of("sim.run") {
        assert!(
            ts >= cli_ts && ts + dur <= cli_ts + cli_dur + 1,
            "sim.run outside cli.execute"
        );
    }

    std::fs::remove_dir_all(&dir).unwrap();
}
