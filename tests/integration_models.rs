//! Integration: the computable cost models (§II) against the simulator —
//! the X6 experiment as a regression test.

use np_models::calibrate::{calibrate, speedup_inputs_from_run};
use np_models::online::{OnlineScalability, PrefixProbe};
use np_models::{CounterSpeedupModel, KNumaMachine};
use np_simulator::{MachineConfig, MachineSim};
use np_workloads::matmul::TiledMatmul;
use np_workloads::stream::StreamTriad;
use np_workloads::Workload;

fn quiet_dl580() -> MachineSim {
    let mut cfg = MachineConfig::dl580_gen9();
    cfg.noise.timer_interval = 0;
    cfg.noise.dram_jitter = 0.0;
    MachineSim::new(cfg)
}

#[test]
fn calibrated_bsp_predicts_parallel_matmul() {
    let sim = quiet_dl580();
    let cal = calibrate(&sim, 21).expect("calibration programs are valid");
    let n = 96usize;
    let serial = sim
        .run(&TiledMatmul::new(n, 1).build(sim.config()), 5)
        .expect("valid program");
    for p in [2u64, 4, 8] {
        let bsp = cal.bsp(p);
        let predicted = bsp.block_parallel_cost(serial.cycles, (n * n) as u64 / 8, 1);
        let simulated = sim
            .run(&TiledMatmul::new(n, p as usize).build(sim.config()), 5)
            .expect("valid program")
            .cycles;
        let ratio = predicted / simulated as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "p={p}: predicted {predicted:.0} vs simulated {simulated} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn knuma_cost_ordering_matches_machine_structure() {
    let m = KNumaMachine::dl580_like();
    // Socket-local supersteps must be cheaper than cross-socket ones of
    // the same volume, and never worse than flat BSP.
    let local = m.superstep_cost(5_000.0, &[2_000, 0]);
    let cross = m.superstep_cost(5_000.0, &[0, 2_000]);
    assert!(local < cross);
    assert!(local <= m.flat_bsp_cost(5_000.0, &[2_000, 0]));
}

#[test]
fn online_prefix_prediction_tracks_actual_scaling() {
    let sim = quiet_dl580();
    let elements = 96 * 1024usize;
    let single_program = StreamTriad::bound(elements, 1, 0).build(sim.config());

    // Observe only a prefix of the single-threaded run.
    let mut probe = PrefixProbe::new(60_000);
    let single = sim
        .run_observed(&single_program, 9, &mut probe)
        .expect("valid program");
    let prefix = probe.prefix_inputs().expect("prefix captured");

    let predictor = OnlineScalability {
        model: CounterSpeedupModel {
            imc_service: sim.config().latency.imc_service as f64,
            remote_penalty: 1.45,
            nodes_used: 1.0,
        },
    };
    let curve = predictor.predict_curve(&prefix, 1, &[4, 16]);

    // Ground truth: actually run 4 and 16 threads.
    let actual: Vec<f64> = [4usize, 16]
        .iter()
        .map(|&p| {
            let r = sim
                .run(&StreamTriad::bound(elements, p, 0).build(sim.config()), 9)
                .expect("valid program");
            single.cycles as f64 / r.cycles as f64
        })
        .collect();

    // Qualitative agreement: both saturate well below linear scaling on a
    // node-bound triad, and the prediction is within 2x of reality.
    for ((p, predicted), actual) in curve.iter().zip(&actual) {
        assert!(
            *predicted < 0.75 * *p as f64,
            "p={p}: predicted {predicted:.2} ~ linear"
        );
        let ratio = predicted / actual;
        assert!(
            (0.5..2.0).contains(&ratio),
            "p={p}: predicted {predicted:.2} vs actual {actual:.2}"
        );
    }
}

#[test]
fn full_run_speedup_inputs_match_prefix_inputs_for_steady_workloads() {
    let sim = quiet_dl580();
    let program = StreamTriad::bound(64 * 1024, 1, 0).build(sim.config());
    let mut probe = PrefixProbe::new(50_000);
    let full = sim
        .run_observed(&program, 3, &mut probe)
        .expect("valid program");
    let prefix = probe.prefix_inputs().unwrap();
    let whole = speedup_inputs_from_run(&full);
    // Stall fractions agree within 30% between prefix and whole run.
    let f_prefix = prefix.mem_stall_cycles / prefix.cycles;
    let f_whole = whole.mem_stall_cycles / whole.cycles;
    assert!(
        (f_prefix - f_whole).abs() < 0.3 * f_whole.max(0.01),
        "prefix {f_prefix:.3} vs whole {f_whole:.3}"
    );
}
