//! Fault matrix for the indicator exchange: every scripted fault,
//! end-to-end through a live `np serve` round-trip. For each fault the
//! resilient client must either recover within its retry policy
//! (bit-identical to a clean exchange — the store snapshot is
//! deterministic) or return a typed error — never panic, never hang past
//! the configured deadlines. Degraded response frames must be flagged on
//! the wire and counted in telemetry.
//!
//! Telemetry state is process-global, so the whole matrix runs inside a
//! single test function — independent #[test]s would race on the enable
//! flag and on counter values.

use np_resilience::{Fault, RetryPolicy, ScriptedFaults, StreamDeadlines};
use np_serve::client::{ClientError, ClientLimits, ExchangeClient};
use np_serve::proto::{
    IndicatorKey, IndicatorSet, PredictReq, QueryReq, Request, RequestFrame, Response,
};
use np_serve::server::ExchangeServer;
use np_simulator::HwEvent;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const MACHINE: &str = "dl580";
const SETS: u64 = 6;

fn seed_set(param: u64) -> IndicatorSet {
    let mut indicators = BTreeMap::new();
    indicators.insert(HwEvent::L1dMiss, param as f64);
    indicators.insert(HwEvent::L3Miss, (param * 2) as f64);
    IndicatorSet {
        key: IndicatorKey {
            machine: MACHINE.to_string(),
            program: "stream".to_string(),
            param,
        },
        seed: param,
        cycles: 100.0 + 3.0 * param as f64,
        indicators,
        memhist: None,
        phases: None,
    }
}

fn fast_client(addr: std::net::SocketAddr) -> ExchangeClient {
    ExchangeClient::new(addr.to_string())
        .with_retry(RetryPolicy::immediate(3))
        .with_limits(ClientLimits {
            io: StreamDeadlines::symmetric(Duration::from_secs(2)),
            ..ClientLimits::default()
        })
}

/// One faulted exchange: a server scripted with `fault` at `site`,
/// serving `serves` connections, against the resilient client running
/// a query + stats frame.
fn faulted_exchange(
    site: &str,
    fault: Fault,
    serves: usize,
) -> Result<np_serve::proto::ResponseFrame, ClientError> {
    let faults = Arc::new(ScriptedFaults::new().inject(site, fault));
    let listener = ExchangeServer::bind().unwrap();
    let addr = listener.local_addr().unwrap();
    let server = ExchangeServer::new(4, 16).with_faults(faults);
    for param in 0..SETS {
        server.store().put(seed_set(param));
    }
    let handle = std::thread::spawn(move || server.serve(&listener, serves));
    let frame = RequestFrame::new(vec![
        Request::Query(QueryReq::machine(MACHINE)),
        Request::Stats,
    ]);
    let result = fast_client(addr).exchange(&frame);
    handle.join().unwrap().unwrap();
    result
}

#[test]
fn fault_matrix_every_fault_recovers_or_errors_typed() {
    np_telemetry::set_enabled(true);

    // --- the matrix ----------------------------------------------------
    // (site, fault, server connections needed, expects a retry)
    let matrix: Vec<(&str, Fault, usize, bool)> = vec![
        // Connection refused / dropped at accept: EOF on read, retry.
        ("serve.accept", Fault::RefuseAccept, 2, true),
        ("serve.accept", Fault::DropConnection, 2, true),
        // Response computed but never written: EOF, retry.
        ("serve.response", Fault::DropConnection, 2, true),
        // Response cut mid-frame: no newline arrives, EOF, retry.
        (
            "serve.response",
            Fault::TruncatePayload { keep: 10 },
            2,
            true,
        ),
        // Response replaced by deterministic garbage: parse fails, retry.
        (
            "serve.response",
            Fault::GarbageBytes { len: 64, seed: 7 },
            2,
            true,
        ),
        // Response delayed but within the read deadline: no retry needed.
        (
            "serve.response",
            Fault::Delay(Duration::from_millis(50)),
            1,
            false,
        ),
    ];

    for (site, fault, serves, expects_retry) in matrix {
        let label = format!("{site} / {fault:?}");
        let retries_before = np_telemetry::global().counter("serve.client.retries").get();
        let start = Instant::now();
        let got = faulted_exchange(site, fault, serves)
            .unwrap_or_else(|e| panic!("{label}: exchange failed outright: {e}"));
        let elapsed = start.elapsed();

        // Never hangs past the policy envelope: 3 attempts × 2 s deadline
        // plus slack is a generous ceiling; a wedged read would blow it.
        assert!(
            elapsed < Duration::from_secs(10),
            "{label}: took {elapsed:?}"
        );

        // Full recovery: the store snapshot is deterministic, so the
        // response must be bit-identical to a clean exchange.
        assert!(!got.degraded, "{label}: unexpectedly degraded");
        assert_eq!(got.responses.len(), 2, "{label}");
        match &got.responses[0] {
            Response::Sets(s) => {
                assert_eq!(s.sets.len(), SETS as usize, "{label}");
                for (i, set) in s.sets.iter().enumerate() {
                    assert_eq!(*set, seed_set(i as u64), "{label}: set {i}");
                }
            }
            other => panic!("{label}: query answered with {other:?}"),
        }
        match &got.responses[1] {
            Response::Stats(s) => assert_eq!(s.sets, SETS, "{label}"),
            other => panic!("{label}: stats answered with {other:?}"),
        }

        let retried = np_telemetry::global().counter("serve.client.retries").get() > retries_before;
        assert_eq!(retried, expects_retry, "{label}: retried = {retried}");
    }

    // --- degraded frames: flagged on the wire, counted in telemetry ----
    // A predict for an unknown source set is a *per-request* error: the
    // frame comes back degraded (not a dead connection), the client
    // surfaces it as a typed Server error without retrying, and the
    // degraded-frame counter moves.
    let degraded_before = np_telemetry::global()
        .counter("serve.client.degraded")
        .get();
    let listener = ExchangeServer::bind().unwrap();
    let addr = listener.local_addr().unwrap();
    let server = ExchangeServer::new(4, 16);
    for param in 0..SETS {
        server.store().put(seed_set(param));
    }
    let handle = std::thread::spawn(move || server.serve(&listener, 1));
    let client = fast_client(addr);
    let retries_before = np_telemetry::global().counter("serve.client.retries").get();
    let err = client
        .predict(PredictReq {
            source: IndicatorKey {
                machine: "nowhere".to_string(),
                program: "stream".to_string(),
                param: 0,
            },
            target_machine: MACHINE.to_string(),
        })
        .unwrap_err();
    assert!(
        matches!(&err, ClientError::Server(e) if e.contains("unknown source")),
        "{err}"
    );
    assert_eq!(
        np_telemetry::global().counter("serve.client.retries").get(),
        retries_before,
        "server errors are deterministic and must not be retried"
    );
    handle.join().unwrap().unwrap();
    assert!(
        np_telemetry::global()
            .counter("serve.client.degraded")
            .get()
            > degraded_before,
        "degraded frame not counted"
    );

    // --- exhaustion: no server at all ----------------------------------
    // Every attempt fails to connect; the client must return a typed
    // error (not panic, not hang).
    let dead_addr = {
        let l = ExchangeServer::bind().unwrap();
        l.local_addr().unwrap() // listener dropped: connections refused
    };
    let start = Instant::now();
    let err = fast_client(dead_addr).stats().unwrap_err();
    assert!(start.elapsed() < Duration::from_secs(10));
    assert!(
        matches!(&err, ClientError::Io(e) if e.contains("gave up after 3 attempts")),
        "{err}"
    );

    // --- telemetry visibility ------------------------------------------
    let snap = np_telemetry::global().snapshot();
    let counter = |name: &str| -> u64 {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert!(counter("faults.injected") >= 6, "faults not in snapshot");
    assert!(counter("serve.client.retries") > 0, "retries not counted");
    assert!(counter("serve.client.degraded") > 0);
    assert!(counter("serve.faults.refused") >= 2, "accept faults");
    assert!(counter("serve.faults.dropped") >= 1, "dropped responses");
    assert!(counter("serve.faults.truncated") >= 1);
    assert!(counter("serve.faults.garbage") >= 1);
    assert!(counter("serve.faults.delayed") >= 1);
    assert!(counter("serve.frames") > 0, "served frames not counted");
    assert!(counter("serve.queries") > 0);
    assert!(counter("serve.predicts") > 0);
}
