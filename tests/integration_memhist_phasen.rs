//! Integration: Memhist and Phasenprüfer end to end on the simulated
//! DL580, reproducing the §V-B and §V-C scenarios.

use np_core::memhist::probe::{ProbeServer, RemoteMemhist};
use np_workloads::mlc;
use numa_perf_tools::prelude::*;

fn sim() -> MachineSim {
    MachineSim::new(MachineConfig::dl580_gen9())
}

#[test]
fn fig10a_sift_peaks_verified_against_mlc() {
    let sim = sim();
    let machine = sim.config().clone();
    // Small enough for a test, large enough that bands exceed the L2.
    let sift = SiftKernel::optimized(1024, 8).build(&machine);
    let memhist = Memhist::with_defaults();
    let result = memhist.measure(&sim, &sift, 3);

    // Cache peaks must be present and verifiable (L2, L3).
    let v = memhist.verify_peaks(
        &result,
        HistogramMode::Occurrences,
        &[machine.latency.l2_hit as f64, machine.latency.l3_hit as f64],
    );
    assert!(
        v.unmatched.is_empty(),
        "unverified peaks: {:?}",
        v.unmatched
    );

    // "acts almost entirely on local memory": remote mass negligible.
    let remote_mass: i64 = result
        .histogram
        .bins
        .iter()
        .filter(|b| b.lo >= 320)
        .map(|b| b.count.max(0))
        .sum();
    let total = result.histogram.total_count();
    assert!(
        (remote_mass as f64) < 0.02 * total as f64,
        "remote mass {remote_mass} of {total}"
    );
}

#[test]
fn fig10b_remote_injection_shifts_cost_mass() {
    let sim = sim();
    let machine = sim.config().clone();
    let memhist = Memhist::with_defaults();
    let injector = LatencyChecker::remote_injector(8 << 20, 4000).build(&machine);
    let result = memhist.measure(&sim, &injector, 5);

    // The remote peak sits where mlc says it should.
    let matrix = mlc::measure_matrix(&sim, 8 << 20, 400, 9);
    let v = memhist.verify_peaks(&result, HistogramMode::Costs, &[matrix[0][1]]);
    assert!(
        v.unmatched.is_empty(),
        "remote peak missing at {}",
        matrix[0][1]
    );

    // In costs mode, the remote bins dominate the total cost.
    let remote_cost: i64 = result
        .histogram
        .bins
        .iter()
        .filter(|b| b.lo >= 320)
        .map(|b| b.cost_cycles)
        .sum();
    assert!(
        remote_cost as f64 > 0.8 * result.histogram.total_cost() as f64,
        "remote cost {} of {}",
        remote_cost,
        result.histogram.total_cost()
    );
}

#[test]
fn mlc_matrix_reflects_topologies() {
    // DL580: one flat remote tier. Ring: latency grows with hop count.
    let flat = MachineSim::new(MachineConfig::dl580_gen9());
    let m = mlc::measure_matrix(&flat, 4 << 20, 250, 3);
    let local = m[0][0];
    for n in 1..4 {
        assert!(
            m[0][n] > local + 80.0,
            "remote {} vs local {local}",
            m[0][n]
        );
        assert!((m[0][n] - m[0][1]).abs() < 40.0, "flat remote tier");
    }

    let ring = MachineSim::new(MachineConfig::eight_socket_ring());
    let m = mlc::measure_matrix(&ring, 4 << 20, 250, 3);
    assert!(
        m[0][4] > m[0][1] + 250.0,
        "4 hops {} vs 1 hop {}",
        m[0][4],
        m[0][1]
    );
}

#[test]
fn remote_probe_roundtrip_over_tcp() {
    let machine = MachineConfig::dl580_gen9();
    let program = LatencyChecker::new(0, 0, 4 << 20, 800).build(&machine);
    let config = MemhistConfig::default();

    let listener = ProbeServer::bind().unwrap();
    let addr = listener.local_addr().unwrap();
    let server = ProbeServer::new(MachineSim::new(machine.clone()), program.clone());
    let handle = std::thread::spawn(move || server.serve(&listener, 1));

    let remote = RemoteMemhist::fetch(addr, &config, 11).unwrap();
    handle.join().unwrap().unwrap();

    let local = Memhist::new(config).measure(&MachineSim::new(machine), &program, 11);
    assert_eq!(
        remote.histogram.total_count(),
        local.histogram.total_count()
    );
}

#[test]
fn fig11_phase_split_and_attribution() {
    let sim = sim();
    let machine = sim.config().clone();
    let trace = PhaseTraceKernel::chrome_startup().build(&machine);
    let pp = Phasenpruefer::default();
    let events = [EventId::LoadRetired, EventId::Instructions];
    let (report, attr) = pp.measure(&sim, &trace, 1, &events).expect("phases");

    // Ramp-up: steep, well-explained; computation: flat.
    assert!(report.fit.before.r_squared > 0.95);
    assert!(report.ramp_slope() > 10.0 * report.compute_slope().abs().max(1e-9));

    // Attribution: loads concentrate in the computation phase.
    assert!(
        attr.per_phase[1][&EventId::LoadRetired]
            > 10.0 * attr.per_phase[0][&EventId::LoadRetired].max(1.0)
    );

    // The k-phase extension splits a 3-superstep trace into 6 segments.
    let bsp = PhaseTraceKernel::bsp_supersteps(3).build(&machine);
    let run = sim.run(&bsp, 2).expect("valid program");
    let bounds = pp.detect_k(&run.footprint, 6).expect("k phases");
    assert_eq!(bounds.len(), 6);
}

#[test]
fn two_step_strategy_transfers_across_machines() {
    use np_core::evsel::ParameterSweep;
    use np_core::strategy::indicators_of;
    use np_workloads::stream::StreamTriad;

    // All sizes in the DRAM-traffic regime (3 arrays × 8 B × elements well
    // beyond the private caches), same regime as the target.
    let sizes = [
        16 * 1024usize,
        24 * 1024,
        32 * 1024,
        48 * 1024,
        64 * 1024,
        96 * 1024,
    ];
    let target = 256 * 1024usize;
    let events = vec![
        EventId::Cycles,
        EventId::LoadRetired,
        EventId::LocalDramAccess,
        EventId::RemoteDramAccess,
    ];

    let measure_sweep = |machine: &MachineConfig, seed: u64| {
        let runner = Runner::new(machine.clone());
        let mut sweep = ParameterSweep::new("elements");
        let mut costs = Vec::new();
        for &s in &sizes {
            let runs = runner
                .measure(
                    &StreamTriad::interleaved(s, 4),
                    &MeasurementPlan::events(events.clone(), 3, seed),
                )
                .unwrap();
            costs.push(runs.mean(EventId::Cycles).unwrap());
            sweep.push(s as f64, runs);
        }
        (sweep, costs)
    };

    let a = MachineConfig::dl580_gen9();
    let b = MachineConfig::eight_socket_ring();

    let (sweep_a, _) = measure_sweep(&a, 1);
    let ex = IndicatorExtrapolator::fit(&sweep_a, 0.9);
    let mut indicators = ex.predict(target as f64).expect("extrapolation");
    indicators.remove(&EventId::Cycles);

    let (sweep_b, costs_b) = measure_sweep(&b, 2);
    let pairs: Vec<_> = sweep_b
        .points
        .iter()
        .zip(&costs_b)
        .map(|((_, rs), &c)| {
            let mut ind = indicators_of(rs);
            ind.remove(&EventId::Cycles);
            (ind, c)
        })
        .collect();
    let model = CostModel::fit(&pairs).expect("cost model");
    let predicted = model.predict(&indicators).expect("prediction");

    let actual = Runner::new(b)
        .measure(
            &StreamTriad::interleaved(target, 4),
            &MeasurementPlan::events(vec![EventId::Cycles], 2, 5),
        )
        .unwrap()
        .mean(EventId::Cycles)
        .unwrap();

    let err = (predicted - actual).abs() / actual;
    assert!(err < 0.15, "transfer error {:.1} %", err * 100.0);
}
