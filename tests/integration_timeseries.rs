//! End-to-end check of the time-series layer: `run --sample` must write
//! a byte-identical capture across repeated runs AND across pool thread
//! counts (the determinism contract), `report` must render it as text
//! and as a self-contained HTML file, and `top` must complete a bounded
//! live loop.
//!
//! The global sampler and the phase stack are process-global, so the
//! whole flow lives in one test function — independent #[test]s would
//! race on them.

fn args(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

fn run_capture(dir: &std::path::Path, tag: &str, threads: &str) -> (String, String) {
    let cap = dir.join(format!("{tag}.capture.json"));
    let tl = dir.join(format!("{tag}.timeline.json"));
    let out = numa_perf_tools::cli::run(&args(&[
        "run",
        "--sample",
        "--workload",
        "row-major",
        "--size",
        "256",
        "--reps",
        "3",
        "--seed",
        "7",
        "--machine",
        "two-socket",
        "--threads",
        threads,
        "--out",
        cap.to_str().unwrap(),
        "--timeline",
        tl.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(out.contains("sampled campaign"), "{out}");
    (
        std::fs::read_to_string(&cap).unwrap(),
        std::fs::read_to_string(&tl).unwrap(),
    )
}

#[test]
fn sampled_run_is_deterministic_and_reportable() {
    let dir = std::env::temp_dir().join(format!("np-ts-int-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // --- capture determinism ------------------------------------------
    // Byte-identical across runs and across EVERY thread count: the
    // per-repetition samplers merge in submission order, so --threads is
    // purely a throughput knob.
    let (base, timeline) = run_capture(&dir, "t1a", "1");
    let (again, _) = run_capture(&dir, "t1b", "1");
    assert_eq!(base, again, "capture differs between identical runs");
    for threads in ["2", "8"] {
        let (other, _) = run_capture(&dir, &format!("t{threads}"), threads);
        assert_eq!(
            base, other,
            "capture differs between 1 and {threads} threads"
        );
    }

    // The capture parses back and carries per-node, phase-attributed
    // series for every repetition.
    let cap: np_core::capture::Capture = serde_json::from_str(&base).unwrap();
    assert_eq!(cap.schema, np_core::capture::CAPTURE_SCHEMA);
    assert_eq!(cap.repetitions, 3);
    assert!(
        cap.phases.iter().any(|p| p == "measure"),
        "{:?}",
        cap.phases
    );
    assert!(!cap.node_ids().is_empty());
    for rep in 0..3 {
        assert!(
            cap.series
                .iter()
                .any(|s| s.name.starts_with(&format!("rep{rep}."))),
            "no series for repetition {rep}"
        );
    }

    // The timeline is wall-clock and hence NOT deterministic, but its
    // chunk accounting must cover every repetition.
    let tl: np_core::capture::Timeline = serde_json::from_str(&timeline).unwrap();
    assert_eq!(tl.schema, np_core::capture::TIMELINE_SCHEMA);
    assert_eq!(tl.chunk.len(), 3);

    // --- report: text and self-contained HTML -------------------------
    let cap_path = dir.join("t1a.capture.json");
    let tl_path = dir.join("t1a.timeline.json");
    let text = numa_perf_tools::cli::run(&args(&[
        "report",
        "--capture",
        cap_path.to_str().unwrap(),
        "--timeline",
        tl_path.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(text.contains("rep0."), "{text}");
    assert!(text.contains("worker timeline"), "{text}");

    let html_path = dir.join("report.html");
    let out = numa_perf_tools::cli::run(&args(&[
        "report",
        "--capture",
        cap_path.to_str().unwrap(),
        "--timeline",
        tl_path.to_str().unwrap(),
        "--html",
        "--out",
        html_path.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(out.contains("HTML report"), "{out}");
    let html = std::fs::read_to_string(&html_path).unwrap();
    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(html.contains("<svg"));
    assert!(html.contains("worker timeline"));
    // Self-contained: no scripts, no external fetches.
    assert!(!html.contains("<script"));
    assert!(!html.contains("http://") && !html.contains("https://"));

    // A capture from a different schema version is refused, not
    // misrendered.
    let stale = base.replacen("np-capture/1", "np-capture/0", 1);
    let stale_path = dir.join("stale.capture.json");
    std::fs::write(&stale_path, stale).unwrap();
    let err = numa_perf_tools::cli::run(&args(&[
        "report",
        "--capture",
        stale_path.to_str().unwrap(),
    ]))
    .unwrap_err();
    assert!(err.contains("schema"), "{err}");

    // --- top: a bounded live loop over the global sampler -------------
    let out = numa_perf_tools::cli::run(&args(&[
        "top",
        "--machine",
        "two-socket",
        "--workload",
        "row-major",
        "--size",
        "256",
        "--ticks",
        "3",
        "--interval",
        "60",
    ]))
    .unwrap();
    assert!(out.contains("np top"), "{out}");
    assert!(out.contains("3 tick(s)"), "{out}");
    // The engine's live timeslice hook fed per-node series.
    assert!(out.contains("sim.node0."), "{out}");

    std::fs::remove_dir_all(&dir).unwrap();
}
