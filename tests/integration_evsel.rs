//! Integration: workload → simulator → PMU acquisition → EvSel analyses.
//!
//! These tests drive the full §V-A pipeline end to end and assert the
//! paper's qualitative findings hold on the simulated DL580.

use np_core::evsel::ParameterSweep;
use numa_perf_tools::prelude::*;

fn runner() -> Runner {
    Runner::new(MachineConfig::dl580_gen9())
}

#[test]
fn fig8_cache_miss_comparison_headline_findings() {
    let runner = runner();
    // Targeted event list (2 register batches) to keep the test fast; the
    // size must be large enough that the column stride defeats both the L2
    // and the prefetcher (≥ 512).
    let plan = MeasurementPlan::events(
        vec![
            EventId::Cycles,
            EventId::Instructions,
            EventId::StallCycles,
            EventId::L1dMiss,
            EventId::L2Miss,
            EventId::FillBufferReject,
            EventId::BranchMiss,
        ],
        4,
        1,
    );
    let size = 512;
    let a = runner
        .measure(&CacheMissKernel::row_major(size), &plan)
        .unwrap();
    let b = runner
        .measure(&CacheMissKernel::column_major(size), &plan)
        .unwrap();
    let report = EvSel::default().compare(&a, &b);

    // "L1 … cache misses rose by over 1000%"
    let l1 = report.row(EventId::L1dMiss).unwrap();
    assert!(
        l1.relative_change > 3.0,
        "L1 misses {:+.1}%",
        l1.relative_change * 100.0
    );
    assert!(l1.significant);

    // "rejected fill buffer requests" explode from near zero.
    let fb = report.row(EventId::FillBufferReject).unwrap();
    assert!(
        fb.mean_b > 100.0 * fb.mean_a.max(1.0),
        "fill buffer rejects {} -> {}",
        fb.mean_a,
        fb.mean_b
    );

    // "branch misses … show very small changes"
    let bm = report.row(EventId::BranchMiss).unwrap();
    assert!(
        bm.relative_change.abs() < 0.1,
        "branch misses {:+.3}",
        bm.relative_change
    );

    // "instruction-related values show very small changes"
    let ins = report.row(EventId::Instructions).unwrap();
    assert!(ins.relative_change.abs() < 0.02);

    // "The difference in the numbers of cycles can be fully explained
    // with execution stalls."
    let cyc = report.row(EventId::Cycles).unwrap();
    let stall = report.row(EventId::StallCycles).unwrap();
    let cycle_diff = cyc.mean_b - cyc.mean_a;
    let stall_diff = stall.mean_b - stall.mean_a;
    assert!(
        (stall_diff / cycle_diff) > 0.4 && cycle_diff > 0.0,
        "stalls {stall_diff} vs cycle growth {cycle_diff}"
    );

    // Significance of the big movers exceeds 99.9 %.
    for e in [EventId::L1dMiss, EventId::L2Miss, EventId::FillBufferReject] {
        let row = report.row(e).unwrap();
        assert!(
            row.ttest.as_ref().unwrap().significance > 0.999,
            "{:?} significance {}",
            e,
            row.ttest.as_ref().unwrap().significance
        );
    }
}

#[test]
fn fig9_parallel_sort_correlations() {
    let runner = runner();
    let plan = MeasurementPlan::events(
        vec![
            EventId::L1dLocked,
            EventId::SpecJumpsRetired,
            EventId::HitmTransfer,
            EventId::Cycles,
            EventId::Instructions,
        ],
        3,
        7,
    );
    let mut sweep = ParameterSweep::new("threads");
    for threads in [1usize, 2, 4, 6, 8, 12, 16] {
        let w = ParallelSortKernel::new(32 * 1024, threads);
        sweep.push(threads as f64, runner.measure(&w, &plan).unwrap());
    }
    let report = EvSel::default().correlate(&sweep);

    // Threads ↔ L1d-locked: strong positive (paper: R > 0.95).
    let lock = report.row(EventId::L1dLocked).unwrap();
    assert!(lock.pearson > 0.95, "L1dLocked r = {}", lock.pearson);

    // Threads ↔ speculative jumps: negative and monotone.
    let spec = report.row(EventId::SpecJumpsRetired).unwrap();
    assert!(spec.pearson < -0.5, "spec r = {}", spec.pearson);
    let (_, y) = sweep.series(EventId::SpecJumpsRetired);
    assert!(y.windows(2).all(|w| w[0] > w[1]), "not monotone: {y:?}");

    // Threads ↔ HITM transfers: strong positive.
    let hitm = report.row(EventId::HitmTransfer).unwrap();
    assert!(hitm.pearson > 0.95, "HITM r = {}", hitm.pearson);
}

#[test]
fn acquisition_modes_agree_for_fixed_counters() {
    let runner = runner();
    let w = CacheMissKernel::row_major(128);
    let events = vec![EventId::Cycles, EventId::Instructions];
    let batched = runner
        .measure(&w, &MeasurementPlan::events(events.clone(), 3, 5))
        .unwrap();
    let muxed = runner
        .measure(&w, &MeasurementPlan::events(events, 3, 5).multiplexed())
        .unwrap();
    // Fixed-function counters are exact in both modes.
    assert_eq!(
        batched.mean(EventId::Instructions).unwrap(),
        muxed.mean(EventId::Instructions).unwrap()
    );
}
