//! Fault matrix: every scripted fault, end-to-end through the remote
//! probe round-trip. For each fault the client must either recover
//! within its retry policy (bit-identical to a clean fetch) or return a
//! typed degraded-but-usable result — never panic, and never hang past
//! the configured deadlines. Retries and circuit state must be visible
//! in a telemetry snapshot afterwards.
//!
//! Telemetry state is process-global, so the whole matrix runs inside a
//! single test function — independent #[test]s would race on the enable
//! flag and on counter values.

use np_core::memhist::probe::{FetchPolicy, ProbeServer, RemoteMemhist};
use np_core::memhist::{Memhist, MemhistConfig};
use np_resilience::{
    BreakerConfig, CircuitBreaker, CircuitState, Fault, RetryPolicy, ScriptedFaults,
    StreamDeadlines,
};
use np_simulator::{MachineConfig, MachineSim};
use np_workloads::mlc::LatencyChecker;
use np_workloads::Workload;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn quiet_sim() -> MachineSim {
    let mut cfg = MachineConfig::two_socket_small();
    cfg.noise.timer_interval = 0;
    cfg.noise.dram_jitter = 0.0;
    cfg.timeslice_cycles = 5_000;
    MachineSim::new(cfg)
}

fn program() -> np_simulator::Program {
    LatencyChecker::new(0, 0, 2 << 20, 600).build(quiet_sim().config())
}

fn fast_policy() -> FetchPolicy {
    FetchPolicy {
        retry: RetryPolicy::immediate(3),
        io: StreamDeadlines::symmetric(Duration::from_secs(2)),
        ..FetchPolicy::default()
    }
}

/// Runs one faulted round-trip: a server scripted with `fault` at
/// `site`, serving `serves` connections, against a resilient fetch.
fn faulted_fetch(
    site: &str,
    fault: Fault,
    serves: usize,
) -> Result<np_core::MemhistResult, np_core::memhist::probe::ProbeError> {
    let config = MemhistConfig::default();
    let faults = Arc::new(ScriptedFaults::new().inject(site, fault));
    let listener = ProbeServer::bind().unwrap();
    let addr = listener.local_addr().unwrap();
    let server = ProbeServer::new(quiet_sim(), program()).with_faults(faults);
    let handle = std::thread::spawn(move || server.serve(&listener, serves));
    let result = RemoteMemhist::fetch_resilient(addr, &config, 9, &fast_policy(), None);
    handle.join().unwrap().unwrap();
    result
}

#[test]
fn fault_matrix_every_fault_recovers_or_degrades_typed() {
    np_telemetry::set_enabled(true);

    // Clean reference: the probe simulator is deterministic, so a
    // recovered fetch must reproduce these bins exactly.
    let config = MemhistConfig::default();
    let reference = Memhist::new(config.clone()).measure(&quiet_sim(), &program(), 9);

    // --- the matrix ----------------------------------------------------
    // (site, fault, server connections needed, expects a retry)
    let matrix: Vec<(&str, Fault, usize, bool)> = vec![
        // Server accepts then immediately drops: client sees EOF, retries.
        ("probe.accept", Fault::RefuseAccept, 2, true),
        ("probe.accept", Fault::DropConnection, 2, true),
        // Response computed but never written: read times out / EOF.
        ("probe.response", Fault::DropConnection, 2, true),
        // Response cut mid-frame: parse fails, client retries.
        (
            "probe.response",
            Fault::TruncatePayload { keep: 20 },
            2,
            true,
        ),
        // Response replaced by deterministic garbage: parse fails.
        (
            "probe.response",
            Fault::GarbageBytes { len: 64, seed: 7 },
            2,
            true,
        ),
        // Response delayed but within the read deadline: no retry needed.
        (
            "probe.response",
            Fault::Delay(Duration::from_millis(50)),
            1,
            false,
        ),
    ];

    for (site, fault, serves, expects_retry) in matrix {
        let label = format!("{site} / {fault:?}");
        let retries_before = np_telemetry::global().counter("resilience.retries").get();
        let start = Instant::now();
        let got = faulted_fetch(site, fault, serves)
            .unwrap_or_else(|e| panic!("{label}: fetch failed outright: {e}"));
        let elapsed = start.elapsed();

        // Never hangs past the policy envelope: 3 attempts × 2 s deadline
        // plus slack is a generous ceiling; a wedged read would blow it.
        assert!(
            elapsed < Duration::from_secs(10),
            "{label}: took {elapsed:?}"
        );

        // Full recovery: deterministic, so bins are bit-identical.
        assert!(!got.degraded, "{label}: unexpectedly degraded");
        assert!(got.missing_intervals.is_empty(), "{label}");
        assert_eq!(
            got.histogram.bins.len(),
            reference.histogram.bins.len(),
            "{label}"
        );
        for (g, r) in got.histogram.bins.iter().zip(&reference.histogram.bins) {
            assert_eq!(g.count, r.count, "{label}: bin [{}, {})", g.lo, g.hi);
        }

        let retried = np_telemetry::global().counter("resilience.retries").get() > retries_before;
        assert_eq!(retried, expects_retry, "{label}: retried = {retried}");
    }

    // --- exhaustion: a fault burst outlasting the retry budget ---------
    // No server at all: every attempt fails to connect. The client must
    // return a typed error (not panic, not hang) and trip the breaker.
    let dead_addr = {
        let l = ProbeServer::bind().unwrap();
        l.local_addr().unwrap() // listener dropped: connections refused
    };
    let breaker = CircuitBreaker::new(
        "probe.circuit",
        BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_secs(60),
        },
    );
    let start = Instant::now();
    let err = RemoteMemhist::fetch_resilient(dead_addr, &config, 9, &fast_policy(), Some(&breaker))
        .unwrap_err();
    assert!(start.elapsed() < Duration::from_secs(10));
    let msg = err.to_string();
    assert!(msg.contains("probe chunks failed"), "{msg}");
    assert_eq!(breaker.state(), CircuitState::Open);

    // A second fetch through the open breaker is rejected immediately.
    let start = Instant::now();
    let err = RemoteMemhist::fetch_resilient(dead_addr, &config, 9, &fast_policy(), Some(&breaker))
        .unwrap_err();
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "open circuit must fail fast"
    );
    assert!(err.to_string().contains("circuit open"), "{err}");

    // --- telemetry visibility ------------------------------------------
    let snap = np_telemetry::global().snapshot();
    let counter = |name: &str| -> u64 {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert!(counter("resilience.retries") > 0, "retries not in snapshot");
    assert!(counter("faults.injected") >= 6, "faults not in snapshot");
    assert!(counter("probe.fetch.chunks") > 0);
    assert!(
        counter("probe.circuit.opens") >= 1,
        "breaker opens not in snapshot"
    );
    assert!(counter("probe.circuit.rejected") >= 1);
    let circuit_state = snap
        .gauges
        .iter()
        .find(|(n, _)| n == "probe.circuit.state")
        .map(|(_, v)| *v);
    assert_eq!(
        circuit_state,
        Some(2),
        "open circuit not visible in snapshot"
    );
}
