//! Differential proof that the engine's scratch-state recycling is
//! invisible: for every workload in the registry, on both quiet machine
//! presets, `MachineSim::run` (which reuses pooled per-core caches, TLBs,
//! predictors and the coherence directory via epoch-validated resets)
//! produces results byte-identical to `MachineSim::run_fresh` (which
//! allocates everything from scratch — the pre-refactor semantics).
//!
//! Each sim instance runs every program twice, so the second run always
//! executes on *recycled* state that the previous run dirtied; a reset
//! that forgets to clear any structure (cache line, TLB entry, predictor
//! counter, prefetch stream, directory line, RNG, timer phase) shows up
//! as a counter diff here.

use np_simulator::{MachineConfig, MachineSim, RunResult};
use np_workloads::registry;

fn quiet(mut cfg: MachineConfig) -> MachineConfig {
    cfg.noise.timer_interval = 0;
    cfg.noise.dram_jitter = 0.0;
    cfg
}

/// Bounded sizes: each run happens three times per preset, so the sweep
/// shrinks every workload well below its characteristic footprint. The
/// differential property needs the structures *exercised* (L1/L2/L3
/// overflow, TLB thrash, directory traffic), not paper-scale runtimes.
fn size_for(name: &str) -> Option<usize> {
    match name {
        "row-major" | "column-major" => Some(256),
        "sort" => Some(8 * 1024),
        "sift" | "sift-naive" => Some(512),
        "mlc-local" | "mlc-remote" => Some(1 << 20),
        "stream-local" | "stream-bound" | "stream-interleaved" => Some(16 * 1024),
        "matmul" => Some(48),
        "bfs" | "bfs-bound" | "bfs-interleaved" => Some(4 * 1024),
        "hashjoin-small" => Some(2 * 1024),
        "hashjoin-large" => Some(8 * 1024),
        "chase-small" => Some(1 << 20),
        "chase-large" => Some(2 << 20),
        "stencil-small" => Some(96),
        "stencil-large" => Some(128),
        "walk-small" => Some(4 * 1024),
        "walk-large" => Some(16 * 1024),
        _ => None,
    }
}

fn assert_same(name: &str, what: &str, fresh: &RunResult, got: &RunResult) {
    assert_eq!(
        fresh.counters, got.counters,
        "{name}: {what} diverged from run_fresh in event counters"
    );
    assert_eq!(fresh.cycles, got.cycles, "{name}: {what} cycles diverged");
    assert_eq!(
        fresh.footprint, got.footprint,
        "{name}: {what} footprint series diverged"
    );
    assert_eq!(
        fresh.regions, got.regions,
        "{name}: {what} region totals diverged"
    );
}

fn differential_sweep(cfg: MachineConfig) {
    // One sim for the whole registry: every run after the first executes
    // on scratch state dirtied by a *different* workload.
    let sim = MachineSim::new(cfg.clone());
    for (i, name) in registry::NAMES.iter().enumerate() {
        let workload = registry::build(name, size_for(name), 2, &cfg).expect("registry build");
        let program = workload.build(&cfg);
        let seed = 0x9E37 ^ (i as u64) << 8;
        let fresh = sim.run_fresh(&program, seed).expect("run_fresh");
        let first = sim.run(&program, seed).expect("run (cold scratch)");
        let second = sim.run(&program, seed).expect("run (recycled scratch)");
        assert_same(name, "pooled run", &fresh, &first);
        assert_same(name, "recycled run", &fresh, &second);
    }
}

#[test]
fn registry_is_bit_identical_on_two_socket_quiet() {
    differential_sweep(quiet(MachineConfig::two_socket_small()));
}

#[test]
fn registry_is_bit_identical_on_ring_quiet() {
    differential_sweep(quiet(MachineConfig::eight_socket_ring()));
}
