//! In-tree stand-in for `serde`, vendored so the workspace builds with no
//! network access and no external crates.
//!
//! The real serde is a zero-copy visitor framework; this shim is a much
//! smaller design that covers exactly what the workspace needs: types
//! convert to and from a JSON-shaped [`Value`] tree, and `serde_json`
//! (also vendored) prints/parses that tree. The public names mirror serde
//! (`Serialize`, `Deserialize`, `#[derive(Serialize, Deserialize)]`) so
//! call sites are source-compatible with the real crate.
//!
//! Representation choices match `serde_json` defaults where the workspace
//! depends on them:
//! * structs → objects with the field names as keys,
//! * unit enum variants → strings (`"FirstTouch"`),
//! * newtype enum variants → one-entry objects (`{"Bind": 0}`),
//! * maps → objects (keys must serialize as strings).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative or small integer.
    Int(i64),
    /// A non-negative integer (kept separate so `u64 > i64::MAX` survive).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up an object key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A short name of the variant for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: what was expected, what was found.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Builds a "while deserializing T: expected X, found Y" error.
    pub fn expected(what: &str, context: &str, found: &Value) -> DeError {
        DeError(format!("{context}: expected {what}, found {}", found.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Reads a struct field out of object entries (helper for derived code).
pub fn from_field<T: Deserialize>(
    obj: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v)
            .map_err(|e| DeError(format!("{ty}.{key}: {e}"))),
        None => Err(DeError(format!("{ty}: missing field '{key}'"))),
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::UInt(u) => Some(*u),
                    Value::Int(i) if *i >= 0 => Some(*i as u64),
                    _ => None,
                };
                raw.and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| DeError::expected("unsigned integer", stringify!($t), v))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::Int(i) => Some(*i),
                    Value::UInt(u) => i64::try_from(*u).ok(),
                    _ => None,
                };
                raw.and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| DeError::expected("integer", stringify!($t), v))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|e| e.to_value()).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let entries = self
            .iter()
            .map(|(k, v)| {
                let key = match k.to_value() {
                    Value::Str(s) => s,
                    Value::Int(i) => i.to_string(),
                    Value::UInt(u) => u.to_string(),
                    other => panic!("map key must serialize as a string, got {}", other.kind()),
                };
                (key, v.to_value())
            })
            .collect();
        Value::Object(entries)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(o) => o
                .iter()
                .map(|(k, v)| {
                    let key = K::from_value(&Value::Str(k.clone()))
                        .map_err(|e| DeError(format!("map key '{k}': {e}")))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            other => Err(DeError::expected("object", "BTreeMap", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
