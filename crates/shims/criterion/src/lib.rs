//! In-tree stand-in for `criterion`, vendored so the workspace builds
//! offline with zero external crates.
//!
//! Implements the measurement loop directly: per benchmark, a warm-up
//! pass sizes the iteration batch, then `sample_size` timed samples run
//! and the median/min/max per-iteration times print as one line. No
//! statistical outlier analysis, plotting, or baseline storage — but the
//! same source-level API (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`)
//! so the bench targets compile and run unchanged.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, but still referenced by bench code).
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier composed of a function name and a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's display convention.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }
}

/// The harness entry point handed to each bench function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { _parent: self, name, sample_size: 20, throughput: None }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&self.name, &id.into_bench_id(), self.throughput);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id.id, self.throughput);
        self
    }

    /// Ends the group (printing happens per benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Accepts both `&str` and `BenchmarkId` benchmark names.
pub trait IntoBenchId {
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

/// Times closures; handed to the benchmark body.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>, // per-iteration time, one per sample
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher { sample_size, samples: Vec::new() }
    }

    /// Measures `routine`, adaptively batching fast routines.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: find how many iterations fill ~5 ms, so timer
        // resolution does not dominate fast routines.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 20 {
                break;
            }
            batch = (batch * 4).min(1 << 20);
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            eprintln!("  {group}/{id}: no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let (lo, hi) = (sorted[0], sorted[sorted.len() - 1]);
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.2} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:.2} MiB/s", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
            }
            None => String::new(),
        };
        eprintln!(
            "  {group}/{id}: median {} [{} .. {}]{rate}",
            fmt_duration(median),
            fmt_duration(lo),
            fmt_duration(hi),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group of bench functions (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` running listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
