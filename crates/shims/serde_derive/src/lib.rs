//! `#[derive(Serialize, Deserialize)]` for the in-tree serde shim.
//!
//! Parses the item's token stream directly (no `syn`/`quote`; the
//! workspace builds offline with zero external crates) and emits impls of
//! the shim's `to_value`/`from_value` traits. Supports what the workspace
//! uses: plain structs with named fields, and enums whose variants are
//! unit-like or carry exactly one unnamed field.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the item the derive is attached to.
enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<(String, usize)> },
}

/// Skips `#[...]` attribute pairs at the current position.
fn skip_attributes(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                match iter.peek() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '!' => {
                        iter.next();
                    }
                    _ => {}
                }
                // The bracket group of the attribute.
                iter.next();
            }
            _ => return,
        }
    }
}

/// Skips a `pub` / `pub(...)` visibility marker.
fn skip_visibility(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attributes(&mut iter);
    skip_visibility(&mut iter);

    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("derive shim does not support generic types (on `{name}`)");
        }
    }
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(_) => continue, // e.g. `where` clauses (unused here)
            None => panic!("derive: `{name}` has no braced body"),
        }
    };

    match kind.as_str() {
        "struct" => Item::Struct { name, fields: parse_fields(body.stream()) },
        "enum" => Item::Enum { name, variants: parse_variants(body.stream()) },
        other => panic!("derive: cannot derive for `{other}` items"),
    }
}

/// Field names of a named-field struct body.
fn parse_fields(body: TokenStream) -> Vec<String> {
    let mut iter = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        let field = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("derive: expected field name, got {other:?}"),
            None => break,
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive: tuple structs unsupported (after `{field}`: {other:?})"),
        }
        fields.push(field);
        // Skip the type: everything until a top-level `,`. Generics like
        // `BTreeMap<K, V>` contain commas inside `<...>`, so track depth.
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// `(variant name, field count)` pairs of an enum body.
fn parse_variants(body: TokenStream) -> Vec<(String, usize)> {
    let mut iter = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("derive: expected variant name, got {other:?}"),
            None => break,
        };
        let mut arity = 0usize;
        if let Some(TokenTree::Group(g)) = iter.peek() {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    // Count top-level comma-separated types.
                    let mut depth = 0i32;
                    let mut saw_any = false;
                    for tok in g.stream() {
                        saw_any = true;
                        match tok {
                            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => arity += 1,
                            _ => {}
                        }
                    }
                    if saw_any {
                        arity += 1;
                    }
                    iter.next();
                }
                Delimiter::Brace => panic!("derive shim: struct-like variant `{name}` unsupported"),
                _ => {}
            }
        }
        variants.push((name, arity));
        // Skip an optional `= discriminant` and the trailing comma.
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__obj.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __obj: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(__obj)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n"
                    ),
                    1 => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(vec![(\
                         \"{v}\".to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                    ),
                    n => panic!("derive shim: variant {name}::{v} has {n} fields (max 1)"),
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("derive(Serialize): generated code must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let reads: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(__obj, \"{f}\", \"{name}\")?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> Result<Self, ::serde::DeError> {{\n\
                         let __obj = __v.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"object\", \"{name}\", __v))?;\n\
                         Ok({name} {{\n{reads}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, a)| *a == 0)
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),\n"))
                .collect();
            let newtype_arms: String = variants
                .iter()
                .filter(|(_, a)| *a == 1)
                .map(|(v, _)| {
                    format!(
                        "\"{v}\" => Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => Err(::serde::DeError(format!(\
                                     \"unknown {name} variant '{{__other}}'\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                                 let (__tag, __inner) = (&__o[0].0, &__o[0].1);\n\
                                 match __tag.as_str() {{\n\
                                     {newtype_arms}\
                                     __other => Err(::serde::DeError(format!(\
                                         \"unknown {name} variant '{{__other}}'\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(::serde::DeError::expected(\
                                 \"string or 1-entry object\", \"{name}\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("derive(Deserialize): generated code must parse")
}
