//! In-tree stand-in for `rayon`, vendored so the workspace builds offline.
//!
//! Covers the pattern the workspace uses — `(0..n).into_par_iter()
//! .map(f).collect::<Vec<_>>()` — by splitting the index range into
//! contiguous chunks and running them on `std::thread::scope` threads, one
//! per available core. Results keep input order, so callers observe the
//! same determinism guarantees real rayon gives for indexed collects.

use std::ops::Range;

/// Number of worker threads a fan-out will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
}

pub mod iter {
    use super::*;

    /// Conversion into a parallel iterator (the rayon entry point).
    pub trait IntoParallelIterator {
        /// The resulting parallel iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Element type.
        type Item: Send;
        /// Converts `self`.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// A minimal parallel iterator: map + ordered collect.
    pub trait ParallelIterator: Sized {
        /// Element type.
        type Item: Send;

        /// Maps each element through `f` in parallel.
        fn map<R, F>(self, f: F) -> ParMap<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            ParMap { inner: self, f }
        }

        /// Runs the pipeline and collects results in input order.
        fn collect<C: FromIterator<Self::Item>>(self) -> C;

        /// Splits this iterator into `(start, end)` index bounds plus a
        /// producer for the element at one index (implementation detail;
        /// only index ranges are supported as sources).
        #[doc(hidden)]
        fn bounds(&self) -> Range<usize>;
        #[doc(hidden)]
        fn produce(&self, index: usize) -> Self::Item;
    }

    impl IntoParallelIterator for Range<usize> {
        type Iter = ParRange;
        type Item = usize;

        fn into_par_iter(self) -> ParRange {
            ParRange { range: self }
        }
    }

    /// Parallel iterator over an index range.
    pub struct ParRange {
        range: Range<usize>,
    }

    impl ParallelIterator for ParRange {
        type Item = usize;

        fn collect<C: FromIterator<usize>>(self) -> C {
            run_ordered(self).into_iter().collect()
        }

        fn bounds(&self) -> Range<usize> {
            self.range.clone()
        }

        fn produce(&self, index: usize) -> usize {
            index
        }
    }

    /// The result of [`ParallelIterator::map`].
    pub struct ParMap<I, F> {
        inner: I,
        f: F,
    }

    impl<I, R, F> ParallelIterator for ParMap<I, F>
    where
        I: ParallelIterator + Sync,
        R: Send,
        F: Fn(I::Item) -> R + Sync,
    {
        type Item = R;

        fn collect<C: FromIterator<R>>(self) -> C {
            run_ordered(self).into_iter().collect()
        }

        fn bounds(&self) -> Range<usize> {
            self.inner.bounds()
        }

        fn produce(&self, index: usize) -> R {
            (self.f)(self.inner.produce(index))
        }
    }

    /// Evaluates every index of `it` across scoped worker threads,
    /// returning results in index order.
    fn run_ordered<I: ParallelIterator + Sync>(it: I) -> Vec<I::Item> {
        let Range { start, end } = it.bounds();
        let n = end.saturating_sub(start);
        if n == 0 {
            return Vec::new();
        }
        let workers = current_num_threads().min(n).max(1);
        if workers == 1 {
            return (start..end).map(|i| it.produce(i)).collect();
        }
        let chunk = n.div_ceil(workers);
        let mut chunks: Vec<Vec<I::Item>> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let it = &it;
                    let lo = start + w * chunk;
                    let hi = (lo + chunk).min(end);
                    s.spawn(move || (lo..hi).map(|i| it.produce(i)).collect::<Vec<_>>())
                })
                .collect();
            for h in handles {
                chunks.push(h.join().expect("parallel worker panicked"));
            }
        });
        chunks.into_iter().flatten().collect()
    }
}
