//! In-tree stand-in for `serde_json`, vendored so the workspace builds
//! offline. Prints and parses JSON over the serde shim's [`Value`] model.
//!
//! Numbers print via Rust's shortest-roundtrip `Display` for `f64`, so a
//! serialize → parse cycle reproduces the exact bit pattern (the config
//! roundtrip tests depend on this). Non-finite floats print as `null`,
//! matching real serde_json.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON syntax or shape error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses `json` into any deserializable type.
pub fn from_str<T: Deserialize>(json: &str) -> Result<T, Error> {
    let value = parse_value(json)?;
    Ok(T::from_value(&value)?)
}

/// Escapes `s` into `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // "1" would re-parse as an integer; keep it a float.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(a) => write_seq(out, indent, depth, '[', ']', a.len(), |out, i, d| {
            write_value(out, &a[i], indent, d)
        }),
        Value::Object(o) => write_seq(out, indent, depth, '{', '}', o.len(), |out, i, d| {
            write_escaped(out, &o[i].0);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, &o[i].1, indent, d);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

/// Parses one complete JSON document (trailing non-whitespace is an error).
pub fn parse_value(json: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: json.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .peek()
                        .is_some_and(|b| (b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() || text == "-" {
            return Err(self.err("malformed number"));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_nesting() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(7)),
            ("b".into(), Value::Float(0.06)),
            ("c".into(), Value::Array(vec![Value::Int(-1), Value::Bool(true), Value::Null])),
            ("d".into(), Value::Str("q\"uote\n".into())),
        ]);
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("this is not json").is_err());
        assert!(parse_value("{\"a\": }").is_err());
        assert!(parse_value("[1, 2,]").is_err());
        assert!(parse_value("{} trailing").is_err());
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for f in [0.06f64, 1e-6, 12345.6789, -0.5, 3.0] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
    }
}
