//! In-tree stand-in for `proptest`, vendored so the workspace builds
//! offline with zero external crates.
//!
//! Real proptest shrinks failing inputs; this shim only generates them —
//! deterministically, from a seed derived from the test name and case
//! index, so failures reproduce exactly across runs. The macro surface
//! (`proptest!`, `prop_assert!`, `prop_assume!`, `prop_oneof!`,
//! `proptest::collection::vec`, range strategies, `Just`, `prop_map`)
//! matches what the workspace's property tests use.

use std::ops::Range;

/// How many cases `proptest!` runs per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the simulator-heavy properties in
        // this workspace make that needlessly slow. 32 keeps `cargo test`
        // quick while still exploring the input space.
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic splitmix64 generator driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn seeded(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A value generator (real proptest's `Strategy`, minus shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (used by `prop_oneof!` to unify branch types).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Uniform choice among equally-typed strategies.
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Builds from boxed options (see [`boxed`]).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

pub mod collection {
    use super::*;

    /// Element-count bound for [`vec`]: an exact count or a half-open
    /// range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for vectors of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Panic payload marking "this case was vetoed by `prop_assume!`".
pub struct SkipCase;

/// Aborts the current case without failing the test (see `prop_assume!`).
pub fn skip_case() -> ! {
    std::panic::panic_any(SkipCase)
}

/// FNV-1a over the test name, for per-test seed separation.
fn fnv(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs `case` for every generated input; used by the `proptest!` macro.
pub fn run_cases(name: &str, cfg: &ProptestConfig, mut case: impl FnMut(&mut TestRng)) {
    // Suppress the default panic message for assume-skips; real panics
    // keep the default hook output.
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SkipCase>().is_none() {
                default(info);
            }
        }));
    });

    let base = fnv(name);
    for i in 0..cfg.cases {
        let mut rng = TestRng::seeded(base ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case(&mut rng);
        }));
        if let Err(payload) = outcome {
            if payload.downcast_ref::<SkipCase>().is_some() {
                continue;
            }
            eprintln!("proptest {name}: failed on case {i}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Defines property tests. See module docs; shrinking is not implemented.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $( $(#[$attr:meta])* fn $name:ident($($args:tt)*) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg = $cfg;
                $crate::run_cases(stringify!($name), &__cfg, |__rng| {
                    $crate::__bind_args!(__rng, $($args)*);
                    $body
                });
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __bind_args {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
        $crate::__bind_args!($rng $(, $($rest)*)?);
    };
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            panic!("prop_assert_eq failed: {left:?} != {right:?}");
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            panic!($($fmt)*);
        }
    }};
}

/// Vetoes the current case (it is skipped, not failed) when `cond` is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            $crate::skip_case();
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($s)),+])
    };
}
