//! Calibration diagnostics: prints the full metric matrix the signature
//! thresholds were pinned from. Ignored by default — run it when
//! re-calibrating after an engine or workload change:
//!
//! ```text
//! cargo test -p np-patterns --release --test calibration -- --ignored --nocapture
//! ```

use np_patterns::{classify_run, fired_names, sweep, sweep_machines, MetricId};

#[test]
#[ignore = "diagnostic: prints the calibration matrix"]
fn print_metric_matrix() {
    let pool = np_parallel::Pool::default();
    let outcome = sweep(&pool, 1);
    println!(
        "{:<20} {:<11} {:>3} | {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} | fired / expected",
        "workload", "machine", "thr", "rmt", "dram", "stall", "hitm", "tlb", "imcsk", "wrksk"
    );
    for case in &outcome.doc.cases {
        let v: Vec<String> = MetricId::ALL
            .iter()
            .zip(&case.metrics)
            .map(|(_, m)| {
                if m.available {
                    format!("{:>5}", m.value_pm)
                } else {
                    format!("{:>5}", "-")
                }
            })
            .collect();
        println!(
            "{:<20} {:<11} {:>3} | {} | [{}] / [{}]{}",
            case.workload,
            case.machine,
            case.threads,
            v.join(" "),
            case.fired.join(","),
            case.expected.join(","),
            if case.matched { "" } else { "  <-- MISMATCH" }
        );
    }
    println!(
        "{} cases, {} mismatches",
        outcome.doc.total_cases, outcome.doc.mismatches
    );
}

#[test]
#[ignore = "diagnostic: probes one workload across sizes"]
fn probe_workload_sizes() {
    let name = std::env::var("NP_PROBE_WORKLOAD").unwrap_or_else(|_| "sort".into());
    let sizes = [4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024];
    for (label, config) in sweep_machines() {
        for threads in [2usize, 4] {
            for size in sizes {
                let workload = np_workloads::registry::build(&name, Some(size), threads, &config)
                    .expect("registry name");
                let program = workload.build(&config);
                let (metrics, verdicts) = classify_run(&program, &config, 1).expect("valid run");
                let v: Vec<String> = MetricId::ALL
                    .iter()
                    .map(|&id| match metrics.get(id) {
                        Some(x) => format!("{x:>5}"),
                        None => format!("{:>5}", "-"),
                    })
                    .collect();
                println!(
                    "{name:<12} {label:<11} {threads:>3}thr {size:>6} | {} | [{}]",
                    v.join(" "),
                    fired_names(&verdicts).join(",")
                );
            }
        }
    }
}
