//! Property-based tests for the classifier's structural invariants:
//! verdict monotonicity (more of a symptom never un-fires its pattern),
//! confidence bounds, completeness of the verdict table, and
//! determinism of `classify` as a pure function of its inputs.

use np_patterns::{classify, derive, Indicators, NodeVector, Pattern, Verdict};
use proptest::prelude::*;

fn verdicts(nodes: Vec<NodeVector>) -> Vec<Verdict> {
    let wall = nodes.iter().map(|n| n.cycles).max().unwrap_or(0);
    classify(
        &derive(&Indicators {
            nodes,
            wall_cycles: wall,
        }),
        None,
    )
}

fn fired(verdicts: &[Verdict], pattern: &str) -> bool {
    verdicts
        .iter()
        .find(|v| v.pattern == pattern)
        .map(|v| v.fired)
        .unwrap_or(false)
}

/// A single-node vector with every signature denominator populated, so
/// all metrics are available and the symptom counters below can be
/// swept freely without tripping the unavailable-metric guard.
fn base_node() -> NodeVector {
    NodeVector {
        instructions: 1_000_000,
        cycles: 2_000_000,
        mem_stall: 100_000,
        local_dram: 10_000,
        load: 400_000,
        store: 100_000,
        imc_read: 10_000,
        ..NodeVector::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hitm_is_monotone_for_false_sharing(hitm in 0u64..50_000, delta in 0u64..50_000) {
        // Raising the HITM count (all else fixed) can only move the
        // false-sharing verdict from quiet to fired, never back.
        let mut lo = base_node();
        lo.hitm = hitm;
        let mut hi = base_node();
        hi.hitm = hitm + delta;
        let before = fired(&verdicts(vec![lo]), "false-sharing");
        let after = fired(&verdicts(vec![hi]), "false-sharing");
        prop_assert!(!before || after, "hitm {hitm} fired but {} did not", hitm + delta);
    }

    #[test]
    fn dtlb_is_monotone_for_tlb_thrashing(dtlb in 0u64..500_000, delta in 0u64..500_000) {
        let mut lo = base_node();
        lo.dtlb_miss = dtlb;
        let mut hi = base_node();
        hi.dtlb_miss = dtlb + delta;
        let before = fired(&verdicts(vec![lo]), "tlb-thrashing");
        let after = fired(&verdicts(vec![hi]), "tlb-thrashing");
        prop_assert!(!before || after, "dtlb {dtlb} fired but {} did not", dtlb + delta);
    }

    #[test]
    fn verdict_table_is_complete_and_bounded(
        hitm in 0u64..20_000,
        dtlb in 0u64..300_000,
        stall in 0u64..2_000_000,
        dram in 0u64..200_000,
    ) {
        let mut node = base_node();
        node.hitm = hitm;
        node.dtlb_miss = dtlb;
        node.mem_stall = stall;
        node.local_dram = dram;
        node.imc_read = dram;
        let vs = verdicts(vec![node]);
        // One verdict per pattern, in canonical table order, each with
        // a confidence inside the per-mille range.
        prop_assert_eq!(vs.len(), Pattern::ALL.len());
        for (v, p) in vs.iter().zip(Pattern::ALL.iter()) {
            prop_assert_eq!(v.pattern.as_str(), p.name());
            prop_assert!(v.confidence_pm <= 1000, "{}: conf {}", v.pattern, v.confidence_pm);
            if v.evidence.iter().any(|e| !e.available) {
                // A signature with a missing input neither fires nor
                // claims confidence about not firing.
                prop_assert!(!v.fired, "{} fired on unavailable input", v.pattern);
                prop_assert_eq!(v.confidence_pm, 0);
            }
        }
    }

    #[test]
    fn classify_is_deterministic(
        hitm in 0u64..20_000,
        dtlb in 0u64..300_000,
        stall in 0u64..2_000_000,
        remote in 0u64..100_000,
    ) {
        let mut a = base_node();
        a.hitm = hitm;
        a.dtlb_miss = dtlb;
        a.mem_stall = stall;
        let mut b = base_node();
        b.remote_dram = remote;
        let nodes = vec![a, b];
        let first = verdicts(nodes.clone());
        let second = verdicts(nodes);
        prop_assert_eq!(format!("{first:?}"), format!("{second:?}"));
    }
}
