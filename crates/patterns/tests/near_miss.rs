//! Near-miss fixtures: for every rule of every signature, a synthetic
//! indicator vector sitting ONE per-mille under the threshold must not
//! fire the pattern, and the same vector nudged to the threshold must.
//! This pins the `>=` / `<=` edges exactly — an off-by-one in a
//! threshold or a comparison direction fails here before it shows up as
//! a sweep mismatch.

use np_patterns::{classify, derive, Indicators, NodeVector, Verdict};

fn verdicts(nodes: Vec<NodeVector>) -> Vec<Verdict> {
    let wall = nodes.iter().map(|n| n.cycles).max().unwrap_or(0);
    classify(
        &derive(&Indicators {
            nodes,
            wall_cycles: wall,
        }),
        None,
    )
}

fn fired(verdicts: &[Verdict], pattern: &str) -> bool {
    verdicts
        .iter()
        .find(|v| v.pattern == pattern)
        .unwrap_or_else(|| panic!("no verdict for {pattern}"))
        .fired
}

/// Single-node shape with the request rate as the only free variable:
/// deep enough stalls for the bandwidth signature's second rule.
fn bw_shape(dram: u64) -> Vec<NodeVector> {
    vec![NodeVector {
        instructions: 100_000,
        cycles: 1_000_000,
        mem_stall: 500_000,
        local_dram: dram,
        load: 50_000,
        imc_read: dram,
        ..NodeVector::default()
    }]
}

#[test]
fn bandwidth_rate_threshold_is_exact() {
    // dram_per_kcycle = dram * 1000 / cycles; threshold 34.
    let under = verdicts(bw_shape(33_999));
    let over = verdicts(bw_shape(34_000));
    assert!(!fired(&under, "bandwidth-bound"), "{under:?}");
    assert!(fired(&over, "bandwidth-bound"), "{over:?}");
    // The miss is the rate, not the stalls: nothing else fires either.
    assert!(under.iter().all(|v| !v.fired), "{under:?}");
}

fn lat_shape(stall: u64) -> Vec<NodeVector> {
    vec![NodeVector {
        instructions: 100_000,
        cycles: 1_000_000,
        mem_stall: stall,
        local_dram: 5_000,
        load: 50_000,
        imc_read: 5_000,
        ..NodeVector::default()
    }]
}

#[test]
fn latency_stall_threshold_is_exact() {
    // mem_stall_frac threshold 750 with the rate held at 5 (<= 10).
    let under = verdicts(lat_shape(749_999));
    let over = verdicts(lat_shape(750_000));
    assert!(!fired(&under, "latency-bound"), "{under:?}");
    assert!(fired(&over, "latency-bound"), "{over:?}");
}

#[test]
fn latency_rate_cap_is_exact() {
    // Deep stalls but the request rate just above the <= 10 cap: the
    // latency verdict must not fire (that shape is on its way to
    // bandwidth, not latency).
    let mut nodes = lat_shape(900_000);
    nodes[0].local_dram = 10_001; // 10_001 / 1000 kcycles -> 10 per-mille
    nodes[0].imc_read = 10_001;
    let at_cap = verdicts(nodes.clone());
    assert!(fired(&at_cap, "latency-bound"), "{at_cap:?}");
    nodes[0].local_dram = 11_000; // -> 11, one over the cap
    nodes[0].imc_read = 11_000;
    let over_cap = verdicts(nodes);
    assert!(!fired(&over_cap, "latency-bound"), "{over_cap:?}");
}

fn shr_shape(hitm: u64) -> Vec<NodeVector> {
    vec![NodeVector {
        instructions: 100_000,
        cycles: 1_000_000,
        hitm,
        load: 800,
        store: 200,
        ..NodeVector::default()
    }]
}

#[test]
fn false_sharing_hitm_threshold_is_exact() {
    // hitm_per_kop = hitm * 1000 / (load + store) = hitm with 1000 ops;
    // threshold 9.
    let under = verdicts(shr_shape(8));
    let over = verdicts(shr_shape(9));
    assert!(!fired(&under, "false-sharing"), "{under:?}");
    assert!(fired(&over, "false-sharing"), "{over:?}");
}

/// Two active nodes; node 0's controller serves everything (full
/// concentration), the remote share is the free variable.
fn rmt_ratio_shape(remote: u64) -> Vec<NodeVector> {
    let local = 1000 - remote;
    vec![
        NodeVector {
            instructions: 100_000,
            cycles: 1_000_000,
            local_dram: local,
            load: 50_000,
            imc_read: 1000,
            ..NodeVector::default()
        },
        NodeVector {
            instructions: 100_000,
            cycles: 1_000_000,
            remote_dram: remote,
            load: 50_000,
            ..NodeVector::default()
        },
    ]
}

#[test]
fn numa_imbalance_remote_ratio_threshold_is_exact() {
    // remote_ratio threshold 300 with imc_skew pinned at 1000.
    let under = verdicts(rmt_ratio_shape(299));
    let over = verdicts(rmt_ratio_shape(300));
    assert!(!fired(&under, "numa-imbalance"), "{under:?}");
    assert!(fired(&over, "numa-imbalance"), "{over:?}");
}

/// Two active nodes with a 40% remote share; the cold controller's
/// traffic is the free variable setting the concentration.
fn rmt_skew_shape(cold_imc: u64) -> Vec<NodeVector> {
    vec![
        NodeVector {
            instructions: 100_000,
            cycles: 1_000_000,
            local_dram: 600,
            remote_dram: 400,
            load: 50_000,
            imc_read: 1000,
            ..NodeVector::default()
        },
        NodeVector {
            instructions: 100_000,
            cycles: 1_000_000,
            load: 50_000,
            imc_read: cold_imc,
            ..NodeVector::default()
        },
    ]
}

#[test]
fn numa_imbalance_concentration_threshold_is_exact() {
    // concentration = (max*2 - sum) * 1000 / max with max = 1000, so a
    // cold controller at 171 gives 829 (under) and 170 gives 830 (at).
    let under = verdicts(rmt_skew_shape(171));
    let over = verdicts(rmt_skew_shape(170));
    assert!(!fired(&under, "numa-imbalance"), "{under:?}");
    assert!(fired(&over, "numa-imbalance"), "{over:?}");
}

fn tlb_shape(dtlb: u64) -> Vec<NodeVector> {
    vec![NodeVector {
        instructions: 1_000_000,
        cycles: 2_000_000,
        dtlb_miss: dtlb,
        load: 500_000,
        ..NodeVector::default()
    }]
}

#[test]
fn tlb_mpki_threshold_is_exact() {
    // dtlb_mpki = misses * 1000 / instructions; threshold 130.
    let under = verdicts(tlb_shape(129_999));
    let over = verdicts(tlb_shape(130_000));
    assert!(!fired(&under, "tlb-thrashing"), "{under:?}");
    assert!(fired(&over, "tlb-thrashing"), "{over:?}");
}

fn skw_shape(lighter_instr: u64) -> Vec<NodeVector> {
    let node = |instr: u64| NodeVector {
        instructions: instr,
        cycles: 2_000_000,
        load: instr / 2,
        ..NodeVector::default()
    };
    vec![node(1_000_000), node(lighter_instr)]
}

#[test]
fn load_imbalance_skew_threshold_is_exact() {
    // work_skew = 1000 - mean_pm/max = 500 - lighter/2000 with the
    // heavy node at 1M; threshold 100.
    let under = verdicts(skw_shape(802_000)); // skew 99
    let over = verdicts(skw_shape(800_000)); // skew 100
    assert!(!fired(&under, "load-imbalance"), "{under:?}");
    assert!(fired(&over, "load-imbalance"), "{over:?}");
}

#[test]
fn near_misses_fire_nothing_anywhere() {
    // Every near-miss fixture is a clean miss: no OTHER pattern picks
    // up the shape either, so each rule's edge is isolated.
    for (label, nodes) in [
        ("bw", bw_shape(33_999)),
        ("shr", shr_shape(8)),
        ("rmt-ratio", rmt_ratio_shape(299)),
        ("rmt-skew", rmt_skew_shape(171)),
        ("tlb", tlb_shape(129_999)),
        ("skw", skw_shape(802_000)),
    ] {
        let vs = verdicts(nodes);
        assert!(vs.iter().all(|v| !v.fired), "{label}: {vs:?}");
    }
}
