//! Golden verdicts: every registry workload recovers its label on the
//! quiet two-socket preset at two threads — the cheapest row of the full
//! `np patterns --verify` matrix. The full 96-case matrix (both machine
//! presets x 2/4 threads) runs in release as a tier-1 CI stage; this
//! suite keeps the same ground truth wired into `cargo test` so a
//! single-workload regression is caught before the sweep.

use np_patterns::verify::{classify_run, sweep_machines, sweep_size};
use np_patterns::{fired_names, Pattern};
use np_workloads::registry;

fn quiet_two_socket() -> np_simulator::MachineConfig {
    sweep_machines().remove(0).1
}

#[test]
fn every_registry_label_recovers_on_the_two_socket_preset() {
    let config = quiet_two_socket();
    let mut failures = Vec::new();
    let mut fired_by_name: Vec<(&str, Vec<String>)> = Vec::new();
    for name in registry::NAMES {
        let workload = registry::build(name, sweep_size(name), 2, &config)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let program = workload.build(&config);
        let (_, verdicts) =
            classify_run(&program, &config, 1).unwrap_or_else(|e| panic!("{name}: {e}"));
        let fired = fired_names(&verdicts);
        let expected: Vec<String> = registry::expected_patterns(name)
            .unwrap_or(&[])
            .iter()
            .map(|s| s.to_string())
            .collect();
        if fired != expected {
            failures.push(format!("{name}: fired {fired:?} expected {expected:?}"));
        }
        fired_by_name.push((name, fired));
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));

    // Specificity: the negative controls classified healthy, so a
    // verdict engine that fires something everywhere cannot pass by
    // accident — and every pattern has at least one workload firing it,
    // so no signature is dead weight.
    let fired_of = |name: &str| {
        fired_by_name
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, f)| f.clone())
            .unwrap()
    };
    for name in ["row-major", "stream-interleaved", "stencil-small"] {
        assert!(fired_of(name).is_empty(), "{name} must classify healthy");
    }
    for pattern in Pattern::ALL {
        assert!(
            fired_by_name
                .iter()
                .any(|(_, f)| f.iter().any(|p| p == pattern.name())),
            "no registry workload exercises {}",
            pattern.name()
        );
    }
}

#[test]
fn labels_use_canonical_pattern_names_in_canonical_order() {
    // Every registry label is a subsequence of Pattern::ALL by name, so
    // exact-equality against `fired_names` (which reports in table
    // order) can never fail on ordering alone.
    let canonical: Vec<&str> = Pattern::ALL.iter().map(|p| p.name()).collect();
    for (name, label) in registry::EXPECTED_PATTERNS {
        let mut cursor = 0usize;
        for pat in label {
            let pos = canonical[cursor..]
                .iter()
                .position(|c| c == pat)
                .unwrap_or_else(|| {
                    panic!("{name}: '{pat}' unknown or out of canonical order in {label:?}")
                });
            cursor += pos + 1;
        }
    }
}
