//! The versioned `np-patterns/1` JSON document.
//!
//! Deterministic by construction: every number is an integer (per-mille
//! fixed point for metrics and confidences), cases appear in sweep
//! order, phases in capture order, verdicts in [`crate::Pattern::ALL`]
//! order. Equal inputs serialize to equal bytes at any thread count.

use crate::classify::Verdict;
use crate::metrics::{MetricId, MetricSet};
use serde::{Deserialize, Serialize};

/// Schema tag of the document.
pub const PATTERNS_SCHEMA: &str = "np-patterns/1";

/// One derived metric, flattened for the document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricDoc {
    /// Metric name (`remote_ratio`, ...).
    pub metric: String,
    /// Value in per-mille fixed point (0 when unavailable).
    pub value_pm: u64,
    /// Whether the metric could be derived from the input.
    pub available: bool,
}

/// Flattens a metric set in [`MetricId::ALL`] order.
pub fn metric_docs(metrics: &MetricSet) -> Vec<MetricDoc> {
    MetricId::ALL
        .iter()
        .map(|&id| MetricDoc {
            metric: id.name().to_string(),
            value_pm: metrics.get(id).unwrap_or(0),
            available: metrics.get(id).is_some(),
        })
        .collect()
}

/// One classified run (a sweep case or a single `np patterns` call).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseDoc {
    /// Registry workload name.
    pub workload: String,
    /// Machine preset label.
    pub machine: String,
    /// Workload thread count.
    pub threads: u64,
    /// Simulator seed.
    pub seed: u64,
    /// Derived metrics, in [`MetricId::ALL`] order.
    pub metrics: Vec<MetricDoc>,
    /// All six verdicts with evidence, in pattern order.
    pub verdicts: Vec<Verdict>,
    /// Names of the fired patterns.
    pub fired: Vec<String>,
    /// The registry's expected-pattern label (empty = healthy).
    pub expected: Vec<String>,
    /// Whether `fired` equals `expected` exactly.
    pub matched: bool,
}

/// One capture phase's classification (per-phase attribution mode).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseDoc {
    /// Phase label from the capture's phase table.
    pub phase: String,
    /// Derived metrics for the slice.
    pub metrics: Vec<MetricDoc>,
    /// All six verdicts for the slice.
    pub verdicts: Vec<Verdict>,
    /// Names of the fired patterns.
    pub fired: Vec<String>,
}

/// The top-level `np-patterns/1` document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternsDoc {
    /// [`PATTERNS_SCHEMA`].
    pub schema: String,
    /// What was classified: `registry-sweep`, a workload name, or the
    /// capture file's workload label.
    pub source: String,
    /// Classified runs (sweep order / the single run).
    pub cases: Vec<CaseDoc>,
    /// Per-phase attribution (capture mode only).
    pub phases: Vec<PhaseDoc>,
    /// Number of cases.
    pub total_cases: u64,
    /// Cases whose fired set differs from the expected label.
    pub mismatches: u64,
}

impl PatternsDoc {
    /// Wraps cases (and optional phases) into the versioned document.
    pub fn new(source: &str, cases: Vec<CaseDoc>, phases: Vec<PhaseDoc>) -> PatternsDoc {
        let mismatches = cases.iter().filter(|c| !c.matched).count() as u64;
        PatternsDoc {
            schema: PATTERNS_SCHEMA.to_string(),
            source: source.to_string(),
            total_cases: cases.len() as u64,
            mismatches,
            cases,
            phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indicators::Indicators;
    use crate::metrics::derive;

    #[test]
    fn doc_counts_mismatches_and_round_trips() {
        let metrics = derive(&Indicators::default());
        let case = |matched| CaseDoc {
            workload: "row-major".into(),
            machine: "two-socket".into(),
            threads: 2,
            seed: 1,
            metrics: metric_docs(&metrics),
            verdicts: Vec::new(),
            fired: Vec::new(),
            expected: Vec::new(),
            matched,
        };
        let doc = PatternsDoc::new("registry-sweep", vec![case(true), case(false)], Vec::new());
        assert_eq!(doc.schema, PATTERNS_SCHEMA);
        assert_eq!(doc.total_cases, 2);
        assert_eq!(doc.mismatches, 1);

        let json = serde_json::to_string_pretty(&doc).unwrap();
        let back: PatternsDoc = serde_json::from_str(&json).unwrap();
        assert_eq!(back, doc);
        // Determinism: serializing the same value twice is byte-equal.
        assert_eq!(json, serde_json::to_string_pretty(&doc).unwrap());
    }

    #[test]
    fn metric_docs_cover_every_metric_in_order() {
        let docs = metric_docs(&derive(&Indicators::default()));
        let names: Vec<&str> = docs.iter().map(|d| d.metric.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "remote_ratio",
                "dram_per_kcycle",
                "mem_stall_frac",
                "hitm_per_kop",
                "dtlb_mpki",
                "imc_skew",
                "work_skew"
            ]
        );
        // The empty vector derives nothing but remote_ratio's 0 default.
        assert!(docs.iter().filter(|d| !d.available).count() >= 5);
    }
}
