//! Evaluating the signature table into scored verdicts.
//!
//! A verdict fires only when every rule of the signature has an
//! available metric *and* passes. Confidence is deterministic integer
//! arithmetic: the weakest rule's margin beyond (or short of) its
//! threshold sets a base score in `[500, 1000]`, and when an np-analysis
//! envelope prior is supplied the prior's certainty is blended in — a
//! verdict backed by a tight static envelope outranks one whose primary
//! event the static pass can barely bound.

use crate::metrics::MetricSet;
use crate::signatures::{signatures, RuleOp};
use np_analysis::Priors;
use serde::{Deserialize, Serialize};

/// One rule's evaluation, preserved verbatim in `np-patterns/1`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evidence {
    /// Metric name (`remote_ratio`, ...).
    pub metric: String,
    /// Comparison symbol (`>=` / `<=`).
    pub op: String,
    /// Rule threshold in per-mille.
    pub threshold_pm: u64,
    /// Observed metric value in per-mille (0 when unavailable).
    pub observed_pm: u64,
    /// Whether the metric could be derived from this input at all.
    pub available: bool,
    /// Whether the rule passed.
    pub passed: bool,
}

/// One pattern's scored verdict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Verdict {
    /// Pattern name (`bandwidth-bound`, ...).
    pub pattern: String,
    /// Whether the signature fired.
    pub fired: bool,
    /// Blended confidence in per-mille.
    pub confidence_pm: u64,
    /// The envelope prior's certainty for the pattern's primary event;
    /// `None` when no prior was supplied (capture slices) or the static
    /// pass derives no envelope for the event.
    pub envelope_confidence_pm: Option<u64>,
    /// Per-rule evidence, in signature order.
    pub evidence: Vec<Evidence>,
}

/// How far `observed` sits beyond (fired) or short of (not fired) the
/// threshold, in per-mille of the threshold, clamped to 1000.
fn margin_pm(op: RuleOp, threshold: u64, observed: u64) -> u64 {
    let t = threshold.max(1);
    let distance = match op {
        RuleOp::Ge => observed.abs_diff(threshold),
        RuleOp::Le => threshold.abs_diff(observed),
    };
    (distance * 1000 / t).min(1000)
}

/// Evaluates every signature against one metric set.
///
/// `priors` carries the np-analysis envelopes of the program under test
/// (full-run classification); pass `None` for capture slices, where no
/// program is in hand.
pub fn classify(metrics: &MetricSet, priors: Option<&Priors>) -> Vec<Verdict> {
    signatures()
        .iter()
        .map(|sig| {
            let mut evidence = Vec::with_capacity(sig.rules.len());
            let mut all_available = true;
            let mut fired = true;
            // Weakest link: the rule closest to its threshold bounds the
            // confidence of the whole conjunction.
            let mut weakest = 1000u64;
            for rule in sig.rules {
                let value = metrics.get(rule.metric);
                let available = value.is_some();
                let observed = value.unwrap_or(0);
                let passed = available && rule.passes(observed);
                all_available &= available;
                fired &= passed;
                if available {
                    weakest = weakest.min(margin_pm(rule.op, rule.threshold_pm, observed));
                }
                evidence.push(Evidence {
                    metric: rule.metric.name().to_string(),
                    op: rule.op.symbol().to_string(),
                    threshold_pm: rule.threshold_pm,
                    observed_pm: observed,
                    available,
                    passed,
                });
            }
            // A signature with a missing input neither fires nor claims
            // confidence about not firing.
            let base = if all_available { 500 + weakest / 2 } else { 0 };
            let envelope = priors
                .and_then(|p| p.get(sig.prior_event))
                .map(|p| p.certainty_pm);
            let confidence_pm = match envelope {
                Some(env) if all_available => (2 * base + env) / 3,
                _ => base,
            };
            Verdict {
                pattern: sig.pattern.name().to_string(),
                fired: fired && all_available,
                confidence_pm,
                envelope_confidence_pm: envelope,
                evidence,
            }
        })
        .collect()
}

/// The names of the fired patterns, in verdict order.
pub fn fired_names(verdicts: &[Verdict]) -> Vec<String> {
    verdicts
        .iter()
        .filter(|v| v.fired)
        .map(|v| v.pattern.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indicators::{Indicators, NodeVector};
    use crate::metrics::derive;

    fn healthy() -> MetricSet {
        // A balanced, local, cache-friendly shape.
        let n = NodeVector {
            instructions: 100_000,
            cycles: 200_000,
            mem_stall: 10_000,
            local_dram: 500,
            load: 50_000,
            store: 20_000,
            imc_read: 500,
            ..NodeVector::default()
        };
        derive(&Indicators {
            nodes: vec![n, n],
            wall_cycles: 200_000,
        })
    }

    #[test]
    fn healthy_vector_fires_nothing() {
        let verdicts = classify(&healthy(), None);
        assert_eq!(verdicts.len(), 6);
        assert!(verdicts.iter().all(|v| !v.fired), "{verdicts:?}");
        assert!(fired_names(&verdicts).is_empty());
    }

    #[test]
    fn latency_shape_fires_latency_only() {
        let n = NodeVector {
            instructions: 10_000,
            cycles: 1_000_000,
            mem_stall: 900_000,
            local_dram: 9_000,
            load: 9_500,
            store: 100,
            imc_read: 9_000,
            ..NodeVector::default()
        };
        let m = derive(&Indicators {
            nodes: vec![n, n],
            wall_cycles: 1_000_000,
        });
        let fired = fired_names(&classify(&m, None));
        assert_eq!(fired, vec!["latency-bound"]);
    }

    #[test]
    fn missing_metric_blocks_fire_and_zeroes_confidence() {
        // No cycles family: bandwidth/latency rules are unavailable.
        let n = NodeVector {
            instructions: 10_000,
            local_dram: 9_000,
            load: 9_500,
            ..NodeVector::default()
        };
        let m = derive(&Indicators {
            nodes: vec![n],
            wall_cycles: 0,
        });
        let verdicts = classify(&m, None);
        let bw = verdicts
            .iter()
            .find(|v| v.pattern == "bandwidth-bound")
            .unwrap();
        assert!(!bw.fired);
        assert_eq!(bw.confidence_pm, 0);
        assert!(bw.evidence.iter().any(|e| !e.available));
    }

    #[test]
    fn confidence_grows_with_margin() {
        let shape = |stall: u64| {
            let n = NodeVector {
                instructions: 10_000,
                cycles: 1_000_000,
                mem_stall: stall,
                local_dram: 9_000,
                load: 9_500,
                store: 100,
                imc_read: 9_000,
                ..NodeVector::default()
            };
            derive(&Indicators {
                nodes: vec![n, n],
                wall_cycles: 1_000_000,
            })
        };
        let just_over = classify(&shape(760_000), None);
        let far_over = classify(&shape(980_000), None);
        let conf = |vs: &[Verdict]| {
            vs.iter()
                .find(|v| v.pattern == "latency-bound")
                .unwrap()
                .confidence_pm
        };
        assert!(conf(&far_over) > conf(&just_over));
    }
}
