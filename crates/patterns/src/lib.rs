//! # np-patterns — performance-pattern identification
//!
//! The layer between indicator vectors and *diagnoses*. The paper turns
//! hardware event counters into NUMA indicators; Röhl et al. (PAPERS.md,
//! "Validation of hardware events for performance pattern identification")
//! show the next step: validate event-based pattern signatures against
//! workloads whose behaviour is known. This crate implements that loop
//! on the simulator's ground truth:
//!
//! * [`pattern`] — the six named patterns: bandwidth-bound,
//!   latency-bound, false sharing, NUMA imbalance, TLB thrashing, load
//!   imbalance.
//! * [`indicators`] — the raw per-node indicator vector, built either
//!   from full run counters or from one phase slice of an `np-capture/1`
//!   timeline.
//! * [`metrics`] — derived metrics in deterministic per-mille fixed
//!   point (remote/local DRAM ratio, HITM rate per retired op, per-node
//!   imbalance coefficients, dTLB misses per instruction, stall
//!   fractions).
//! * [`signatures`] — the declarative rule table: each pattern is a
//!   conjunction of threshold comparisons over the derived metrics.
//! * [`classify`] — evaluates the table and scores each verdict with a
//!   margin confidence blended with np-analysis envelope priors.
//! * [`schema`] — the versioned `np-patterns/1` JSON document.
//! * [`verify`] — the differential sweep: every registry workload must
//!   classify to its `expected_patterns` label on every machine preset
//!   and thread count, byte-identically at any pool width.
//! * [`badges`] — compact per-node badges for `np top` and the HTML
//!   report phase band.
//!
//! Everything is integer arithmetic over event counts: no wall-clock, no
//! floats in any serialized artifact, bit-identical output at any thread
//! count.

pub mod badges;
pub mod classify;
pub mod indicators;
pub mod metrics;
pub mod pattern;
pub mod schema;
pub mod signatures;
pub mod verify;

pub use badges::node_badges;
pub use classify::{classify, fired_names, Evidence, Verdict};
pub use indicators::{Indicators, NodeVector};
pub use metrics::{derive, MetricId, MetricSet};
pub use pattern::Pattern;
pub use schema::{metric_docs, CaseDoc, MetricDoc, PatternsDoc, PhaseDoc, PATTERNS_SCHEMA};
pub use verify::{classify_run, sweep, sweep_machines, SweepOutcome, SWEEP_THREADS};
