//! The named performance patterns.

/// A named performance pathology the classifier can diagnose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pattern {
    /// Memory controllers saturated: high DRAM traffic per busy cycle
    /// *and* the cores mostly waiting on memory.
    BandwidthBound,
    /// Serialised misses: the cores wait on memory while the DRAM rate
    /// stays low — each access pays full latency with no overlap.
    LatencyBound,
    /// Cache lines bouncing between writers: HITM transfers per retired
    /// memory op far above the healthy floor.
    FalseSharing,
    /// Requests crossing the interconnect while a minority of memory
    /// controllers carries the load.
    NumaImbalance,
    /// Address-translation churn: dTLB misses per instruction above
    /// anything a page-friendly access pattern produces.
    TlbThrashing,
    /// Work skew: some nodes retire several times the instructions of
    /// others between the same barriers.
    LoadImbalance,
}

impl Pattern {
    /// Every pattern, in verdict/report order.
    pub const ALL: [Pattern; 6] = [
        Pattern::BandwidthBound,
        Pattern::LatencyBound,
        Pattern::FalseSharing,
        Pattern::NumaImbalance,
        Pattern::TlbThrashing,
        Pattern::LoadImbalance,
    ];

    /// The stable name used in labels, JSON documents and reports.
    pub fn name(self) -> &'static str {
        match self {
            Pattern::BandwidthBound => "bandwidth-bound",
            Pattern::LatencyBound => "latency-bound",
            Pattern::FalseSharing => "false-sharing",
            Pattern::NumaImbalance => "numa-imbalance",
            Pattern::TlbThrashing => "tlb-thrashing",
            Pattern::LoadImbalance => "load-imbalance",
        }
    }

    /// Parses a stable name back to the pattern.
    pub fn parse(s: &str) -> Option<Pattern> {
        Pattern::ALL.into_iter().find(|p| p.name() == s)
    }

    /// The compact badge `np top` and the report band show.
    pub fn badge(self) -> &'static str {
        match self {
            Pattern::BandwidthBound => "BW",
            Pattern::LatencyBound => "LAT",
            Pattern::FalseSharing => "SHR",
            Pattern::NumaImbalance => "RMT",
            Pattern::TlbThrashing => "TLB",
            Pattern::LoadImbalance => "SKW",
        }
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in Pattern::ALL {
            assert_eq!(Pattern::parse(p.name()), Some(p));
        }
        assert_eq!(Pattern::parse("cache-bound"), None);
    }

    #[test]
    fn badges_are_unique_and_short() {
        let mut seen = std::collections::BTreeSet::new();
        for p in Pattern::ALL {
            assert!(p.badge().len() <= 3);
            assert!(seen.insert(p.badge()), "duplicate badge {}", p.badge());
        }
    }
}
