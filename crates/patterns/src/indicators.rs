//! The raw indicator vector the classifier consumes.
//!
//! Two constructors, one shape: [`Indicators::from_run`] reduces full
//! per-core counters to per-node sums after a simulator run, and
//! [`Indicators::from_capture_phase`] rebuilds the same per-node sums
//! from one phase slice of an `np-capture/1` timeline (the capture
//! observer exports exactly the [`LIVE_NODE_EVENTS`] families the
//! metrics need). Downstream code never cares which path produced the
//! vector — unavailable inputs surface as zeroes and the metric layer
//! reports them as such.

use np_core::capture::Capture;
use np_simulator::{RunResult, Topology, LIVE_NODE_EVENTS};

/// Per-node event sums: one slot per live indicator family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeVector {
    /// Instructions retired by the node's cores.
    pub instructions: u64,
    /// Busy cycles of the node's cores.
    pub cycles: u64,
    /// Cycles the node's cores stalled on memory.
    pub mem_stall: u64,
    /// DRAM accesses served by the node's own controllers.
    pub local_dram: u64,
    /// DRAM accesses this node's cores sent across the interconnect.
    pub remote_dram: u64,
    /// Interconnect transfers charged to the node.
    pub qpi: u64,
    /// Dirty cache-to-cache transfers involving the node's cores.
    pub hitm: u64,
    /// Last-level-cache misses of the node's cores.
    pub l3_miss: u64,
    /// dTLB misses of the node's cores.
    pub dtlb_miss: u64,
    /// Loads retired by the node's cores.
    pub load: u64,
    /// Stores retired by the node's cores.
    pub store: u64,
    /// Reads served by the node's memory controller.
    pub imc_read: u64,
    /// Writes absorbed by the node's memory controller.
    pub imc_write: u64,
}

impl NodeVector {
    /// DRAM requests issued by this node's cores.
    pub fn dram_requests(&self) -> u64 {
        self.local_dram + self.remote_dram
    }

    /// Traffic served by this node's memory controller.
    pub fn imc_total(&self) -> u64 {
        self.imc_read + self.imc_write
    }

    /// Accumulates one event family by its short series name (the
    /// `LIVE_NODE_EVENTS` vocabulary); unknown names are ignored, so
    /// callers can feed mixed telemetry streams straight through.
    pub fn add(&mut self, short: &str, v: u64) {
        match short {
            "instructions" => self.instructions += v,
            "cycles" => self.cycles += v,
            "mem_stall" => self.mem_stall += v,
            "local_dram" => self.local_dram += v,
            "remote_dram" => self.remote_dram += v,
            "qpi" => self.qpi += v,
            "hitm" => self.hitm += v,
            "l3_miss" => self.l3_miss += v,
            "dtlb_miss" => self.dtlb_miss += v,
            "load" => self.load += v,
            "store" => self.store += v,
            "imc_read" => self.imc_read += v,
            "imc_write" => self.imc_write += v,
            _ => {}
        }
    }
}

/// The classifier's input: per-node vectors plus the run clock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Indicators {
    /// One vector per NUMA node, node id = index.
    pub nodes: Vec<NodeVector>,
    /// Wall clock of the run (slowest core) or span of the phase slice,
    /// in simulated cycles.
    pub wall_cycles: u64,
}

impl Indicators {
    /// Reduces a run's per-core counters to per-node sums.
    pub fn from_run(result: &RunResult, topology: &Topology) -> Indicators {
        let mut nodes = vec![NodeVector::default(); topology.nodes];
        for (node, nv) in nodes.iter_mut().enumerate() {
            let base = topology.first_core_of_node(node);
            for core in base..base + topology.cores_per_node {
                for &(short, event) in LIVE_NODE_EVENTS {
                    nv.add(short, result.counters.get(core, event));
                }
            }
        }
        Indicators {
            nodes,
            wall_cycles: result.cycles,
        }
    }

    /// Rebuilds per-node sums from the bins of one capture phase (by
    /// index into `capture.phases`), summed across repetitions.
    ///
    /// Series names follow the campaign convention
    /// `rep<R>.node<N>.<event>`; a bare `node<N>.<event>` (observer
    /// output that never went through the rep merge) is accepted too.
    pub fn from_capture_phase(capture: &Capture, phase: usize) -> Indicators {
        let mut nodes: Vec<NodeVector> = Vec::new();
        let mut t_min = u64::MAX;
        let mut t_max = 0u64;
        for series in &capture.series {
            let Some((node, short)) = split_series_name(&series.name) else {
                continue;
            };
            if nodes.len() <= node {
                nodes.resize(node + 1, NodeVector::default());
            }
            let times = series.timestamps();
            for (i, &p) in series.phase.iter().enumerate() {
                if p != phase as u64 {
                    continue;
                }
                nodes[node].add(short, series.sum[i]);
                t_min = t_min.min(times[i]);
                t_max = t_max.max(times[i]);
            }
        }
        Indicators {
            nodes,
            wall_cycles: t_max.saturating_sub(if t_min == u64::MAX { 0 } else { t_min }),
        }
    }

    /// Machine-wide sum of one field.
    pub fn total(&self, f: impl Fn(&NodeVector) -> u64) -> u64 {
        self.nodes.iter().map(f).sum()
    }

    /// Nodes actually executing work: instruction count above 1% of the
    /// busiest node's. Keeps idle sockets of a wide machine from
    /// polluting the imbalance coefficients when a two-thread workload
    /// runs on an eight-node ring.
    pub fn active_nodes(&self) -> Vec<usize> {
        let max = self.nodes.iter().map(|n| n.instructions).max().unwrap_or(0);
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| max > 0 && n.instructions > max / 100)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Splits `rep0.node2.local_dram` / `node2.local_dram` into `(2, "local_dram")`.
fn split_series_name(name: &str) -> Option<(usize, &str)> {
    let mut parts = name.split('.');
    let mut node = parts.next()?;
    if node.starts_with("rep") {
        node = parts.next()?;
    }
    let short = parts.next()?;
    if parts.next().is_some() {
        return None;
    }
    let id: usize = node.strip_prefix("node")?.parse().ok()?;
    Some((id, short))
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_simulator::{AllocPolicy, HwEvent, MachineConfig, MachineSim, ProgramBuilder};

    fn quiet() -> MachineConfig {
        let mut cfg = MachineConfig::two_socket_small();
        cfg.noise.timer_interval = 0;
        cfg.noise.dram_jitter = 0.0;
        cfg
    }

    #[test]
    fn run_reduction_matches_machine_totals() {
        let cfg = quiet();
        let sim = MachineSim::new(cfg.clone());
        let mut b = ProgramBuilder::new(&cfg.topology, cfg.page_bytes);
        let buf = b.alloc(1 << 20, AllocPolicy::Bind(1));
        let t0 = b.add_thread(0);
        for i in 0..256u64 {
            b.load(t0, buf + i * 4096);
        }
        let r = sim.run(&b.build(), 3).expect("valid program");
        let ind = Indicators::from_run(&r, &cfg.topology);
        assert_eq!(ind.nodes.len(), 2);
        assert_eq!(
            ind.total(|n| n.remote_dram),
            r.total(HwEvent::RemoteDramAccess)
        );
        assert_eq!(
            ind.total(|n| n.instructions),
            r.total(HwEvent::Instructions)
        );
        // The single thread on node 0 issues everything.
        assert_eq!(ind.nodes[1].instructions, 0);
        assert!(ind.nodes[0].remote_dram > 0);
        assert_eq!(ind.active_nodes(), vec![0]);
        assert_eq!(ind.wall_cycles, r.cycles);
    }

    #[test]
    fn series_names_split_with_and_without_rep() {
        assert_eq!(
            split_series_name("rep0.node2.local_dram"),
            Some((2, "local_dram"))
        );
        assert_eq!(split_series_name("node11.qpi"), Some((11, "qpi")));
        assert_eq!(split_series_name("par.q.depth"), None);
        assert_eq!(split_series_name("node2"), None);
    }

    #[test]
    fn capture_slice_sums_one_phase_only() {
        use np_telemetry::timeseries::Sampler;
        let mut s = Sampler::new(32);
        s.record_with_phase("rep0.node0.local_dram", 100, 10, "build");
        s.record_with_phase("rep0.node0.local_dram", 200, 30, "probe");
        s.record_with_phase("rep0.node1.remote_dram", 200, 7, "probe");
        let cap = Capture::from_sampler("two-socket", "hashjoin", 1, 1, &s);
        let build = cap.phases.iter().position(|p| p == "build").unwrap();
        let probe = cap.phases.iter().position(|p| p == "probe").unwrap();
        let b = Indicators::from_capture_phase(&cap, build);
        assert_eq!(b.total(|n| n.local_dram), 10);
        assert_eq!(b.total(|n| n.remote_dram), 0);
        let p = Indicators::from_capture_phase(&cap, probe);
        assert_eq!(p.total(|n| n.local_dram), 30);
        assert_eq!(p.nodes[1].remote_dram, 7);
    }
}
