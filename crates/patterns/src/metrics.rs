//! Derived metrics in deterministic per-mille fixed point.
//!
//! Every metric is an integer ratio of event sums — no floats anywhere,
//! so two runs with equal counters produce byte-equal JSON regardless of
//! platform or thread count. A metric whose denominator is empty (an
//! old capture without the family, a phase slice with no retirement) is
//! *unavailable* rather than zero: rules over it cannot fire and the
//! evidence says why.

use crate::indicators::Indicators;

/// The derived metrics the signature rules compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricId {
    /// Remote share of DRAM requests: `remote / (local + remote)`.
    RemoteRatio,
    /// DRAM requests per thousand busy core cycles.
    DramPerKcycle,
    /// Memory-stall share of busy core cycles.
    MemStallFrac,
    /// HITM transfers per thousand retired memory ops.
    HitmPerKop,
    /// dTLB misses per thousand retired instructions.
    DtlbMpki,
    /// Memory-controller concentration over the nodes involved in the
    /// run: 0 = traffic spread evenly, 1000 = one controller serves
    /// everything, normalised so the score is comparable between a
    /// two-node and an eight-node machine.
    ImcSkew,
    /// Work imbalance over the active nodes: `1 - mean/max` of per-node
    /// retired instructions.
    WorkSkew,
}

impl MetricId {
    /// Every metric, in document order.
    pub const ALL: [MetricId; 7] = [
        MetricId::RemoteRatio,
        MetricId::DramPerKcycle,
        MetricId::MemStallFrac,
        MetricId::HitmPerKop,
        MetricId::DtlbMpki,
        MetricId::ImcSkew,
        MetricId::WorkSkew,
    ];

    /// The stable name used in JSON documents and evidence lines.
    pub fn name(self) -> &'static str {
        match self {
            MetricId::RemoteRatio => "remote_ratio",
            MetricId::DramPerKcycle => "dram_per_kcycle",
            MetricId::MemStallFrac => "mem_stall_frac",
            MetricId::HitmPerKop => "hitm_per_kop",
            MetricId::DtlbMpki => "dtlb_mpki",
            MetricId::ImcSkew => "imc_skew",
            MetricId::WorkSkew => "work_skew",
        }
    }

    fn index(self) -> usize {
        MetricId::ALL.iter().position(|m| *m == self).unwrap()
    }
}

/// The derived values; `None` = unavailable from this input.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricSet {
    values: [Option<u64>; 7],
}

impl MetricSet {
    /// The per-mille value of one metric, if derivable.
    pub fn get(&self, id: MetricId) -> Option<u64> {
        self.values[id.index()]
    }

    fn set(&mut self, id: MetricId, v: Option<u64>) {
        self.values[id.index()] = v;
    }
}

/// `a * 1000 / b`, `None` when the denominator is empty.
fn per_mille(a: u64, b: u64) -> Option<u64> {
    (a * 1000).checked_div(b)
}

/// `1000 - mean/max` over a set of per-node values: 0 = perfectly even,
/// →1000 as one node carries everything. Fewer than two nodes (or no
/// traffic at all) is even by definition.
fn skew_pm(values: &[u64]) -> u64 {
    let max = values.iter().copied().max().unwrap_or(0);
    if values.len() < 2 || max == 0 {
        return 0;
    }
    let sum: u64 = values.iter().sum();
    let mean_pm = sum * 1000 / values.len() as u64;
    1000 - mean_pm / max
}

/// Concentration of a set of per-node values: 0 = perfectly even, 1000 =
/// one node carries everything — *normalised by the node count*, so a
/// full bind scores 1000 whether one controller out of two or one out of
/// eight serves the traffic. `(max·k − sum) / (max·(k−1))` in per-mille.
fn concentration_pm(values: &[u64]) -> u64 {
    let max = values.iter().copied().max().unwrap_or(0);
    let k = values.len() as u64;
    if k < 2 || max == 0 {
        return 0;
    }
    let sum: u64 = values.iter().sum();
    (max * k - sum) * 1000 / (max * (k - 1))
}

/// Derives every metric from one indicator vector.
pub fn derive(ind: &Indicators) -> MetricSet {
    let mut m = MetricSet::default();
    let local = ind.total(|n| n.local_dram);
    let remote = ind.total(|n| n.remote_dram);
    let cycles = ind.total(|n| n.cycles);
    let instructions = ind.total(|n| n.instructions);
    let mem_ops = ind.total(|n| n.load) + ind.total(|n| n.store);

    m.set(
        MetricId::RemoteRatio,
        if local + remote == 0 {
            Some(0)
        } else {
            per_mille(remote, local + remote)
        },
    );
    m.set(MetricId::DramPerKcycle, per_mille(local + remote, cycles));
    m.set(
        MetricId::MemStallFrac,
        per_mille(ind.total(|n| n.mem_stall), cycles),
    );
    m.set(
        MetricId::HitmPerKop,
        per_mille(ind.total(|n| n.hitm), mem_ops),
    );
    m.set(
        MetricId::DtlbMpki,
        per_mille(ind.total(|n| n.dtlb_miss), instructions),
    );

    let active = ind.active_nodes();
    if active.is_empty() {
        m.set(MetricId::ImcSkew, None);
        m.set(MetricId::WorkSkew, None);
        return m;
    }

    // IMC concentration runs over the nodes *involved* in the run: the
    // ones whose cores execute it plus the ones whose controllers serve
    // it. Idle corners of a wide machine say nothing about balance; a
    // bound allocation shows up precisely because an active node's
    // controller sits idle while a serving node's runs hot. The
    // count-normalised form keeps a bind near 1000 on any machine while
    // an uneven interleave across many controllers stays mid-range.
    let imc_max = ind.nodes.iter().map(|n| n.imc_total()).max().unwrap_or(0);
    let involved: Vec<u64> = ind
        .nodes
        .iter()
        .enumerate()
        .filter(|(i, n)| active.contains(i) || (imc_max > 0 && n.imc_total() > imc_max / 20))
        .map(|(_, n)| n.imc_total())
        .collect();
    m.set(MetricId::ImcSkew, Some(concentration_pm(&involved)));

    let work: Vec<u64> = active.iter().map(|&i| ind.nodes[i].instructions).collect();
    m.set(MetricId::WorkSkew, Some(skew_pm(&work)));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indicators::NodeVector;

    fn node(instr: u64, local: u64, remote: u64, imc: u64) -> NodeVector {
        NodeVector {
            instructions: instr,
            cycles: instr.max(1) * 2,
            local_dram: local,
            remote_dram: remote,
            imc_read: imc,
            ..NodeVector::default()
        }
    }

    #[test]
    fn remote_ratio_and_skews() {
        // Two active nodes, everything served by node 0: the bound shape.
        let ind = Indicators {
            nodes: vec![node(1000, 500, 0, 1000), node(1000, 0, 500, 0)],
            wall_cycles: 4000,
        };
        let m = derive(&ind);
        assert_eq!(m.get(MetricId::RemoteRatio), Some(500));
        // One controller of the two involved serves everything: a full
        // bind concentrates to 1000 regardless of node count.
        assert_eq!(m.get(MetricId::ImcSkew), Some(1000));
        assert_eq!(m.get(MetricId::WorkSkew), Some(0));
    }

    #[test]
    fn idle_nodes_do_not_fake_imbalance() {
        // Two threads on an eight-node machine, all local: six idle
        // nodes must not turn into "imbalance".
        let mut nodes = vec![node(1000, 400, 0, 400), node(1000, 400, 0, 400)];
        nodes.extend(std::iter::repeat_n(node(0, 0, 0, 0), 6));
        let ind = Indicators {
            nodes,
            wall_cycles: 4000,
        };
        let m = derive(&ind);
        assert_eq!(m.get(MetricId::ImcSkew), Some(0));
        assert_eq!(m.get(MetricId::WorkSkew), Some(0));
        assert_eq!(m.get(MetricId::RemoteRatio), Some(0));
    }

    #[test]
    fn work_skew_sees_the_hub_thread() {
        let ind = Indicators {
            nodes: vec![node(6000, 100, 0, 100), node(1000, 100, 0, 100)],
            wall_cycles: 20000,
        };
        let m = derive(&ind);
        // mean 3500 of max 6000 -> 1000 - 583 = 417.
        assert_eq!(m.get(MetricId::WorkSkew), Some(417));
    }

    #[test]
    fn empty_denominators_are_unavailable_not_zero() {
        let ind = Indicators {
            nodes: vec![NodeVector::default(); 2],
            wall_cycles: 0,
        };
        let m = derive(&ind);
        assert_eq!(m.get(MetricId::RemoteRatio), Some(0));
        assert_eq!(m.get(MetricId::DramPerKcycle), None);
        assert_eq!(m.get(MetricId::HitmPerKop), None);
        assert_eq!(m.get(MetricId::DtlbMpki), None);
        assert_eq!(m.get(MetricId::WorkSkew), None);
    }

    #[test]
    fn skew_is_scale_free() {
        assert_eq!(skew_pm(&[100, 100, 100, 100]), 0);
        assert_eq!(skew_pm(&[1000, 0]), 500);
        assert_eq!(skew_pm(&[7]), 0, "one node is even by definition");
        // Scaling all values leaves the coefficient unchanged.
        assert_eq!(skew_pm(&[300, 100]), skew_pm(&[3000, 1000]));
    }

    #[test]
    fn concentration_is_count_invariant() {
        // A full bind scores 1000 on two nodes and on eight.
        assert_eq!(concentration_pm(&[900, 0]), 1000);
        assert_eq!(concentration_pm(&[900, 0, 0, 0, 0, 0, 0, 0]), 1000);
        // Even traffic scores 0 at any width.
        assert_eq!(concentration_pm(&[250; 8]), 0);
        // An uneven interleave stays mid-range: the hottest of eight
        // controllers serving ~2x its share is nowhere near a bind.
        assert!(concentration_pm(&[200, 100, 100, 100, 100, 100, 100, 100]) < 800);
        assert_eq!(concentration_pm(&[7]), 0);
        assert_eq!(concentration_pm(&[0, 0]), 0);
    }
}
