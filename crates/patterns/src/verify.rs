//! The differential verification sweep over the labeled registry.
//!
//! Every registry workload runs on both machine presets at two thread
//! counts; the classifier's fired set must equal the entry's
//! `expected_patterns` label *exactly* — a missed pattern and a spurious
//! one are both failures. The sweep fans across an np-parallel pool in
//! input order, so the resulting `np-patterns/1` document is
//! byte-identical at any pool width; `np patterns --verify` exits 2 on
//! the first mismatch, which makes the calibration a tier-1 CI gate.

use crate::classify::{classify, fired_names, Verdict};
use crate::indicators::Indicators;
use crate::metrics::{derive, MetricSet};
use crate::schema::{metric_docs, CaseDoc, PatternsDoc};
use np_simulator::{MachineConfig, MachineSim, Program};
use np_workloads::registry;

/// The machine presets the sweep proves the labels on, with noise
/// quiesced: thresholds discriminate patterns, not timer jitter.
pub fn sweep_machines() -> Vec<(&'static str, MachineConfig)> {
    let quiet = |mut cfg: MachineConfig| {
        cfg.noise.timer_interval = 0;
        cfg.noise.dram_jitter = 0.0;
        cfg
    };
    vec![
        ("two-socket", quiet(MachineConfig::two_socket_small())),
        ("ring", quiet(MachineConfig::eight_socket_ring())),
    ]
}

/// Workload thread counts the sweep covers (kept to divisors of every
/// preset's node count so partitions stay even — uneven partitions are
/// the load-imbalance workload's job, not an accident of the sweep).
pub const SWEEP_THREADS: [usize; 2] = [2, 4];

/// Per-entry size override for the sweep: the label must hold at the
/// entry's characteristic footprint, but the irregular giants get a
/// bounded size so the tier-1 gate stays fast.
pub fn sweep_size(name: &str) -> Option<usize> {
    match name {
        "bfs" | "bfs-bound" | "bfs-interleaved" => Some(16 * 1024),
        _ => None,
    }
}

/// Classifies one program end-to-end: run, reduce, derive, classify —
/// with the np-analysis envelope priors of the very program under test.
pub fn classify_run(
    program: &Program,
    config: &MachineConfig,
    seed: u64,
) -> Result<(MetricSet, Vec<Verdict>), String> {
    let sim = MachineSim::new(config.clone());
    let result = sim
        .run(program, seed)
        .map_err(|e| format!("invalid program: {e:?}"))?;
    let indicators = Indicators::from_run(&result, &config.topology);
    let metrics = derive(&indicators);
    let priors = np_analysis::priors(program, config);
    let verdicts = classify(&metrics, Some(&priors));
    Ok((metrics, verdicts))
}

/// One sweep case, classified.
fn run_case(
    name: &str,
    machine_label: &str,
    config: &MachineConfig,
    threads: usize,
    seed: u64,
) -> Result<CaseDoc, String> {
    let workload = registry::build(name, sweep_size(name), threads, config)?;
    let program = workload.build(config);
    let (metrics, verdicts) = classify_run(&program, config, seed)?;
    let fired = fired_names(&verdicts);
    let expected: Vec<String> = registry::expected_patterns(name)
        .unwrap_or(&[])
        .iter()
        .map(|s| s.to_string())
        .collect();
    let matched = fired == expected;
    Ok(CaseDoc {
        workload: name.to_string(),
        machine: machine_label.to_string(),
        threads: threads as u64,
        seed,
        metrics: metric_docs(&metrics),
        verdicts,
        fired,
        expected,
        matched,
    })
}

/// The sweep's result: the document plus human-readable failures.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The full `np-patterns/1` document, one case per (machine,
    /// threads, workload).
    pub doc: PatternsDoc,
    /// One line per mismatched or failed case; empty = labels recovered.
    pub failures: Vec<String>,
}

/// Runs the full verification sweep on `pool`.
pub fn sweep(pool: &np_parallel::Pool, seed: u64) -> SweepOutcome {
    let machines = sweep_machines();
    let mut specs: Vec<(&'static str, &MachineConfig, usize, &'static str)> = Vec::new();
    for (label, config) in &machines {
        for &threads in &SWEEP_THREADS {
            for name in registry::NAMES {
                specs.push((label, config, threads, name));
            }
        }
    }

    let results: Vec<Result<CaseDoc, String>> = pool.run(specs.len(), |i| {
        let (label, config, threads, name) = specs[i];
        run_case(name, label, config, threads, seed)
    });

    let mut cases = Vec::with_capacity(results.len());
    let mut failures = Vec::new();
    for ((label, _, threads, name), result) in specs.iter().zip(results) {
        match result {
            Ok(case) => {
                if !case.matched {
                    failures.push(format!(
                        "{name} on {label} x{threads}: fired [{}] expected [{}]",
                        case.fired.join(", "),
                        case.expected.join(", ")
                    ));
                }
                cases.push(case);
            }
            Err(e) => failures.push(format!("{name} on {label} x{threads}: {e}")),
        }
    }
    SweepOutcome {
        doc: PatternsDoc::new("registry-sweep", cases, Vec::new()),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_case_classifies_and_documents() {
        let (_, config) = sweep_machines().remove(0);
        let case = run_case("stream-local", "two-socket", &config, 2, 1).unwrap();
        assert_eq!(case.workload, "stream-local");
        assert_eq!(case.verdicts.len(), 6);
        assert_eq!(case.metrics.len(), 7);
        assert_eq!(case.expected, vec!["bandwidth-bound"]);
    }

    #[test]
    fn sweep_covers_every_name_on_every_axis() {
        // Shape only (the full label assertion is the --verify gate and
        // the golden tests): every (machine, threads, name) appears.
        let machines = sweep_machines();
        assert_eq!(machines.len(), 2);
        let expected_cases = machines.len() * SWEEP_THREADS.len() * registry::NAMES.len();
        assert_eq!(expected_cases, 2 * 2 * 24);
    }
}
