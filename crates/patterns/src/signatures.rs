//! The declarative signature table: pattern = conjunction of thresholds.
//!
//! Each signature lists the rules that must *all* hold for the pattern
//! to fire, as `metric ⋛ threshold` comparisons in per-mille fixed
//! point, plus the hardware event whose np-analysis envelope serves as
//! the verdict's static prior. The thresholds are calibrated against the
//! labeled registry on the quiet simulator (both machine presets, 2 and
//! 4 threads — see EXPERIMENTS.md); `np patterns --verify` re-proves the
//! calibration on every run, so a threshold drifting out of its
//! discriminative band fails tier-1 CI rather than silently degrading.

use crate::metrics::MetricId;
use crate::pattern::Pattern;
use np_simulator::HwEvent;

/// Comparison direction of one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleOp {
    /// Fires when the metric is at or above the threshold.
    Ge,
    /// Fires when the metric is at or below the threshold.
    Le,
}

impl RuleOp {
    /// The symbol used in evidence lines.
    pub fn symbol(self) -> &'static str {
        match self {
            RuleOp::Ge => ">=",
            RuleOp::Le => "<=",
        }
    }
}

/// One threshold comparison over a derived metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// The metric under test.
    pub metric: MetricId,
    /// Comparison direction.
    pub op: RuleOp,
    /// Threshold in per-mille fixed point.
    pub threshold_pm: u64,
}

impl Rule {
    /// Whether `observed` satisfies the rule.
    pub fn passes(&self, observed: u64) -> bool {
        match self.op {
            RuleOp::Ge => observed >= self.threshold_pm,
            RuleOp::Le => observed <= self.threshold_pm,
        }
    }
}

/// A pattern's full signature.
#[derive(Debug, Clone, Copy)]
pub struct Signature {
    /// The pattern this signature detects.
    pub pattern: Pattern,
    /// The conjunction of rules; all must pass.
    pub rules: &'static [Rule],
    /// The event whose static envelope prices the verdict's prior
    /// confidence (satellite of the np-analysis `Priors` API).
    pub prior_event: HwEvent,
}

const fn ge(metric: MetricId, threshold_pm: u64) -> Rule {
    Rule {
        metric,
        op: RuleOp::Ge,
        threshold_pm,
    }
}

const fn le(metric: MetricId, threshold_pm: u64) -> Rule {
    Rule {
        metric,
        op: RuleOp::Le,
        threshold_pm,
    }
}

/// The signature table, in [`Pattern::ALL`] order.
///
/// Calibration notes (quiet sim, 2/4 threads, two-socket + ring — the
/// matrix behind every number is reproducible via the ignored
/// `calibration` test in this crate):
/// * a local stream saturates the simulated DRAM path at 38–39 requests
///   per kcycle (≈ 1000 / local latency); nothing else reaches 32, so
///   the bandwidth rule asks for 34.
/// * dependent chases and the BFS frontier walk stall past 800‰ while
///   issuing under 10 requests per kcycle — the latency/bandwidth
///   discriminator is the request *rate*, not the stall share. Remote
///   streams also stall past 770‰ on the ring but keep the rate near 20,
///   which is why the latency rule caps the rate at 10.
/// * kernels without concurrent stores to shared lines stay at 0 HITM
///   per k-op; the sharing-prone ones (hash-join build, naive sift, BFS
///   frontier, walk marks, sort merge) never drop below 10.
/// * the 64-entry dTLB keeps sequential kernels under 95 misses per
///   k-instruction even for page-hostile traces; page-granular chases
///   and DRAM-sized random probes never drop below 170.
/// * IMC concentration is count-normalised: binds score 885+ on every
///   axis while uneven interleaves and partial hotspots top out near
///   775, so the rule asks for 830 alongside a 300‰ remote ratio.
/// * even partitions keep work skew under 15‰; the serial-fill sort,
///   the sift pivot walk and the 6× hub thread never drop below 130‰,
///   so the rule asks for 100.
pub fn signatures() -> &'static [Signature] {
    const BANDWIDTH: &[Rule] = &[
        ge(MetricId::DramPerKcycle, 34),
        ge(MetricId::MemStallFrac, 400),
    ];
    const LATENCY: &[Rule] = &[
        ge(MetricId::MemStallFrac, 750),
        le(MetricId::DramPerKcycle, 10),
    ];
    const FALSE_SHARING: &[Rule] = &[ge(MetricId::HitmPerKop, 9)];
    const NUMA_IMBALANCE: &[Rule] = &[ge(MetricId::RemoteRatio, 300), ge(MetricId::ImcSkew, 830)];
    const TLB: &[Rule] = &[ge(MetricId::DtlbMpki, 130)];
    const LOAD_IMBALANCE: &[Rule] = &[ge(MetricId::WorkSkew, 100)];

    const TABLE: &[Signature] = &[
        Signature {
            pattern: Pattern::BandwidthBound,
            rules: BANDWIDTH,
            prior_event: HwEvent::LocalDramAccess,
        },
        Signature {
            pattern: Pattern::LatencyBound,
            rules: LATENCY,
            prior_event: HwEvent::MemStallCycles,
        },
        Signature {
            pattern: Pattern::FalseSharing,
            rules: FALSE_SHARING,
            prior_event: HwEvent::HitmTransfer,
        },
        Signature {
            pattern: Pattern::NumaImbalance,
            rules: NUMA_IMBALANCE,
            prior_event: HwEvent::RemoteDramAccess,
        },
        Signature {
            pattern: Pattern::TlbThrashing,
            rules: TLB,
            prior_event: HwEvent::DtlbMiss,
        },
        Signature {
            pattern: Pattern::LoadImbalance,
            rules: LOAD_IMBALANCE,
            prior_event: HwEvent::Instructions,
        },
    ];
    TABLE
}

/// The signature for one pattern.
pub fn signature_for(pattern: Pattern) -> &'static Signature {
    signatures()
        .iter()
        .find(|s| s.pattern == pattern)
        .expect("every pattern has a signature")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_every_pattern_in_order() {
        let table = signatures();
        assert_eq!(table.len(), Pattern::ALL.len());
        for (sig, pat) in table.iter().zip(Pattern::ALL) {
            assert_eq!(sig.pattern, pat);
            assert!(!sig.rules.is_empty());
        }
    }

    #[test]
    fn rules_compare_both_directions() {
        let r = ge(MetricId::RemoteRatio, 300);
        assert!(r.passes(300) && r.passes(999) && !r.passes(299));
        let r = le(MetricId::DramPerKcycle, 20);
        assert!(r.passes(0) && r.passes(20) && !r.passes(21));
    }
}
