//! Compact per-node pattern badges for `np top` and the HTML report.
//!
//! A node badge is the *node-local* approximation of the signatures:
//! skew patterns are machine-wide by definition, so a single node can
//! show bandwidth/latency pressure, sharing, remote traffic and TLB
//! churn — the things its own counters witness. Thresholds are the
//! signature table's, so a badge in `np top` and a verdict in
//! `np patterns` never disagree about where a line sits.

use crate::indicators::{Indicators, NodeVector};
use crate::metrics::{derive, MetricId};
use crate::pattern::Pattern;
use crate::signatures::signature_for;

/// Whether every rule of `pattern` that only needs node-local inputs
/// passes for this single-node metric set.
fn node_fires(pattern: Pattern, metrics: &crate::metrics::MetricSet) -> bool {
    signature_for(pattern)
        .rules
        .iter()
        .filter(|r| !matches!(r.metric, MetricId::ImcSkew | MetricId::WorkSkew))
        .all(|r| metrics.get(r.metric).is_some_and(|v| r.passes(v)))
}

/// The badge column for one node: `BW+TLB`, `RMT`, ... or `-`.
pub fn node_badges(node: &NodeVector) -> String {
    let metrics = derive(&Indicators {
        nodes: vec![*node],
        wall_cycles: node.cycles,
    });
    let mut badges = Vec::new();
    for pattern in [
        Pattern::BandwidthBound,
        Pattern::LatencyBound,
        Pattern::FalseSharing,
        Pattern::NumaImbalance,
        Pattern::TlbThrashing,
    ] {
        if node_fires(pattern, &metrics) {
            badges.push(pattern.badge());
        }
    }
    if badges.is_empty() {
        "-".to_string()
    } else {
        badges.join("+")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_node_shows_a_dash() {
        let n = NodeVector {
            instructions: 100_000,
            cycles: 200_000,
            mem_stall: 10_000,
            local_dram: 500,
            load: 50_000,
            store: 20_000,
            ..NodeVector::default()
        };
        assert_eq!(node_badges(&n), "-");
    }

    #[test]
    fn remote_heavy_node_earns_rmt() {
        let n = NodeVector {
            instructions: 100_000,
            cycles: 200_000,
            mem_stall: 20_000,
            local_dram: 100,
            remote_dram: 900,
            load: 50_000,
            store: 20_000,
            ..NodeVector::default()
        };
        let badges = node_badges(&n);
        assert!(badges.contains("RMT"), "{badges}");
    }

    #[test]
    fn chase_shape_earns_lat_and_tlb() {
        let n = NodeVector {
            instructions: 10_000,
            cycles: 1_000_000,
            mem_stall: 900_000,
            local_dram: 9_000,
            dtlb_miss: 4_000,
            load: 9_500,
            store: 100,
            ..NodeVector::default()
        };
        let badges = node_badges(&n);
        assert!(badges.contains("LAT") && badges.contains("TLB"), "{badges}");
        assert!(!badges.contains("BW"), "{badges}");
    }
}
