//! Retry with exponential backoff and deterministic, seedable jitter.

use std::time::{Duration, Instant};

/// How to retry a transient failure.
///
/// Backoff for attempt `k` (1-based) is `base_delay × multiplier^(k-1)`,
/// capped at `max_delay`, then jittered by up to `jitter` of itself using
/// a splitmix64 stream seeded from `seed` — so two runs with the same seed
/// sleep the same schedule, and a fleet of clients with different seeds
/// decorrelates.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base_delay: Duration,
    /// Upper bound any single backoff is clamped to.
    pub max_delay: Duration,
    /// Exponential growth factor between attempts.
    pub multiplier: f64,
    /// Fraction of each backoff randomized away (0.0 = none, 0.5 = up to
    /// half). Jitter only ever *shortens* the sleep, so `max_delay` holds.
    pub jitter: f64,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
    /// Budget for one attempt; exposed to the operation via [`Attempt`].
    pub attempt_timeout: Option<Duration>,
    /// Budget for the whole retry loop, sleeps included.
    pub overall_deadline: Option<Duration>,
}

impl RetryPolicy {
    /// A policy with `max_attempts` tries, 10 ms base backoff doubling to
    /// at most 500 ms, 30% jitter, and no deadlines.
    pub fn new(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            multiplier: 2.0,
            jitter: 0.3,
            seed: 0,
            attempt_timeout: None,
            overall_deadline: None,
        }
    }

    /// A policy that retries immediately — for tests and the fault matrix,
    /// where real sleeps only slow the suite down.
    pub fn immediate(max_attempts: u32) -> Self {
        RetryPolicy {
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            ..Self::new(max_attempts)
        }
    }

    /// Sets the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the base backoff.
    pub fn with_base_delay(mut self, d: Duration) -> Self {
        self.base_delay = d;
        self
    }

    /// Sets the per-attempt budget.
    pub fn with_attempt_timeout(mut self, d: Duration) -> Self {
        self.attempt_timeout = Some(d);
        self
    }

    /// Sets the overall budget.
    pub fn with_overall_deadline(mut self, d: Duration) -> Self {
        self.overall_deadline = Some(d);
        self
    }

    /// The backoff to sleep before attempt `attempt` (1-based; attempt 1
    /// never sleeps). Pure function of the policy — no clock, no RNG
    /// state, so schedules are reproducible and testable.
    pub fn backoff(&self, attempt: u32) -> Duration {
        if attempt <= 1 || self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let exp = self.multiplier.powi(attempt as i32 - 2);
        let raw = self.base_delay.as_secs_f64() * exp;
        let capped = raw.min(self.max_delay.as_secs_f64());
        // splitmix64 over (seed, attempt): deterministic per-attempt jitter.
        let r = splitmix64(self.seed.wrapping_add(attempt as u64)) as f64 / u64::MAX as f64;
        let jittered = capped * (1.0 - self.jitter * r);
        Duration::from_secs_f64(jittered.max(0.0))
    }

    /// Runs `op` under the policy, retrying failures `is_transient`
    /// accepts. The operation receives an [`Attempt`] carrying its index
    /// and per-attempt deadline so it can bound its own I/O.
    ///
    /// Every retry increments the `resilience.retries` telemetry counter;
    /// a sleep is skipped or truncated when it would cross the overall
    /// deadline.
    pub fn run<T, E>(
        &self,
        mut op: impl FnMut(Attempt) -> Result<T, E>,
        is_transient: impl Fn(&E) -> bool,
    ) -> Result<T, RetryError<E>> {
        let started = Instant::now();
        let overall = self.overall_deadline.map(|d| started + d);
        let mut last = None;
        // `max_attempts` is clamped at construction, but it is also a pub
        // field: re-clamp so a hand-built policy with 0 still makes one
        // attempt instead of hitting the empty-range path below.
        let max_attempts = self.max_attempts.max(1);
        for attempt in 1..=max_attempts {
            let pause = self.backoff(attempt);
            if !pause.is_zero() {
                let pause = match overall {
                    Some(end) => pause.min(end.saturating_duration_since(Instant::now())),
                    None => pause,
                };
                std::thread::sleep(pause);
            }
            if let Some(end) = overall {
                if Instant::now() >= end {
                    return Err(RetryError::DeadlineExceeded {
                        attempts: attempt - 1,
                        last,
                    });
                }
            }
            if attempt > 1 {
                np_telemetry::counter!("resilience.retries").inc();
            }
            let deadline = match (self.attempt_timeout, overall) {
                (Some(t), Some(end)) => Some((Instant::now() + t).min(end)),
                (Some(t), None) => Some(Instant::now() + t),
                (None, Some(end)) => Some(end),
                (None, None) => None,
            };
            match op(Attempt {
                index: attempt,
                deadline,
            }) {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(&e) => {
                    // Exhaustion is decided here, with the error in hand —
                    // no after-the-loop unwrap of an Option that control
                    // flow "guarantees" is Some.
                    if attempt == max_attempts {
                        return Err(RetryError::Exhausted {
                            attempts: max_attempts,
                            last: e,
                        });
                    }
                    last = Some(e);
                }
                Err(e) => return Err(RetryError::Permanent(e)),
            }
        }
        // Unreachable (the loop always returns on its final attempt), but
        // total: treat an impossible fall-through as deadline exhaustion.
        Err(RetryError::DeadlineExceeded {
            attempts: max_attempts,
            last,
        })
    }
}

/// One try inside [`RetryPolicy::run`].
#[derive(Debug, Clone, Copy)]
pub struct Attempt {
    /// 1-based attempt number.
    pub index: u32,
    /// When this attempt must be done (per-attempt timeout ∩ overall
    /// deadline), if either is configured.
    pub deadline: Option<Instant>,
}

impl Attempt {
    /// Time left for this attempt, if bounded. `Some(ZERO)` means expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// Why a retried operation ultimately failed.
#[derive(Debug)]
pub enum RetryError<E> {
    /// Every attempt failed transiently.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The final transient error.
        last: E,
    },
    /// The overall deadline expired before the attempts did.
    DeadlineExceeded {
        /// Attempts completed before the deadline hit.
        attempts: u32,
        /// The most recent transient error, if any attempt ran.
        last: Option<E>,
    },
    /// The operation failed with an error classified non-transient.
    Permanent(E),
}

impl<E: std::fmt::Display> std::fmt::Display for RetryError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetryError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            RetryError::DeadlineExceeded { attempts, last } => match last {
                Some(e) => write!(f, "deadline exceeded after {attempts} attempts: {e}"),
                None => write!(f, "deadline exceeded before the first attempt"),
            },
            RetryError::Permanent(e) => write!(f, "permanent failure: {e}"),
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for RetryError<E> {}

/// splitmix64: the standard 64-bit finalizer, used as a stateless PRNG.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn first_attempt_never_sleeps() {
        assert_eq!(RetryPolicy::new(5).backoff(1), Duration::ZERO);
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let a = RetryPolicy::new(5).with_seed(42);
        let b = RetryPolicy::new(5).with_seed(42);
        let c = RetryPolicy::new(5).with_seed(43);
        for k in 2..=5 {
            assert_eq!(a.backoff(k), b.backoff(k));
        }
        assert!((2..=5).any(|k| a.backoff(k) != c.backoff(k)));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::new(8)
        };
        assert_eq!(p.backoff(2), Duration::from_millis(10));
        assert_eq!(p.backoff(3), Duration::from_millis(20));
        assert_eq!(p.backoff(4), Duration::from_millis(40));
        // Far past the cap.
        assert_eq!(p.backoff(8), Duration::from_millis(500));
    }

    #[test]
    fn jitter_only_shortens() {
        let p = RetryPolicy::new(6).with_seed(9);
        for k in 2..=6 {
            assert!(p.backoff(k) <= p.max_delay);
            assert!(p.backoff(k) >= Duration::from_secs_f64(p.max_delay.as_secs_f64() * 0.0));
        }
    }

    #[test]
    fn run_retries_transient_until_success() {
        let calls = Cell::new(0u32);
        let out = RetryPolicy::immediate(5).run(
            |a| {
                calls.set(calls.get() + 1);
                if a.index < 3 {
                    Err("flaky")
                } else {
                    Ok(a.index)
                }
            },
            |_| true,
        );
        assert_eq!(out.unwrap(), 3);
        assert_eq!(calls.get(), 3);
    }

    #[test]
    fn run_exhausts_after_max_attempts() {
        let calls = Cell::new(0u32);
        let out: Result<(), _> = RetryPolicy::immediate(3).run(
            |_| {
                calls.set(calls.get() + 1);
                Err("always")
            },
            |_| true,
        );
        assert_eq!(calls.get(), 3);
        match out.unwrap_err() {
            RetryError::Exhausted { attempts: 3, last } => assert_eq!(last, "always"),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn permanent_errors_stop_immediately() {
        let calls = Cell::new(0u32);
        let out: Result<(), _> = RetryPolicy::immediate(5).run(
            |_| {
                calls.set(calls.get() + 1);
                Err("fatal")
            },
            |_| false,
        );
        assert_eq!(calls.get(), 1);
        assert!(matches!(out.unwrap_err(), RetryError::Permanent("fatal")));
    }

    #[test]
    fn overall_deadline_bounds_the_loop() {
        let p = RetryPolicy::new(100)
            .with_base_delay(Duration::from_millis(20))
            .with_overall_deadline(Duration::from_millis(60));
        let started = Instant::now();
        let out: Result<(), _> = p.run(|_| Err("flaky"), |_| true);
        assert!(matches!(
            out.unwrap_err(),
            RetryError::DeadlineExceeded { .. }
        ));
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "deadline ignored: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn attempts_carry_their_deadline() {
        let p = RetryPolicy::immediate(1).with_attempt_timeout(Duration::from_millis(100));
        p.run::<_, ()>(
            |a| {
                let rem = a.remaining().expect("bounded attempt");
                assert!(rem <= Duration::from_millis(100));
                Ok(())
            },
            |_| true,
        )
        .unwrap();
    }
}
