//! Fault injection: the seam between the resilience layer and its tests.
//!
//! Production code consults a [`FaultInjector`] at named sites
//! (`"probe.accept"`, `"probe.response"`, `"acq.batch_run"`,
//! `"acq.pebs.rotation"`, …); the default [`NoFaults`] injector returns
//! nothing and costs one virtual call. Tests and the simulator plug in
//! [`ScriptedFaults`], which drains a deterministic per-site script — so
//! the fault-matrix suite can stage "the network truncates the second
//! response" without touching a real network.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use std::time::Duration;

/// One injectable failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Close the connection without writing anything.
    DropConnection,
    /// Write only the first `keep` bytes of the payload, then close.
    TruncatePayload {
        /// Bytes of the real payload to let through.
        keep: usize,
    },
    /// Stall for the given duration before proceeding normally.
    Delay(Duration),
    /// Replace the payload with `len` deterministic garbage bytes.
    GarbageBytes {
        /// Number of garbage bytes to emit.
        len: usize,
        /// Seed of the garbage stream.
        seed: u64,
    },
    /// Refuse the connection at accept time (hang up immediately).
    RefuseAccept,
}

impl Fault {
    /// Deterministic garbage for [`Fault::GarbageBytes`] — printable-ish
    /// but never valid JSON, newline-terminated so line readers return.
    pub fn garbage(len: usize, seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len.max(1));
        let mut x = seed | 1;
        for _ in 0..len.saturating_sub(1) {
            // xorshift64: cheap, deterministic, avoids '\n' and '{'.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let b = 0x21 + (x % 0x5d) as u8; // '!'..='}'
            out.push(if b == b'{' { b'#' } else { b });
        }
        out.push(b'\n');
        out
    }
}

/// Source of injected faults, consulted at named sites.
pub trait FaultInjector: Send + Sync {
    /// The next fault to apply at `site`, if the script has one queued.
    fn next(&self, site: &str) -> Option<Fault>;
}

/// The production injector: never faults.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn next(&self, _site: &str) -> Option<Fault> {
        None
    }
}

/// A deterministic, ordered fault script, keyed by site.
///
/// Faults queued for a site are returned one per [`next`] call, in
/// injection order; a site with an empty queue behaves like [`NoFaults`].
/// Every consumed fault increments the `faults.injected` telemetry
/// counter, so a test can assert its script actually fired.
///
/// [`next`]: FaultInjector::next
#[derive(Default)]
pub struct ScriptedFaults {
    script: Mutex<HashMap<String, VecDeque<Fault>>>,
}

impl ScriptedFaults {
    /// An empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues `fault` at `site` (builder style).
    pub fn inject(self, site: &str, fault: Fault) -> Self {
        self.script
            .lock()
            .unwrap()
            .entry(site.to_string())
            .or_default()
            .push_back(fault);
        self
    }

    /// Queues `fault` at `site` `n` times.
    pub fn inject_n(mut self, site: &str, fault: Fault, n: usize) -> Self {
        for _ in 0..n {
            self = self.inject(site, fault.clone());
        }
        self
    }

    /// Faults still queued across all sites.
    pub fn remaining(&self) -> usize {
        self.script
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
            .map(|q| q.len())
            .sum()
    }
}

impl FaultInjector for ScriptedFaults {
    fn next(&self, site: &str) -> Option<Fault> {
        let fault = self
            .script
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get_mut(site)?
            .pop_front();
        if fault.is_some() {
            np_telemetry::counter!("faults.injected").inc();
        }
        fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_silent() {
        assert!(NoFaults.next("anywhere").is_none());
    }

    #[test]
    fn scripted_faults_drain_in_order_per_site() {
        let s = ScriptedFaults::new()
            .inject("a", Fault::DropConnection)
            .inject("a", Fault::RefuseAccept)
            .inject("b", Fault::Delay(Duration::from_millis(5)));
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.next("a"), Some(Fault::DropConnection));
        assert_eq!(s.next("b"), Some(Fault::Delay(Duration::from_millis(5))));
        assert_eq!(s.next("a"), Some(Fault::RefuseAccept));
        assert_eq!(s.next("a"), None);
        assert_eq!(s.next("b"), None);
        assert_eq!(s.next("unknown"), None);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn inject_n_repeats() {
        let s = ScriptedFaults::new().inject_n("x", Fault::DropConnection, 3);
        assert_eq!(s.remaining(), 3);
        for _ in 0..3 {
            assert_eq!(s.next("x"), Some(Fault::DropConnection));
        }
        assert_eq!(s.next("x"), None);
    }

    #[test]
    fn garbage_is_deterministic_and_never_json() {
        let a = Fault::garbage(64, 7);
        let b = Fault::garbage(64, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert_eq!(*a.last().unwrap(), b'\n');
        assert!(!a.contains(&b'{'));
        assert!(a[..63].iter().all(|&c| c != b'\n'));
        assert_ne!(Fault::garbage(64, 8), a);
    }
}
