//! # np-resilience — fault tolerance for the paths that leave the process
//!
//! The Memhist front-end pulls PEBS latency samples from a remote probe
//! over TCP and cycles thresholds on a timeslice schedule, so a dropped
//! connection or a stalled probe silently corrupts the histogram. This
//! crate is the policy layer that keeps those paths honest, in the spirit
//! of NUMAscope's capture daemon and LIKWID's measurement harness (bounded
//! reads, reconnects, degraded-but-usable results):
//!
//! * [`RetryPolicy`] — exponential backoff with **deterministic, seedable
//!   jitter**, max-attempts, per-attempt deadlines and an overall
//!   deadline. Determinism matters here for the same reason it matters in
//!   the simulator: a flaky-looking retry schedule cannot be debugged.
//! * [`Deadline`] / [`StreamDeadlines`] — timeout wrappers for blocking
//!   I/O, plus [`read_line_bounded`] so a frame read can never allocate
//!   without bound.
//! * [`CircuitBreaker`] — closed → open → half-open, with its state and
//!   transition counts exported through np-telemetry gauges/counters.
//! * [`FaultInjector`] — the seam tests and the simulator plug into. The
//!   deterministic [`ScriptedFaults`] implementation injects
//!   drop-connection, truncate-payload, delay, garbage-bytes and
//!   refuse-accept at named sites, in scripted order.
//!
//! Everything is zero-dependency (np-telemetry is the workspace's own
//! metrics crate) and synchronous: the suite's I/O is blocking by design,
//! so resilience is expressed as deadlines and retries, not as an
//! executor.
//!
//! ```
//! use np_resilience::{RetryPolicy, ScriptedFaults, Fault, FaultInjector};
//!
//! // Deterministic backoff schedule: same seed, same jitter.
//! let policy = RetryPolicy::new(4).with_seed(7);
//! assert_eq!(policy.backoff(1), RetryPolicy::new(4).with_seed(7).backoff(1));
//!
//! // Scripted faults drain in order, per site.
//! let faults = ScriptedFaults::new().inject("probe.response", Fault::DropConnection);
//! assert!(matches!(faults.next("probe.response"), Some(Fault::DropConnection)));
//! assert!(faults.next("probe.response").is_none());
//! ```

pub mod breaker;
pub mod fault;
pub mod io;
pub mod retry;

pub use breaker::{BreakerConfig, CircuitBreaker, CircuitState};
pub use fault::{Fault, FaultInjector, NoFaults, ScriptedFaults};
pub use io::{read_line_bounded, Deadline, StreamDeadlines};
pub use retry::{Attempt, RetryError, RetryPolicy};
