//! Circuit breaking: stop hammering a peer that is clearly down.
//!
//! Classic three-state breaker. **Closed** passes calls through and
//! counts consecutive failures; at `failure_threshold` it trips **open**
//! and fails fast. After `cooldown` the next caller is admitted as a
//! **half-open** probe: success closes the circuit, failure re-opens it
//! and restarts the cooldown.
//!
//! State is exported through np-telemetry so a campaign's snapshot shows
//! whether its probe link was healthy: gauge `<name>.state` (0 = closed,
//! 1 = half-open, 2 = open), counters `<name>.opens`, `<name>.rejected`.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the circuit.
    pub failure_threshold: u32,
    /// How long the circuit stays open before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(250),
        }
    }
}

/// The observable state of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Calls flow; failures are being counted.
    Closed,
    /// Failing fast; no calls admitted until the cooldown elapses.
    Open,
    /// One probe call admitted; its outcome decides the next state.
    HalfOpen,
}

impl CircuitState {
    fn gauge_value(self) -> i64 {
        match self {
            CircuitState::Closed => 0,
            CircuitState::HalfOpen => 1,
            CircuitState::Open => 2,
        }
    }
}

struct Inner {
    state: CircuitState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

/// A named three-state circuit breaker, safe to share across threads.
pub struct CircuitBreaker {
    name: String,
    config: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// Creates a closed breaker. `name` prefixes its telemetry metrics.
    pub fn new(name: impl Into<String>, config: BreakerConfig) -> Self {
        CircuitBreaker {
            name: name.into(),
            config,
            inner: Mutex::new(Inner {
                state: CircuitState::Closed,
                consecutive_failures: 0,
                opened_at: None,
            }),
        }
    }

    /// Current state (transitions open → half-open lazily on [`allow`]).
    ///
    /// [`allow`]: CircuitBreaker::allow
    pub fn state(&self) -> CircuitState {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).state
    }

    /// Asks to make a call. `true` admits it; `false` means fail fast.
    pub fn allow(&self) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        match inner.state {
            CircuitState::Closed => true,
            CircuitState::HalfOpen => {
                // One probe at a time: further callers are rejected until
                // the in-flight probe reports.
                if np_telemetry::enabled() {
                    np_telemetry::global()
                        .counter(&format!("{}.rejected", self.name))
                        .inc();
                }
                false
            }
            CircuitState::Open => {
                let cooled = inner
                    .opened_at
                    .map(|t| t.elapsed() >= self.config.cooldown)
                    .unwrap_or(true);
                if cooled {
                    self.transition(&mut inner, CircuitState::HalfOpen);
                    true
                } else {
                    if np_telemetry::enabled() {
                        np_telemetry::global()
                            .counter(&format!("{}.rejected", self.name))
                            .inc();
                    }
                    false
                }
            }
        }
    }

    /// Reports a successful call: closes the circuit.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.consecutive_failures = 0;
        inner.opened_at = None;
        if inner.state != CircuitState::Closed {
            self.transition(&mut inner, CircuitState::Closed);
        }
    }

    /// Reports a failed call: counts towards the threshold, or re-opens a
    /// half-open circuit immediately.
    pub fn record_failure(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.consecutive_failures += 1;
        let trip = inner.state == CircuitState::HalfOpen
            || (inner.state == CircuitState::Closed
                && inner.consecutive_failures >= self.config.failure_threshold);
        if trip {
            inner.opened_at = Some(Instant::now());
            self.transition(&mut inner, CircuitState::Open);
            if np_telemetry::enabled() {
                np_telemetry::global()
                    .counter(&format!("{}.opens", self.name))
                    .inc();
            }
        }
    }

    fn transition(&self, inner: &mut Inner, to: CircuitState) {
        inner.state = to;
        if np_telemetry::enabled() {
            np_telemetry::global()
                .gauge(&format!("{}.state", self.name))
                .set(to.gauge_value());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(
            format!("test.breaker.{threshold}.{cooldown_ms}"),
            BreakerConfig {
                failure_threshold: threshold,
                cooldown: Duration::from_millis(cooldown_ms),
            },
        )
    }

    #[test]
    fn closed_until_threshold() {
        let b = breaker(3, 1000);
        assert!(b.allow());
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), CircuitState::Closed);
        b.record_failure();
        assert_eq!(b.state(), CircuitState::Open);
        assert!(!b.allow());
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = breaker(2, 1000);
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), CircuitState::Closed);
    }

    #[test]
    fn cooldown_admits_one_half_open_probe() {
        let b = breaker(1, 0);
        b.record_failure();
        assert_eq!(b.state(), CircuitState::Open);
        // Zero cooldown: the next allow() flips to half-open and admits.
        assert!(b.allow());
        assert_eq!(b.state(), CircuitState::HalfOpen);
        // A second caller is rejected while the probe is in flight.
        assert!(!b.allow());
        b.record_success();
        assert_eq!(b.state(), CircuitState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn failed_probe_reopens() {
        let b = breaker(1, 0);
        b.record_failure();
        assert!(b.allow()); // half-open probe
        b.record_failure();
        assert_eq!(b.state(), CircuitState::Open);
    }

    #[test]
    fn state_is_visible_in_telemetry() {
        np_telemetry::set_enabled(true);
        let b = CircuitBreaker::new(
            "test.breaker.telemetry",
            BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::from_secs(60),
            },
        );
        b.record_failure();
        let gauge = np_telemetry::global().gauge("test.breaker.telemetry.state");
        let opens = np_telemetry::global().counter("test.breaker.telemetry.opens");
        assert_eq!(gauge.get(), 2);
        assert_eq!(opens.get(), 1);
        assert!(!b.allow());
        assert!(
            np_telemetry::global()
                .counter("test.breaker.telemetry.rejected")
                .get()
                >= 1
        );
        np_telemetry::set_enabled(false);
    }
}
