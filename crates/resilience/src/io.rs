//! Deadlines and bounded reads for blocking I/O.
//!
//! The suite's TCP paths are deliberately synchronous; their failure mode
//! is therefore *hanging*, not erroring. [`StreamDeadlines`] turns a hang
//! into a timeout, and [`read_line_bounded`] turns an unbounded frame
//! into an `InvalidData` error before it can OOM the reader.

use std::io::{self, BufRead};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A point in time work must finish by, or unbounded.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Self {
        Deadline {
            at: Some(Instant::now() + d),
        }
    }

    /// No deadline.
    pub fn none() -> Self {
        Deadline { at: None }
    }

    /// Wraps an absolute instant (e.g. an [`Attempt`] deadline).
    ///
    /// [`Attempt`]: crate::retry::Attempt
    pub fn at(instant: Option<Instant>) -> Self {
        Deadline { at: instant }
    }

    /// Time remaining, if bounded; `Some(ZERO)` when already expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.at.map(|t| t.saturating_duration_since(Instant::now()))
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.remaining().is_some_and(|r| r.is_zero())
    }
}

/// Read/write timeouts to pin on a [`TcpStream`].
#[derive(Debug, Clone, Copy)]
pub struct StreamDeadlines {
    /// Per-read timeout; `None` blocks forever.
    pub read: Option<Duration>,
    /// Per-write timeout; `None` blocks forever.
    pub write: Option<Duration>,
}

impl StreamDeadlines {
    /// Same timeout both directions.
    pub fn symmetric(d: Duration) -> Self {
        StreamDeadlines {
            read: Some(d),
            write: Some(d),
        }
    }

    /// No timeouts (the pre-resilience behaviour, for completeness).
    pub fn unbounded() -> Self {
        StreamDeadlines {
            read: None,
            write: None,
        }
    }

    /// Derives timeouts from the time remaining on a [`Deadline`]: both
    /// directions get the full remainder (an expired deadline becomes a
    /// minimal 1 ms timeout — `set_read_timeout(ZERO)` is an error).
    pub fn until(deadline: Deadline) -> Self {
        match deadline.remaining() {
            Some(rem) => Self::symmetric(rem.max(Duration::from_millis(1))),
            None => Self::unbounded(),
        }
    }

    /// Applies the timeouts to `stream`.
    pub fn apply(&self, stream: &TcpStream) -> io::Result<()> {
        stream.set_read_timeout(self.read)?;
        stream.set_write_timeout(self.write)
    }
}

/// Reads one `\n`-terminated line of at most `max_bytes` (terminator
/// included) from `reader`.
///
/// Returns the line *without* its terminator. A frame that exceeds
/// `max_bytes` without a newline fails with `InvalidData` after reading
/// at most `max_bytes` — the reader's memory use is bounded no matter
/// what the peer sends. A clean EOF before any byte yields
/// `UnexpectedEof`.
pub fn read_line_bounded(reader: &mut impl BufRead, max_bytes: usize) -> io::Result<String> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("connection closed mid-frame after {} bytes", buf.len()),
            ));
        }
        let take = chunk.len().min(max_bytes - buf.len());
        if let Some(nl) = chunk[..take].iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&chunk[..nl]);
            reader.consume(nl + 1);
            break;
        }
        buf.extend_from_slice(&chunk[..take]);
        reader.consume(take);
        if buf.len() >= max_bytes {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame exceeds the {max_bytes}-byte limit"),
            ));
        }
    }
    String::from_utf8(buf)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("frame not UTF-8: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn reads_one_line_and_leaves_the_rest() {
        let mut r = BufReader::new(&b"hello\nworld\n"[..]);
        assert_eq!(read_line_bounded(&mut r, 64).unwrap(), "hello");
        assert_eq!(read_line_bounded(&mut r, 64).unwrap(), "world");
    }

    #[test]
    fn oversized_frame_is_rejected_bounded() {
        let big = vec![b'x'; 1 << 20];
        let mut r = BufReader::new(&big[..]);
        let err = read_line_bounded(&mut r, 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("1024"));
    }

    #[test]
    fn frame_exactly_at_limit_passes() {
        // 9 payload bytes + newline = 10 total.
        let mut r = BufReader::new(&b"123456789\n"[..]);
        assert_eq!(read_line_bounded(&mut r, 10).unwrap(), "123456789");
    }

    #[test]
    fn eof_mid_frame_is_unexpected_eof() {
        let mut r = BufReader::new(&b"no newline"[..]);
        let err = read_line_bounded(&mut r, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn non_utf8_is_invalid_data() {
        let mut r = BufReader::new(&[0xff, 0xfe, b'\n'][..]);
        let err = read_line_bounded(&mut r, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn deadline_expiry() {
        let d = Deadline::after(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(d.expired());
        assert!(!Deadline::none().expired());
        assert!(Deadline::none().remaining().is_none());
    }

    #[test]
    fn deadlines_translate_to_stream_timeouts() {
        let until = StreamDeadlines::until(Deadline::after(Duration::from_secs(1)));
        assert!(until.read.unwrap() <= Duration::from_secs(1));
        assert!(until.read.unwrap() > Duration::from_millis(500));
        // Expired deadlines still produce a valid (minimal) timeout.
        let expired = StreamDeadlines::until(Deadline::at(Some(Instant::now())));
        assert!(expired.read.unwrap() >= Duration::from_millis(1));
        assert!(StreamDeadlines::until(Deadline::none()).read.is_none());
    }
}
