//! # np-models — computable classical cost models
//!
//! §II-E of the paper laments that "most cost models are based on
//! theoretical considerations and often are only available in textual
//! form. This makes it impossible for computers to automatically determine
//! costs based on these cost models." This crate answers that complaint
//! directly: the models the survey discusses are implemented as *callable
//! cost functions*, parameterised either by hand or by calibration probes
//! run against the simulator ([`calibrate`]).
//!
//! * [`pram`] — the first era: PRAM work/depth costs with EREW/CREW/CRCW
//!   access semantics (§II-A).
//! * [`bsp`] — the second era: Valiant's bulk-synchronous supersteps
//!   `w + g·h + l` (§II-B).
//! * [`logp`] — LogP and its LogGP long-message extension (§II-B).
//! * [`memory_logp`] — Memory LogP: hierarchical point-to-point costs
//!   across cache levels (§II-C).
//! * [`knuma`] — Schmollinger & Kaufmann's κNUMA: a κ-deep tree of BSP
//!   machines with inner-node and inter-node communication terms (§II-D,
//!   Fig. 3).
//! * [`speedup`] — a counter-driven speedup predictor in the spirit of
//!   Tudor & Teo [25]: it consumes *hardware event counters* (the paper's
//!   performance indicators) instead of code analysis.
//! * [`online`] — the online variant in the spirit of Cho et al. [26]: a
//!   prefix of a running execution predicts the scalability curve, so a
//!   runtime can pick its thread count mid-flight.
//! * [`calibrate`] — extracts model parameters (latency, gap, barrier
//!   cost) from the simulated machine with micro-probes, the way
//!   machine-based models (Braithwaite et al. [22]) measure theirs.
//! * [`transfer`] — the paper's own second step: a linear least-squares
//!   indicator-to-cost model fitted from measured pairs, deterministic so
//!   predictions can be cached and audited (§III-B).

pub mod bsp;
pub mod calibrate;
pub mod knuma;
pub mod logp;
pub mod memory_logp;
pub mod online;
pub mod pram;
pub mod speedup;
pub mod transfer;

pub use bsp::{BspMachine, Superstep};
pub use knuma::KNumaMachine;
pub use logp::{LogGpMachine, LogPMachine};
pub use pram::{PramMachine, PramVariant};
pub use speedup::CounterSpeedupModel;
pub use transfer::TransferModel;
