//! Parameter calibration against the simulated machine.
//!
//! Machine-based NUMA models are "built upon prior measurements on the
//! hardware, which determine bandwidth and latencies of the NUMA
//! interconnect" (Braithwaite et al. [22], §II-D). This module runs those
//! prior measurements as micro-probes on the simulator and returns the
//! parameter sets the other modules consume — closing the loop from
//! machine to model without any hand-typed constants.

use crate::bsp::BspMachine;
use crate::knuma::{KNumaMachine, Level};
use crate::logp::LogPMachine;
use np_simulator::{AllocPolicy, HwEvent, MachineSim, ProgramBuilder, ValidateError};

/// Calibrated machine parameters.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Median local DRAM latency, cycles.
    pub local_latency: f64,
    /// Median one-hop remote DRAM latency, cycles.
    pub remote_latency: f64,
    /// Gap: cycles per byte of streaming DRAM traffic (single thread).
    pub gap_per_byte: f64,
    /// Barrier cost, cycles.
    pub barrier_cost: f64,
}

/// Runs the calibration probes. The probe programs are built against the
/// sim's own topology, so validation failure signals a broken machine
/// config — surfaced as a typed error rather than a panic.
pub fn calibrate(sim: &MachineSim, seed: u64) -> Result<Calibration, ValidateError> {
    let topo = sim.config().topology.clone();
    let page = sim.config().page_bytes;

    // Latency probes: dependent page-strided chases, local and remote.
    let latency_probe = |to_node: usize| -> Result<f64, ValidateError> {
        let mut b = ProgramBuilder::new(&topo, page);
        let buf = b.alloc(8 << 20, AllocPolicy::Bind(to_node));
        let t = b.add_thread(0);
        let pages = (8 << 20) / page;
        for i in 0..600u64 {
            b.load_dependent(t, buf + ((i * 769) % pages) * page);
        }
        let r = sim.run(&b.build(), seed)?;
        // Per-chase latency: cycles dominated by the dependent chain.
        Ok(r.cycles as f64 / 600.0)
    };
    let local_latency = latency_probe(0)?;
    let remote_latency = if topo.nodes > 1 {
        latency_probe(1)?
    } else {
        local_latency
    };

    // Bandwidth probe: one thread streams a large buffer; gap =
    // cycles / bytes.
    let gap_per_byte = {
        let mut b = ProgramBuilder::new(&topo, page);
        let bytes: u64 = 4 << 20;
        let buf = b.alloc(bytes, AllocPolicy::Bind(0));
        let t = b.add_thread(0);
        for i in 0..(bytes / 64) {
            b.load(t, buf + i * 64);
        }
        let r = sim.run(&b.build(), seed)?;
        r.cycles as f64 / bytes as f64
    };

    // Barrier probe: many empty barriers between two threads.
    let barrier_cost = {
        let mut b = ProgramBuilder::new(&topo, page);
        let t0 = b.add_thread(0);
        let t1 = b.add_thread(1);
        for i in 0..200u32 {
            b.barrier(t0, i);
            b.barrier(t1, i);
        }
        let r = sim.run(&b.build(), seed)?;
        r.cycles as f64 / 200.0
    };

    Ok(Calibration {
        local_latency,
        remote_latency,
        gap_per_byte,
        barrier_cost,
    })
}

impl Calibration {
    /// A flat BSP machine from the calibration (word = 8 bytes).
    pub fn bsp(&self, p: u64) -> BspMachine {
        BspMachine {
            p,
            g: self.gap_per_byte * 8.0,
            l: self.barrier_cost,
        }
    }

    /// A LogP machine from the calibration.
    pub fn logp(&self, p: u64) -> LogPMachine {
        LogPMachine {
            l: self.remote_latency,
            o: 10.0,
            g: self.gap_per_byte * 64.0, // per cache line
            p,
        }
    }

    /// A two-level κNUMA machine from the calibration.
    pub fn knuma(&self, cores_per_node: u64, nodes: u64) -> KNumaMachine {
        KNumaMachine {
            levels: vec![
                Level {
                    fanout: cores_per_node,
                    g: self.gap_per_byte * 8.0,
                    l: self.barrier_cost,
                },
                Level {
                    fanout: nodes,
                    g: self.gap_per_byte * 8.0 * (self.remote_latency / self.local_latency),
                    l: self.barrier_cost * 3.0,
                },
            ],
        }
    }
}

/// Extracts [`crate::speedup::CounterInputs`] from a measured run — the
/// counter-to-model bridge.
pub fn speedup_inputs_from_run(r: &np_simulator::RunResult) -> crate::speedup::CounterInputs {
    let local = r.total(HwEvent::LocalDramAccess) as f64;
    let remote = r.total(HwEvent::RemoteDramAccess) as f64;
    crate::speedup::CounterInputs {
        cycles: r.cycles as f64,
        mem_stall_cycles: r.total(HwEvent::MemStallCycles) as f64,
        dram_lines: r.total(HwEvent::ImcRead) as f64,
        remote_fraction: if local + remote > 0.0 {
            remote / (local + remote)
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_simulator::MachineConfig;

    fn quiet() -> MachineSim {
        let mut cfg = MachineConfig::two_socket_small();
        cfg.noise.timer_interval = 0;
        cfg.noise.dram_jitter = 0.0;
        MachineSim::new(cfg)
    }

    #[test]
    fn calibration_recovers_machine_structure() {
        let sim = quiet();
        let c = calibrate(&sim, 1).expect("calibration programs are valid");
        // Dependent chases include the TLB walk (~35 cy) on top of DRAM.
        assert!(
            (230.0..320.0).contains(&c.local_latency),
            "local {}",
            c.local_latency
        );
        assert!(
            c.remote_latency > c.local_latency + 80.0,
            "remote {} local {}",
            c.remote_latency,
            c.local_latency
        );
        assert!(
            c.gap_per_byte > 0.0 && c.gap_per_byte < 2.0,
            "gap {}",
            c.gap_per_byte
        );
        assert!(c.barrier_cost > 0.0 && c.barrier_cost < 10_000.0);
    }

    #[test]
    fn calibrated_models_are_consistent() {
        let sim = quiet();
        let c = calibrate(&sim, 2).expect("calibration programs are valid");
        let bsp = c.bsp(8);
        assert_eq!(bsp.p, 8);
        assert!(bsp.g > 0.0);
        let knuma = c.knuma(4, 2);
        assert_eq!(knuma.processors(), 8);
        // Crossing sockets must be the more expensive level.
        assert!(knuma.levels[1].g > knuma.levels[0].g);
        let logp = c.logp(8);
        assert!(logp.l > 200.0);
    }

    #[test]
    fn speedup_inputs_extracted_from_run() {
        let sim = quiet();
        let mut b = ProgramBuilder::new(&sim.config().topology, 4096);
        let buf = b.alloc(4 << 20, AllocPolicy::Bind(1));
        let t = b.add_thread(0);
        for i in 0..1000u64 {
            b.load(t, buf + i * 4096);
        }
        let r = sim.run(&b.build(), 1).expect("valid program");
        let inputs = speedup_inputs_from_run(&r);
        assert!(inputs.cycles > 0.0);
        assert!(inputs.remote_fraction > 0.99, "all-remote workload");
        assert!(inputs.dram_lines >= 1000.0);
    }
}
