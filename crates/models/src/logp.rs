//! LogP and LogGP cost models (§II-B).
//!
//! "LogP can be seen as the asynchronous counterpart of BSP. Four
//! parameters describe computation among processors: latency L, overhead
//! o, the minimum gap between messages g, and the number of processors P."
//! LogGP adds a per-byte gap `G` for long messages.

/// A LogP machine `(L, o, g, P)`; all times in cycles.
#[derive(Debug, Clone, Copy)]
pub struct LogPMachine {
    /// Network latency.
    pub l: f64,
    /// Send/receive processor overhead.
    pub o: f64,
    /// Minimum gap between consecutive messages of one processor.
    pub g: f64,
    /// Processors.
    pub p: u64,
}

impl LogPMachine {
    /// End-to-end cost of one small message: `o + L + o`.
    pub fn point_to_point(&self) -> f64 {
        2.0 * self.o + self.l
    }

    /// Cost for one processor to send `n` back-to-back messages: the
    /// sender is gated by the gap, the last message still needs `L + o`
    /// to land: `o + (n-1)·max(g, o) + L + o`.
    pub fn send_sequence(&self, n: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.o + (n - 1) as f64 * self.g.max(self.o) + self.l + self.o
    }

    /// Cost of an optimal broadcast tree to all `P` processors: each
    /// informed processor keeps forwarding; the recurrence is evaluated
    /// numerically (the classic LogP broadcast schedule).
    pub fn broadcast(&self) -> f64 {
        // t(k): earliest time k processors are informed. Greedy schedule:
        // every informed processor sends every max(g,o) cycles; a message
        // sent at time s informs its target at s + 2o + L... simulated
        // directly on a small event list.
        let step = self.g.max(self.o);
        let deliver = 2.0 * self.o + self.l;
        // `ready[i]`: when informed processor i can start its next send.
        // Greedy: always dispatch the send that lands earliest.
        let mut ready = vec![0.0f64];
        let mut finish = 0.0f64;
        let mut informed = 1u64;
        while informed < self.p {
            let (best_sender, send_at) = ready
                .iter()
                .copied()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("at least the root is informed");
            let arrives = send_at + step + deliver;
            ready[best_sender] = send_at + step;
            ready.push(arrives);
            finish = finish.max(arrives);
            informed += 1;
        }
        finish
    }
}

/// A LogGP machine: LogP plus per-byte gap `G` for long messages.
#[derive(Debug, Clone, Copy)]
pub struct LogGpMachine {
    /// The short-message parameters.
    pub logp: LogPMachine,
    /// Gap per byte for long messages.
    pub g_big: f64,
}

impl LogGpMachine {
    /// Cost of one `k`-byte message: `o + (k-1)·G + L + o`.
    pub fn long_message(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        2.0 * self.logp.o + (k - 1) as f64 * self.g_big + self.logp.l
    }

    /// Crossover size where one long message beats `k` short ones.
    pub fn batching_crossover(&self) -> u64 {
        // Solve o + (k-1)·max(g,o) + L + o == 2o + (k-1)G + L for k:
        // equal at every k if G == max(g,o); otherwise the long message
        // wins for all k > 1 when G < max(g,o).
        if self.g_big < self.logp.g.max(self.logp.o) {
            2
        } else {
            u64::MAX
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> LogPMachine {
        LogPMachine {
            l: 100.0,
            o: 10.0,
            g: 20.0,
            p: 16,
        }
    }

    #[test]
    fn point_to_point_is_two_overheads_plus_latency() {
        assert_eq!(machine().point_to_point(), 120.0);
    }

    #[test]
    fn send_sequence_gated_by_gap() {
        let m = machine();
        assert_eq!(m.send_sequence(0), 0.0);
        assert_eq!(m.send_sequence(1), 120.0);
        // 5 messages: o + 4g + L + o
        assert_eq!(m.send_sequence(5), 10.0 + 80.0 + 100.0 + 10.0);
    }

    #[test]
    fn broadcast_grows_logarithmically() {
        let m2 = LogPMachine { p: 2, ..machine() };
        let m4 = LogPMachine { p: 4, ..machine() };
        let m16 = LogPMachine { p: 16, ..machine() };
        let b2 = m2.broadcast();
        let b4 = m4.broadcast();
        let b16 = m16.broadcast();
        assert!(b2 < b4 && b4 < b16);
        // Doubling rounds: 16 processors within ~4 rounds, far below the
        // serial bound of 15 sequential sends.
        assert!(b16 < m16.send_sequence(15) + 200.0);
        assert!(b16 < 4.0 * (b2 + 1.0));
    }

    #[test]
    fn long_messages_amortise_overhead() {
        let m = LogGpMachine {
            logp: machine(),
            g_big: 0.5,
        };
        let one_big = m.long_message(1000);
        let many_small = m.logp.send_sequence(1000);
        assert!(one_big < many_small);
        assert_eq!(m.batching_crossover(), 2);
    }

    #[test]
    fn expensive_per_byte_gap_never_amortises() {
        let m = LogGpMachine {
            logp: machine(),
            g_big: 50.0,
        };
        assert_eq!(m.batching_crossover(), u64::MAX);
    }
}
