//! Bulk-synchronous parallel cost model (§II-B).
//!
//! "In BSP, a concurrent section is executed by multiple processors. The
//! processors then wait at a global barrier to resynchronize for
//! communication. … These three steps form a so-called superstep of
//! computation. Performance hereby depends on the slowest processor in
//! terms of execution and the communication phases."
//!
//! The standard cost of a superstep is `max_i w_i + g·h + l`, where `w_i`
//! is processor `i`'s local work, `h` the maximal number of words any
//! processor sends or receives, `g` the gap (inverse bandwidth) and `l`
//! the barrier latency.

/// One BSP superstep description.
#[derive(Debug, Clone)]
pub struct Superstep {
    /// Local work per processor, in cycles.
    pub work: Vec<u64>,
    /// Maximal words sent or received by any processor (the `h` in an
    /// `h`-relation).
    pub h: u64,
}

impl Superstep {
    /// A superstep with uniform work across `p` processors.
    pub fn uniform(p: usize, work: u64, h: u64) -> Self {
        Superstep {
            work: vec![work; p],
            h,
        }
    }

    /// The waiting (load-imbalance) loss of this superstep: the summed gap
    /// to the slowest processor — the paper's "loss of parallelization
    /// potential can be determined by summing up the waiting time".
    pub fn imbalance_loss(&self) -> u64 {
        let max = self.work.iter().copied().max().unwrap_or(0);
        self.work.iter().map(|&w| max - w).sum()
    }
}

/// A BSP machine `(p, g, l)`.
///
/// ```
/// use np_models::bsp::{BspMachine, Superstep};
///
/// let m = BspMachine { p: 4, g: 2.0, l: 100.0 };
/// let step = Superstep::uniform(4, 1000, 32);
/// // max work + g·h + l
/// assert_eq!(m.superstep_cost(&step), 1000.0 + 64.0 + 100.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BspMachine {
    /// Processors.
    pub p: u64,
    /// Gap: cycles per transferred word.
    pub g: f64,
    /// Barrier synchronisation latency in cycles.
    pub l: f64,
}

impl BspMachine {
    /// Cost of one superstep: `max w + g·h + l`.
    pub fn superstep_cost(&self, s: &Superstep) -> f64 {
        let max_w = s.work.iter().copied().max().unwrap_or(0) as f64;
        max_w + self.g * s.h as f64 + self.l
    }

    /// Total cost of a program: the sum over its supersteps.
    pub fn program_cost(&self, steps: &[Superstep]) -> f64 {
        steps.iter().map(|s| self.superstep_cost(s)).sum()
    }

    /// Predicted cost of a block-parallel workload with `work` total
    /// cycles of compute and `words` communicated per superstep boundary,
    /// split into `steps` supersteps.
    pub fn block_parallel_cost(&self, work: u64, words: u64, steps: u64) -> f64 {
        let per_step = Superstep::uniform(
            self.p as usize,
            work / self.p / steps.max(1),
            words / steps.max(1),
        );
        self.superstep_cost(&per_step) * steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superstep_cost_formula() {
        let m = BspMachine {
            p: 4,
            g: 2.0,
            l: 100.0,
        };
        let s = Superstep {
            work: vec![10, 20, 30, 40],
            h: 5,
        };
        assert_eq!(m.superstep_cost(&s), 40.0 + 10.0 + 100.0);
    }

    #[test]
    fn slowest_processor_dominates() {
        let m = BspMachine {
            p: 2,
            g: 0.0,
            l: 0.0,
        };
        let balanced = Superstep {
            work: vec![50, 50],
            h: 0,
        };
        let skewed = Superstep {
            work: vec![1, 99],
            h: 0,
        };
        assert!(m.superstep_cost(&skewed) > m.superstep_cost(&balanced));
        assert_eq!(skewed.imbalance_loss(), 98);
        assert_eq!(balanced.imbalance_loss(), 0);
    }

    #[test]
    fn program_cost_sums_supersteps() {
        let m = BspMachine {
            p: 2,
            g: 1.0,
            l: 10.0,
        };
        let steps = vec![Superstep::uniform(2, 100, 4), Superstep::uniform(2, 50, 2)];
        assert_eq!(
            m.program_cost(&steps),
            (100.0 + 4.0 + 10.0) + (50.0 + 2.0 + 10.0)
        );
    }

    #[test]
    fn more_processors_reduce_block_cost_until_overheads_dominate() {
        let small = BspMachine {
            p: 2,
            g: 1.0,
            l: 500.0,
        };
        let large = BspMachine {
            p: 16,
            g: 1.0,
            l: 500.0,
        };
        let c2 = small.block_parallel_cost(1_000_000, 1000, 4);
        let c16 = large.block_parallel_cost(1_000_000, 1000, 4);
        assert!(c16 < c2);
        // With tiny work, barriers dominate and parallelism stops paying.
        let t2 = small.block_parallel_cost(100, 1000, 4);
        let t16 = large.block_parallel_cost(100, 1000, 4);
        assert!((t16 - t2).abs() < 600.0);
    }
}
