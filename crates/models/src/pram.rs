//! PRAM cost functions with access-semantics variants (§II-A).
//!
//! "PRAM, the most popular model of this era, was later enhanced by
//! modeling its memory read (R) and write (W) properties. The concurrent
//! read/concurrent write (CRCW) PRAM model, for instance, allows all
//! processors to simultaneously access a certain memory cell." The
//! variants differ in how concurrent access to one cell is charged: EREW
//! must serialise it, CREW serialises only writes, CRCW resolves in unit
//! time, and the queued variants (QRQW-style) charge the queue length.

/// PRAM access-semantics variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PramVariant {
    /// Exclusive read, exclusive write: concurrent access serialises.
    Erew,
    /// Concurrent read, exclusive write.
    Crew,
    /// Concurrent read, concurrent write (unit-cost resolution).
    Crcw,
    /// Queued read, queued write: cost equals the access queue length.
    Qrqw,
}

/// A PRAM with `p` processors executing unit-cost instructions in
/// lockstep.
#[derive(Debug, Clone)]
pub struct PramMachine {
    /// Processor count.
    pub p: u64,
    /// Access semantics.
    pub variant: PramVariant,
}

impl PramMachine {
    /// Creates a PRAM.
    pub fn new(p: u64, variant: PramVariant) -> Self {
        assert!(p > 0);
        PramMachine { p, variant }
    }

    /// Cost (time steps) of a computation with `work` total unit
    /// operations and critical-path `depth` — Brent's bound
    /// `depth + (work - depth) / p`, rounded up.
    pub fn brent_cost(&self, work: u64, depth: u64) -> u64 {
        let depth = depth.min(work);
        depth + (work - depth).div_ceil(self.p)
    }

    /// Cost of one *step* in which `accessors` processors touch the same
    /// memory cell (`write` distinguishes read from write semantics).
    pub fn concurrent_access_cost(&self, accessors: u64, write: bool) -> u64 {
        if accessors <= 1 {
            return 1;
        }
        match self.variant {
            PramVariant::Erew => accessors,
            PramVariant::Crew => {
                if write {
                    accessors
                } else {
                    1
                }
            }
            PramVariant::Crcw => 1,
            PramVariant::Qrqw => accessors, // queue length
        }
    }

    /// Cost of a parallel reduction over `n` elements: `ceil(n/p)` local
    /// work plus a `log2` combining tree whose root cell is concurrently
    /// accessed pairwise (exclusive at every step, so all variants agree).
    pub fn reduction_cost(&self, n: u64) -> u64 {
        if n <= 1 {
            return 1;
        }
        n.div_ceil(self.p) + (64 - n.min(self.p).leading_zeros() as u64)
    }

    /// Cost of broadcasting one value to all processors.
    pub fn broadcast_cost(&self) -> u64 {
        match self.variant {
            // Concurrent read: everyone reads the cell in one step.
            PramVariant::Crew | PramVariant::Crcw => 1,
            // Exclusive/queued read: doubling tree or queue drain.
            PramVariant::Erew => (64 - self.p.leading_zeros() as u64).max(1),
            PramVariant::Qrqw => self.p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brent_bound_limits() {
        let m = PramMachine::new(4, PramVariant::Crcw);
        // Fully parallel work, depth 1.
        assert_eq!(m.brent_cost(100, 1), 1 + 25);
        // Serial chain: depth == work.
        assert_eq!(m.brent_cost(100, 100), 100);
        // One processor degenerates to work.
        let s = PramMachine::new(1, PramVariant::Crcw);
        assert_eq!(s.brent_cost(100, 10), 100);
    }

    #[test]
    fn access_semantics_ordering() {
        let acc = 8;
        let erew = PramMachine::new(16, PramVariant::Erew).concurrent_access_cost(acc, false);
        let crew = PramMachine::new(16, PramVariant::Crew).concurrent_access_cost(acc, false);
        let crcw = PramMachine::new(16, PramVariant::Crcw).concurrent_access_cost(acc, true);
        assert_eq!(erew, 8);
        assert_eq!(crew, 1);
        assert_eq!(crcw, 1);
        // CREW writes still serialise.
        assert_eq!(
            PramMachine::new(16, PramVariant::Crew).concurrent_access_cost(acc, true),
            8
        );
    }

    #[test]
    fn single_accessor_is_unit_cost_everywhere() {
        for v in [
            PramVariant::Erew,
            PramVariant::Crew,
            PramVariant::Crcw,
            PramVariant::Qrqw,
        ] {
            assert_eq!(PramMachine::new(8, v).concurrent_access_cost(1, true), 1);
        }
    }

    #[test]
    fn reduction_scales_with_p() {
        let small = PramMachine::new(2, PramVariant::Erew).reduction_cost(1024);
        let large = PramMachine::new(64, PramVariant::Erew).reduction_cost(1024);
        assert!(large < small);
    }

    #[test]
    fn broadcast_depends_on_read_semantics() {
        assert_eq!(PramMachine::new(16, PramVariant::Crcw).broadcast_cost(), 1);
        assert!(PramMachine::new(16, PramVariant::Erew).broadcast_cost() >= 4);
        assert_eq!(PramMachine::new(16, PramVariant::Qrqw).broadcast_cost(), 16);
    }
}
