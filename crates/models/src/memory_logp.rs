//! Memory LogP: caching modelled as message passing between hierarchy
//! levels (§II-C).
//!
//! "There are LogP representations of caching hierarchies, for instance,
//! Memory LogP, where caching is modeled using message passing between the
//! hierarchical cache layers. However, neither access patterns nor cache
//! affinity is considered with Memory LogP." — each level transition is a
//! (l, o, g) channel; the cost of moving `n` bytes from level `k` to the
//! core is the sum of the per-level transfer costs. The *limitation* the
//! paper quotes is deliberately preserved: the model does not look at the
//! access pattern, which is precisely why indicator-driven approaches beat
//! it on strided workloads (see the `models_validation` bench).

/// One hierarchy-level channel (e.g. L2→L1).
#[derive(Debug, Clone, Copy)]
pub struct LevelChannel {
    /// Fixed latency of a transfer on this channel, cycles.
    pub l: f64,
    /// Per-transfer processor overhead, cycles.
    pub o: f64,
    /// Per-byte gap (inverse bandwidth), cycles/byte.
    pub g: f64,
}

/// A memory hierarchy as a stack of channels, innermost first
/// (L1→core, L2→L1, L3→L2, DRAM→L3, remote-DRAM→DRAM…).
#[derive(Debug, Clone)]
pub struct MemoryLogP {
    /// The channels, innermost first.
    pub levels: Vec<LevelChannel>,
}

impl MemoryLogP {
    /// Cost of fetching `bytes` that reside at hierarchy depth `level`
    /// (0 = innermost): the data crosses every channel up to and
    /// including `level`.
    pub fn transfer_cost(&self, level: usize, bytes: u64) -> f64 {
        assert!(level < self.levels.len(), "level {level} out of range");
        self.levels[..=level]
            .iter()
            .map(|c| c.l + c.o + c.g * bytes as f64)
            .sum()
    }

    /// Cost of a workload summarised by per-level hit counts: element `k`
    /// of `hits` is the number of accesses served at depth `k`, each
    /// moving `line_bytes`.
    pub fn workload_cost(&self, hits: &[u64], line_bytes: u64) -> f64 {
        hits.iter()
            .enumerate()
            .map(|(lvl, &n)| n as f64 * self.transfer_cost(lvl, line_bytes))
            .sum()
    }

    /// The default hierarchy matching the simulator's latency preset.
    pub fn simulator_default() -> Self {
        MemoryLogP {
            levels: vec![
                LevelChannel {
                    l: 4.0,
                    o: 0.5,
                    g: 0.05,
                }, // L1 -> core
                LevelChannel {
                    l: 8.0,
                    o: 0.5,
                    g: 0.1,
                }, // L2 -> L1
                LevelChannel {
                    l: 30.0,
                    o: 1.0,
                    g: 0.2,
                }, // L3 -> L2
                LevelChannel {
                    l: 185.0,
                    o: 2.0,
                    g: 0.4,
                }, // DRAM -> L3
                LevelChannel {
                    l: 110.0,
                    o: 2.0,
                    g: 0.6,
                }, // remote hop
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_levels_cost_more() {
        let m = MemoryLogP::simulator_default();
        let mut last = 0.0;
        for lvl in 0..m.levels.len() {
            let c = m.transfer_cost(lvl, 64);
            assert!(c > last, "level {lvl}: {c} <= {last}");
            last = c;
        }
    }

    #[test]
    fn costs_accumulate_across_levels() {
        let m = MemoryLogP {
            levels: vec![
                LevelChannel {
                    l: 1.0,
                    o: 1.0,
                    g: 0.0,
                },
                LevelChannel {
                    l: 10.0,
                    o: 1.0,
                    g: 0.0,
                },
            ],
        };
        assert_eq!(m.transfer_cost(0, 64), 2.0);
        assert_eq!(m.transfer_cost(1, 64), 2.0 + 11.0);
    }

    #[test]
    fn workload_cost_weights_by_hits() {
        let m = MemoryLogP::simulator_default();
        // All-L1 workload far cheaper than all-DRAM.
        let l1 = m.workload_cost(&[1000, 0, 0, 0, 0], 64);
        let dram = m.workload_cost(&[0, 0, 0, 1000, 0], 64);
        assert!(dram > 10.0 * l1);
    }

    #[test]
    fn simulator_default_tracks_simulator_latencies() {
        let m = MemoryLogP::simulator_default();
        // DRAM line fetch should land near the simulator's 230-cycle
        // local-DRAM latency.
        let dram = m.transfer_cost(3, 64);
        assert!((180.0..320.0).contains(&dram), "dram {dram}");
        // Remote adds roughly one hop (~110 cy).
        let remote = m.transfer_cost(4, 64);
        assert!(remote - dram > 80.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_level_panics() {
        MemoryLogP::simulator_default().transfer_cost(99, 64);
    }
}
