//! Online scalability prediction.
//!
//! §II-D cites Cho et al., who "provide an online scalability prediction
//! model for applications on NUMA systems … a prototypical integration of
//! the model into OpenMP and OpenCL runtimes is used to validate the
//! model." The online twist: the prediction must come from a *prefix* of
//! a running execution, so a runtime can pick its thread count without
//! finishing the job first.
//!
//! This module implements that loop on the simulator: a [`PrefixProbe`]
//! snapshots the counters after a configurable number of cycles; the
//! snapshot feeds the same counter-driven model as [`crate::speedup`]
//! (ratios of compute to memory-stall to DRAM traffic are what matter, so
//! a representative prefix predicts the whole run); and
//! [`OnlineScalability::recommend`] returns the thread count a runtime
//! should choose.

use crate::speedup::{CounterInputs, CounterSpeedupModel};
use np_simulator::{Counters, HwEvent, SimObserver};

/// Observer that snapshots cumulative counters at the first timeslice at
/// or beyond `until_cycles` — the "online" measurement window.
pub struct PrefixProbe {
    /// Observation window length, cycles.
    pub until_cycles: u64,
    snapshot: Option<(u64, [u64; HwEvent::COUNT])>,
}

impl PrefixProbe {
    /// Creates a probe with the given window.
    pub fn new(until_cycles: u64) -> Self {
        PrefixProbe {
            until_cycles,
            snapshot: None,
        }
    }

    /// The captured prefix, if a slice boundary was reached.
    pub fn prefix_inputs(&self) -> Option<CounterInputs> {
        let (cycles, totals) = self.snapshot?;
        let local = totals[HwEvent::LocalDramAccess.index()] as f64;
        let remote = totals[HwEvent::RemoteDramAccess.index()] as f64;
        Some(CounterInputs {
            cycles: cycles as f64,
            mem_stall_cycles: totals[HwEvent::MemStallCycles.index()] as f64,
            dram_lines: totals[HwEvent::ImcRead.index()] as f64,
            remote_fraction: if local + remote > 0.0 {
                remote / (local + remote)
            } else {
                0.0
            },
        })
    }
}

impl SimObserver for PrefixProbe {
    fn on_timeslice(&mut self, now: u64, counters: &Counters, _footprint: u64) {
        if self.snapshot.is_none() && now >= self.until_cycles {
            self.snapshot = Some((now, counters.totals()));
        }
    }
}

/// The online predictor.
pub struct OnlineScalability {
    /// The underlying counter-driven model.
    pub model: CounterSpeedupModel,
}

impl OnlineScalability {
    /// Predicted speedups (relative to one thread) for each candidate
    /// thread count, from a prefix measured at thread count `p0`.
    ///
    /// The prefix inputs describe `p0` threads' worth of execution; they
    /// are renormalised to the single-thread equivalent the model expects:
    /// compute and stalls scale by `p0`, DRAM lines are already totals.
    pub fn predict_curve(
        &self,
        prefix: &CounterInputs,
        p0: u64,
        candidates: &[u64],
    ) -> Vec<(u64, f64)> {
        let p0 = p0.max(1) as f64;
        let single = CounterInputs {
            cycles: prefix.cycles * p0,
            mem_stall_cycles: prefix.mem_stall_cycles, // per-core stall time aggregated below
            dram_lines: prefix.dram_lines,
            remote_fraction: prefix.remote_fraction,
        };
        candidates
            .iter()
            .map(|&p| (p, self.model.predict_speedup(&single, p)))
            .collect()
    }

    /// The smallest thread count achieving at least `efficiency_floor`
    /// (e.g. 0.9) of the best predicted speedup — what a runtime should
    /// configure.
    pub fn recommend(
        &self,
        prefix: &CounterInputs,
        p0: u64,
        candidates: &[u64],
        efficiency_floor: f64,
    ) -> u64 {
        let curve = self.predict_curve(prefix, p0, candidates);
        let best = curve.iter().map(|&(_, s)| s).fold(0.0f64, f64::max);
        curve
            .iter()
            .find(|&&(_, s)| s >= efficiency_floor * best)
            .map(|&(p, _)| p)
            .unwrap_or_else(|| candidates.first().copied().unwrap_or(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_simulator::{MachineConfig, MachineSim};
    use np_workloads::stream::StreamTriad;
    use np_workloads::Workload;

    fn sim() -> MachineSim {
        let mut cfg = MachineConfig::two_socket_small();
        cfg.noise.timer_interval = 0;
        cfg.noise.dram_jitter = 0.0;
        MachineSim::new(cfg)
    }

    fn predictor(sim: &MachineSim) -> OnlineScalability {
        OnlineScalability {
            model: CounterSpeedupModel {
                imc_service: sim.config().latency.imc_service as f64,
                remote_penalty: 1.45,
                nodes_used: 1.0,
            },
        }
    }

    #[test]
    fn prefix_probe_captures_a_window() {
        let sim = sim();
        let w = StreamTriad::bound(64 * 1024, 1, 0).build(sim.config());
        let mut probe = PrefixProbe::new(50_000);
        sim.run_observed(&w, 1, &mut probe).expect("valid program");
        let inputs = probe.prefix_inputs().expect("prefix captured");
        assert!(inputs.cycles >= 50_000.0);
        assert!(inputs.dram_lines > 0.0);
    }

    #[test]
    fn prefix_prediction_matches_full_run_prediction() {
        // A steady workload: the prefix is representative.
        let sim = sim();
        let w = StreamTriad::bound(96 * 1024, 1, 0).build(sim.config());
        let mut probe = PrefixProbe::new(80_000);
        let full = sim.run_observed(&w, 1, &mut probe).expect("valid program");
        let prefix = probe.prefix_inputs().unwrap();
        let full_inputs = crate::calibrate::speedup_inputs_from_run(&full);

        let pred = predictor(&sim);
        let from_prefix = pred.predict_curve(&prefix, 1, &[8]);
        let from_full = pred.predict_curve(&full_inputs, 1, &[8]);
        let (a, b) = (from_prefix[0].1, from_full[0].1);
        assert!(
            (a - b).abs() / b < 0.3,
            "prefix {a:.2} vs full {b:.2} predicted speedup"
        );
    }

    #[test]
    fn recommends_few_threads_for_bandwidth_bound_work() {
        let sim = sim();
        let w = StreamTriad::bound(96 * 1024, 1, 0).build(sim.config());
        let mut probe = PrefixProbe::new(80_000);
        sim.run_observed(&w, 1, &mut probe).expect("valid program");
        let prefix = probe.prefix_inputs().unwrap();
        let pred = predictor(&sim);
        let rec = pred.recommend(&prefix, 1, &[1, 2, 4, 8, 16, 32], 0.9);
        assert!(
            rec < 32,
            "bandwidth-bound triad saturates before 32 threads, got {rec}"
        );
        // The curve must saturate: speedup(32) barely above speedup(8).
        let curve = pred.predict_curve(&prefix, 1, &[8, 32]);
        assert!(
            curve[1].1 < 1.3 * curve[0].1,
            "s(8) = {:.2}, s(32) = {:.2}",
            curve[0].1,
            curve[1].1
        );
    }

    #[test]
    fn recommends_many_threads_for_compute_bound_work() {
        let prefix = CounterInputs {
            cycles: 1_000_000.0,
            mem_stall_cycles: 1_000.0,
            dram_lines: 10.0,
            remote_fraction: 0.0,
        };
        let sim = sim();
        let pred = predictor(&sim);
        let rec = pred.recommend(&prefix, 1, &[1, 2, 4, 8, 16], 0.9);
        assert_eq!(
            rec, 16,
            "compute-bound work scales to the largest candidate"
        );
    }

    #[test]
    fn short_runs_yield_no_prefix() {
        let sim = sim();
        let mut b = np_simulator::ProgramBuilder::new(&sim.config().topology, 4096);
        let t = b.add_thread(0);
        b.exec(t, 10);
        let mut probe = PrefixProbe::new(1_000_000);
        sim.run_observed(&b.build(), 1, &mut probe)
            .expect("valid program");
        assert!(probe.prefix_inputs().is_none());
    }
}
