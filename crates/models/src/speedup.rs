//! A counter-driven speedup predictor (Tudor & Teo [25], §II-D).
//!
//! "Tudor et al. propose an analytical model for estimating the speedup of
//! programs on UMA and NUMA multicore systems. The model uses hardware
//! event counters to predict the performance impact of data access
//! policies and thread placement." — this module is that idea on our
//! substrate: it takes a *single-threaded* measurement (cycles split into
//! compute and memory-stall components, plus the remote-access fraction)
//! and predicts multi-threaded runtime, accounting for memory-bandwidth
//! contention at the home node.
//!
//! It is also the bridge between the paper's two themes: the predictor's
//! inputs are exactly the indicators EvSel measures.

/// Inputs extracted from one single-threaded measurement.
#[derive(Debug, Clone, Copy)]
pub struct CounterInputs {
    /// Total cycles of the 1-thread run.
    pub cycles: f64,
    /// Memory-stall cycles within it.
    pub mem_stall_cycles: f64,
    /// DRAM line transfers (demand + prefetch; `ImcRead`).
    pub dram_lines: f64,
    /// Fraction of DRAM accesses that were remote.
    pub remote_fraction: f64,
}

/// The speedup model.
#[derive(Debug, Clone, Copy)]
pub struct CounterSpeedupModel {
    /// Memory-controller service time per line, cycles (the machine's
    /// bandwidth ceiling: `lines/cycle = 1/imc_service` per node).
    pub imc_service: f64,
    /// Remote-access latency multiplier (remote / local latency).
    pub remote_penalty: f64,
    /// Number of memory controllers the workload's pages spread over.
    pub nodes_used: f64,
}

impl CounterSpeedupModel {
    /// Predicted runtime (cycles) with `p` threads.
    ///
    /// Compute scales as `1/p`; memory stalls scale as `1/p` *until* the
    /// aggregate line rate hits the controllers' service ceiling, after
    /// which the memory phase is bandwidth-bound and flat.
    pub fn predict_cycles(&self, inputs: &CounterInputs, p: u64) -> f64 {
        let p = p.max(1) as f64;
        let compute = (inputs.cycles - inputs.mem_stall_cycles).max(0.0) / p;
        // Remote accesses stretch the effective stall time.
        let stall =
            inputs.mem_stall_cycles * (1.0 + inputs.remote_fraction * (self.remote_penalty - 1.0));
        // Bandwidth floor: moving `dram_lines` through `nodes_used`
        // controllers cannot take less than this many cycles.
        let bandwidth_floor = inputs.dram_lines * self.imc_service / self.nodes_used.max(1.0);
        compute + (stall / p).max(bandwidth_floor)
    }

    /// Predicted speedup over the single-threaded run.
    pub fn predict_speedup(&self, inputs: &CounterInputs, p: u64) -> f64 {
        inputs.cycles / self.predict_cycles(inputs, p)
    }

    /// The thread count beyond which the model says bandwidth, not
    /// parallelism, bounds the program.
    pub fn saturation_threads(&self, inputs: &CounterInputs) -> u64 {
        let bandwidth_floor = inputs.dram_lines * self.imc_service / self.nodes_used.max(1.0);
        if bandwidth_floor <= 0.0 {
            return u64::MAX;
        }
        let stall =
            inputs.mem_stall_cycles * (1.0 + inputs.remote_fraction * (self.remote_penalty - 1.0));
        (stall / bandwidth_floor).ceil().max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CounterSpeedupModel {
        CounterSpeedupModel {
            imc_service: 6.0,
            remote_penalty: 1.45,
            nodes_used: 1.0,
        }
    }

    fn cpu_bound() -> CounterInputs {
        CounterInputs {
            cycles: 1_000_000.0,
            mem_stall_cycles: 10_000.0,
            dram_lines: 100.0,
            remote_fraction: 0.0,
        }
    }

    fn memory_bound() -> CounterInputs {
        CounterInputs {
            cycles: 1_000_000.0,
            mem_stall_cycles: 800_000.0,
            dram_lines: 80_000.0,
            remote_fraction: 0.0,
        }
    }

    #[test]
    fn cpu_bound_scales_nearly_linearly() {
        let m = model();
        let s8 = m.predict_speedup(&cpu_bound(), 8);
        assert!(s8 > 7.0, "speedup {s8}");
    }

    #[test]
    fn memory_bound_saturates() {
        let m = model();
        let s2 = m.predict_speedup(&memory_bound(), 2);
        let s16 = m.predict_speedup(&memory_bound(), 16);
        // Grows at first, then flattens at the bandwidth ceiling.
        assert!(s2 > 1.4);
        let s32 = m.predict_speedup(&memory_bound(), 32);
        assert!((s32 - s16).abs() / s16 < 0.15, "s16 {s16} s32 {s32}");
        let sat = m.saturation_threads(&memory_bound());
        assert!(sat < 16, "saturation at {sat}");
    }

    #[test]
    fn remote_fraction_hurts_predicted_runtime() {
        let m = model();
        let local = memory_bound();
        let remote = CounterInputs {
            remote_fraction: 1.0,
            ..local
        };
        // Compare below the bandwidth floor (p small), where the latency
        // penalty is visible; at saturation both are ceiling-bound.
        assert!(m.predict_cycles(&remote, 1) > m.predict_cycles(&local, 1));
    }

    #[test]
    fn more_nodes_raise_the_ceiling() {
        let one = CounterSpeedupModel {
            nodes_used: 1.0,
            ..model()
        };
        let four = CounterSpeedupModel {
            nodes_used: 4.0,
            ..model()
        };
        let s_one = one.predict_speedup(&memory_bound(), 32);
        let s_four = four.predict_speedup(&memory_bound(), 32);
        assert!(
            s_four > 1.5 * s_one,
            "interleaving across nodes must raise the ceiling: {s_one} vs {s_four}"
        );
    }

    #[test]
    fn speedup_at_one_thread_is_one() {
        let m = model();
        let s = m.predict_speedup(&memory_bound(), 1);
        assert!((s - 1.0).abs() < 0.05, "s(1) = {s}");
    }
}
