//! Indicator-to-cost transfer: the machine-portable half of the two-step
//! strategy (§III-B), as a fitted model.
//!
//! The paper's central claim is that hardware performance indicators —
//! unlike code — "relate to costs much more directly", which makes the
//! indicator-to-cost mapping *transferable between machines*: indicators
//! measured (or extrapolated) on machine A can be priced by a cost model
//! fitted from measurements taken on machine B (Fig. 4b's "transfer"
//! arrow). This module is that mapping as a standalone, serializable-free
//! value: fit it from `(indicator vector, cycles)` pairs recorded on the
//! target machine, then evaluate any indicator vector against it.
//!
//! The model is linear least squares: `cost ≈ β₀ + Σ βᵢ · indicatorᵢ`,
//! solved with the QR decomposition. Linearity is the physically-motivated
//! choice — cycle counts decompose additively into per-event penalty
//! contributions (misses × latency etc.). Indicators are often collinear
//! (many events scale identically with workload size — the redundancy
//! §III-B-1 notes), so features are admitted by greedy forward selection:
//! a feature is kept only while the design stays solvable with bounded
//! coefficients and enough observations remain.
//!
//! The fit is **deterministic**: the same training pairs in the same
//! order produce bit-identical coefficients, which is what lets np-serve
//! cache predictions by content digest and lets clients re-derive a
//! server's answer locally to audit it.

use np_simulator::HwEvent;
use std::collections::BTreeMap;

/// A vector of indicator values (per-event means).
pub type Indicators = BTreeMap<HwEvent, f64>;

/// A fitted linear indicator→cost model, transferable across programs
/// whose indicators it has features for.
pub struct TransferModel {
    /// The indicator events used as features, in column order.
    pub features: Vec<HwEvent>,
    /// Coefficients: `[β₀, β₁, …]` (intercept first).
    pub beta: Vec<f64>,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
}

impl TransferModel {
    /// Fits the model from training pairs. Uses the intersection of events
    /// present in every indicator vector as features. Requires more
    /// observations than features; returns `None` otherwise or when the
    /// design is degenerate.
    pub fn fit(pairs: &[(Indicators, f64)]) -> Option<TransferModel> {
        if pairs.len() < 3 {
            return None;
        }
        // Features: events present in every observation.
        let mut features: Vec<HwEvent> = pairs[0].0.keys().copied().collect();
        for (v, _) in pairs.iter().skip(1) {
            features.retain(|e| v.contains_key(e));
        }
        // Drop constant features (no identifiable coefficient).
        features.retain(|e| {
            let first = pairs[0].0[e];
            pairs.iter().any(|(v, _)| (v[e] - first).abs() > 1e-9)
        });
        if features.is_empty() {
            return None;
        }

        let n = pairs.len();
        let build = |feats: &[HwEvent], scales: &[f64]| -> (np_linalg::Matrix, np_linalg::Matrix) {
            let mut x = np_linalg::Matrix::zeros(n, feats.len() + 1);
            let mut y = np_linalg::Matrix::zeros(n, 1);
            for (i, (v, cost)) in pairs.iter().enumerate() {
                x[(i, 0)] = 1.0;
                for (j, e) in feats.iter().enumerate() {
                    x[(i, j + 1)] = v[e] / scales[j];
                }
                y[(i, 0)] = *cost;
            }
            (x, y)
        };
        let scale_of = |e: &HwEvent| -> f64 {
            let m = pairs.iter().map(|(v, _)| v[e].abs()).fold(0.0f64, f64::max);
            if m > 0.0 {
                m
            } else {
                1.0
            }
        };

        // Greedy forward selection: keep a feature only while the design
        // stays solvable and enough observations remain.
        let max_cost = pairs
            .iter()
            .map(|(_, c)| c.abs())
            .fold(0.0f64, f64::max)
            .max(1.0);
        let mut kept: Vec<HwEvent> = Vec::new();
        let mut kept_scales: Vec<f64> = Vec::new();
        for e in features {
            if pairs.len() < kept.len() + 3 {
                break;
            }
            let mut trial = kept.clone();
            let mut trial_scales = kept_scales.clone();
            trial.push(e);
            trial_scales.push(scale_of(&e));
            let (x, y) = build(&trial, &trial_scales);
            match np_linalg::lstsq(&x, &y) {
                // Near-collinear designs pass QR with exploding
                // coefficients; with unit-scaled columns a well-conditioned
                // fit keeps |β| within a few orders of the cost scale.
                Ok(sol)
                    if (0..sol.beta.rows()).all(|i| sol.beta[(i, 0)].abs() < 1e3 * max_cost) =>
                {
                    kept = trial;
                    kept_scales = trial_scales;
                }
                _ => {}
            }
        }
        if kept.is_empty() || pairs.len() < kept.len() + 2 {
            return None;
        }
        let features = kept;
        let scales = kept_scales;
        let k = features.len();
        let (x, y) = build(&features, &scales);
        let sol = np_linalg::lstsq(&x, &y).ok()?;
        let mut beta = vec![sol.beta[(0, 0)]];
        for (j, scale) in scales.iter().enumerate().take(k) {
            beta.push(sol.beta[(j + 1, 0)] / scale);
        }

        // R² on the training data.
        let mean_y: f64 = pairs.iter().map(|(_, c)| c).sum::<f64>() / n as f64;
        let tss: f64 = pairs.iter().map(|(_, c)| (c - mean_y) * (c - mean_y)).sum();
        let r_squared = if tss == 0.0 { 1.0 } else { 1.0 - sol.rss / tss };

        Some(TransferModel {
            features,
            beta,
            r_squared,
        })
    }

    /// Predicts the cost for an indicator vector; `None` when a feature is
    /// missing.
    pub fn predict(&self, indicators: &Indicators) -> Option<f64> {
        let mut cost = self.beta[0];
        for (j, e) in self.features.iter().enumerate() {
            cost += self.beta[j + 1] * indicators.get(e)?;
        }
        Some(cost)
    }

    /// Relative prediction error against a known cost.
    pub fn relative_error(&self, indicators: &Indicators, actual: f64) -> Option<f64> {
        let predicted = self.predict(indicators)?;
        Some((predicted - actual).abs() / actual.abs().max(1e-12))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(pairs: &[(HwEvent, f64)]) -> Indicators {
        pairs.iter().copied().collect::<BTreeMap<_, _>>()
    }

    /// Synthetic machine: cost = 500 + 3·loads + 180·misses, with loads
    /// and misses varied independently so the design has full rank.
    fn training_data() -> Vec<(Indicators, f64)> {
        let mut out = Vec::new();
        for i in 1..6 {
            for j in 1..5 {
                let loads = 900.0 * i as f64;
                let misses = 35.0 * j as f64;
                let cost = 500.0 + 3.0 * loads + 180.0 * misses;
                out.push((
                    vec_of(&[(HwEvent::LoadRetired, loads), (HwEvent::L1dMiss, misses)]),
                    cost,
                ));
            }
        }
        out
    }

    #[test]
    fn recovers_the_cost_structure_exactly() {
        let m = TransferModel::fit(&training_data()).unwrap();
        assert!(m.r_squared > 0.999, "R² {}", m.r_squared);
        let probe = vec_of(&[(HwEvent::LoadRetired, 7_777.0), (HwEvent::L1dMiss, 55.0)]);
        let expected = 500.0 + 3.0 * 7_777.0 + 180.0 * 55.0;
        let got = m.predict(&probe).unwrap();
        assert!(
            (got - expected).abs() / expected < 1e-6,
            "{got} vs {expected}"
        );
    }

    #[test]
    fn fit_is_deterministic() {
        let data = training_data();
        let a = TransferModel::fit(&data).unwrap();
        let b = TransferModel::fit(&data).unwrap();
        assert_eq!(a.features, b.features);
        assert_eq!(a.beta, b.beta, "same pairs must give bit-identical β");
        assert_eq!(a.r_squared, b.r_squared);
    }

    #[test]
    fn transfer_prices_foreign_indicators() {
        // Fit on "machine B" training data, evaluate indicators that were
        // never part of the fit — the Fig. 4b transfer arrow.
        let m = TransferModel::fit(&training_data()).unwrap();
        let foreign = vec_of(&[(HwEvent::LoadRetired, 123.0), (HwEvent::L1dMiss, 321.0)]);
        let err = m
            .relative_error(&foreign, 500.0 + 3.0 * 123.0 + 180.0 * 321.0)
            .unwrap();
        assert!(err < 1e-6, "transfer error {err}");
    }

    #[test]
    fn missing_feature_fails_prediction() {
        let m = TransferModel::fit(&training_data()).unwrap();
        assert!(m
            .predict(&vec_of(&[(HwEvent::LoadRetired, 10.0)]))
            .is_none());
    }

    #[test]
    fn too_little_data_rejected() {
        let data = training_data().into_iter().take(2).collect::<Vec<_>>();
        assert!(TransferModel::fit(&data).is_none());
    }
}
