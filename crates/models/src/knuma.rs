//! κNUMA: a κ-deep tree of BSP machines (§II-D, Fig. 3).
//!
//! "Schmollinger and Kaufman propose a model named κNUMA, which is aimed
//! at clusters and SMP machines. The model builds on top of the concept of
//! communication in BSP, extending it through submachine functionality.
//! κNUMA can be thought of as a κ-deep tree hierarchy of processors. The
//! authors present a cost function that integrates sub-processor
//! communication costs into global superstep costs."
//!
//! Level 0 is the innermost machine (cores sharing a cache/socket); each
//! outer level wraps `fanout` copies of the previous one with its own
//! (g, l) parameters. A κNUMA superstep at level `k` costs the inner
//! superstep plus the communication and synchronisation terms of every
//! level up to `k` — inner-node communication is cheap, inter-node
//! communication pays the outer gaps.

/// Per-level BSP parameters of the tree.
#[derive(Debug, Clone, Copy)]
pub struct Level {
    /// Submachines (or cores, at level 0) grouped at this level.
    pub fanout: u64,
    /// Gap (cycles/word) for communication crossing this level.
    pub g: f64,
    /// Barrier latency for synchronising this level.
    pub l: f64,
}

/// A κNUMA machine: `levels.len()` = κ.
#[derive(Debug, Clone)]
pub struct KNumaMachine {
    /// Tree levels, innermost first.
    pub levels: Vec<Level>,
}

impl KNumaMachine {
    /// Total processor count: the product of fanouts.
    pub fn processors(&self) -> u64 {
        self.levels.iter().map(|l| l.fanout).product()
    }

    /// Tree depth κ.
    pub fn kappa(&self) -> usize {
        self.levels.len()
    }

    /// Cost of a superstep with `work` max local work and `h[k]` words
    /// crossing level `k` per processor. Communication confined to inner
    /// levels never pays outer gaps — the submachine locality that
    /// distinguishes κNUMA from flat BSP.
    pub fn superstep_cost(&self, work: f64, h: &[u64]) -> f64 {
        assert_eq!(h.len(), self.levels.len(), "one h-relation per level");
        work + self
            .levels
            .iter()
            .zip(h)
            .map(|(lvl, &hk)| {
                if hk > 0 {
                    lvl.g * hk as f64 + lvl.l
                } else {
                    0.0
                }
            })
            .sum::<f64>()
    }

    /// Cost of the same communication volume on a *flat* BSP machine that
    /// charges everything at the outermost level — the baseline κNUMA
    /// improves on.
    pub fn flat_bsp_cost(&self, work: f64, h: &[u64]) -> f64 {
        let outer = self.levels.last().expect("at least one level");
        let total_h: u64 = h.iter().sum();
        let sync: f64 = if total_h > 0 { outer.l } else { 0.0 };
        work + outer.g * total_h as f64 + sync
    }

    /// A κ=2 machine matching the simulator's DL580 preset: 18 cores per
    /// socket sharing an L3, four fully-interconnected sockets.
    pub fn dl580_like() -> Self {
        KNumaMachine {
            levels: vec![
                Level {
                    fanout: 18,
                    g: 0.3,
                    l: 120.0,
                }, // within a socket
                Level {
                    fanout: 4,
                    g: 1.8,
                    l: 900.0,
                }, // across sockets
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_count_is_fanout_product() {
        let m = KNumaMachine::dl580_like();
        assert_eq!(m.processors(), 72);
        assert_eq!(m.kappa(), 2);
    }

    #[test]
    fn inner_communication_cheaper_than_outer() {
        let m = KNumaMachine::dl580_like();
        let inner = m.superstep_cost(1000.0, &[64, 0]);
        let outer = m.superstep_cost(1000.0, &[0, 64]);
        assert!(inner < outer, "inner {inner} vs outer {outer}");
    }

    #[test]
    fn hierarchy_beats_flat_bsp_for_local_traffic() {
        let m = KNumaMachine::dl580_like();
        // Mostly socket-local traffic.
        let h = [1000, 10];
        let knuma = m.superstep_cost(500.0, &h);
        let flat = m.flat_bsp_cost(500.0, &h);
        assert!(knuma < flat, "knuma {knuma} vs flat {flat}");
    }

    #[test]
    fn all_remote_traffic_converges_to_flat() {
        let m = KNumaMachine::dl580_like();
        let h = [0, 500];
        let knuma = m.superstep_cost(100.0, &h);
        let flat = m.flat_bsp_cost(100.0, &h);
        assert!((knuma - flat).abs() < 1e-9);
    }

    #[test]
    fn zero_communication_costs_no_sync() {
        let m = KNumaMachine::dl580_like();
        assert_eq!(m.superstep_cost(42.0, &[0, 0]), 42.0);
    }

    #[test]
    #[should_panic(expected = "one h-relation per level")]
    fn mismatched_h_rejected() {
        KNumaMachine::dl580_like().superstep_cost(1.0, &[1]);
    }
}
