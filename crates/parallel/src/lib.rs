//! # np-parallel — deterministic fork-join execution
//!
//! The paper's code-to-indicator step is built from repeated,
//! identically-configured simulation runs (EvSel batches), per-threshold
//! PEBS passes (Memhist) and exhaustive window scans (Phasenprüfer) — all
//! embarrassingly parallel, and all feeding Welch t-tests and regressions
//! that must not change when the host grows cores. This crate supplies the
//! execution spine for that fan-out with one non-negotiable contract:
//!
//! **Determinism.** A [`Pool`] splits `0..items` into contiguous chunks
//! ([`Chunker`]), hands them to scoped `std::thread` workers through a
//! [`BoundedQueue`], and merges every result back **in submission order**.
//! The merged output is bit-identical for any thread count, any chunk
//! size, and any interleaving — the schedule can only change *when* a
//! chunk runs, never *where* its results land.
//!
//! **Panic propagation.** A worker panic is caught per item; [`Pool::run`]
//! re-raises the earliest one (by item index) on the caller, while
//! [`Pool::try_run`] converts it into a typed [`PoolError`] without
//! poisoning anything — the pool is per-call scoped state and stays
//! reusable.
//!
//! **Schedule record/replay.** Every run records its dequeue interleaving
//! as a [`Trace`]; a [`Schedule`] can replay a trace exactly (a mutex +
//! condvar turnstile serialises queue acquisition in the recorded order)
//! or generate a seeded pseudo-random order — the test harness for "a
//! delayed task never reorders merged output".
//!
//! **Telemetry.** Per-pool counters `par.tasks` (chunks executed),
//! `par.steal` (chunks taken beyond a worker's fair share) and the
//! `par.idle_ns` histogram (time spent waiting at the queue) land in the
//! np-telemetry registry when it is enabled.
//!
//! The crate is zero-dependency (np-telemetry only) and — like the
//! simulator — lint-confined: no wall clocks (`no-wall-clock`), no
//! `Ordering::Relaxed` (`relaxed-ordering`).

pub mod chunk;
pub mod pool;
pub mod queue;
pub mod schedule;

pub use chunk::{auto_chunk_size, Chunker, TARGET_CHUNK_NS};
pub use pool::{modeled_makespan_ns, ChunkProfile, Pool, PoolConfig, PoolError, RunReport};
pub use queue::{BoundedQueue, QueueStats};
pub use schedule::{Schedule, Step, Trace};
