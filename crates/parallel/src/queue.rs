//! A bounded MPMC queue with an optional schedule turnstile.
//!
//! The pool feeds chunk indices through a [`BoundedQueue`]: the producer
//! blocks when `capacity` items are in flight, consumers block when the
//! queue is empty, and [`BoundedQueue::close`] lets consumers drain what
//! remains and then observe end-of-work (`pop` → `None`). Everything is a
//! single mutex + condvar — no atomics, so the workspace `relaxed-ordering`
//! lint has nothing to even look at.
//!
//! The turnstile is how schedules become enforceable: when a worker order
//! is installed, the `s`-th successful `pop` is only granted to the worker
//! the order names for step `s`. Any recorded order is feasible (every
//! worker loops on `pop` until the queue reports end-of-work), so replay
//! cannot deadlock. Each grant is recorded as a [`Step`], which is the
//! trace the pool hands back for replay.

use crate::schedule::Step;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
    /// Successful pops so far (the step counter of the turnstile).
    seq: usize,
    /// Worker granted each step; free-for-all past the end or when `None`.
    order: Option<Vec<usize>>,
    /// The recorded interleaving.
    steps: Vec<Step>,
}

/// Bounded multi-producer/multi-consumer queue; see the module docs.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to at least 1),
    /// with no turnstile.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue::with_order(capacity, None)
    }

    /// A queue whose `s`-th pop is reserved for worker `order[s]`.
    pub fn with_order(capacity: usize, order: Option<Vec<usize>>) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
                seq: 0,
                order,
                steps: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Returns `false`
    /// (dropping the item) if the queue was closed.
    pub fn push(&self, item: T) -> bool {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.closed {
                return false;
            }
            if st.items.len() < st.capacity {
                st.items.push_back(item);
                self.cv.notify_all();
                return true;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Dequeues the next item for `worker`, blocking while the queue is
    /// empty or the turnstile has reserved the next step for somebody
    /// else. Returns `None` once the queue is closed *and* drained — the
    /// shutdown contract: close never discards queued work.
    pub fn pop(&self, worker: usize) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            let my_turn = match &st.order {
                Some(order) => order.get(st.seq).is_none_or(|&w| w == worker),
                None => true,
            };
            if my_turn {
                if let Some(item) = st.items.pop_front() {
                    let chunk = st.seq;
                    st.steps.push(Step { worker, chunk });
                    st.seq += 1;
                    self.cv.notify_all();
                    return Some(item);
                }
                if st.closed {
                    return None;
                }
            } else if st.closed && st.items.is_empty() {
                return None;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Closes the queue: producers fail fast, consumers drain and exit.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        self.cv.notify_all();
    }

    /// Items currently queued (racy by nature; for tests/diagnostics).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether the queue holds no items right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes the recorded interleaving (the `s`-th entry is the worker
    /// that won step `s`).
    pub fn take_steps(&self) -> Vec<Step> {
        std::mem::take(&mut self.state.lock().unwrap().steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_consumer() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            assert!(q.push(i));
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop(0)).collect();
        assert_eq!(drained, vec![0, 1, 2, 3]);
    }

    #[test]
    fn close_drains_queued_work_then_signals_end() {
        let q = Arc::new(BoundedQueue::new(8));
        for i in 0..5 {
            q.push(i);
        }
        q.close();
        // All five queued items survive the close; only then end-of-work.
        assert_eq!(q.len(), 5);
        let mut got = Vec::new();
        while let Some(v) = q.pop(0) {
            got.push(v);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
        // Pushing after close reports failure instead of blocking.
        assert!(!q.push(99));
    }

    #[test]
    fn capacity_blocks_producer_until_a_pop() {
        let q = Arc::new(BoundedQueue::new(2));
        assert!(q.push(1));
        assert!(q.push(2));
        let qp = Arc::clone(&q);
        let producer = std::thread::spawn(move || qp.push(3));
        // The producer can only finish once a slot frees up.
        assert_eq!(q.pop(0), Some(1));
        assert!(producer.join().unwrap());
        q.close();
        assert_eq!(q.pop(0), Some(2));
        assert_eq!(q.pop(0), Some(3));
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn turnstile_grants_steps_in_the_installed_order() {
        let q = Arc::new(BoundedQueue::with_order(8, Some(vec![1, 0, 1])));
        for i in 0..3 {
            q.push(i);
        }
        q.close();
        let q0 = Arc::clone(&q);
        let w0 = std::thread::spawn(move || std::iter::from_fn(|| q0.pop(0)).count());
        let q1 = Arc::clone(&q);
        let w1 = std::thread::spawn(move || std::iter::from_fn(|| q1.pop(1)).count());
        assert_eq!(w0.join().unwrap() + w1.join().unwrap(), 3);
        let steps: Vec<usize> = q.take_steps().iter().map(|s| s.worker).collect();
        assert_eq!(steps, vec![1, 0, 1]);
    }

    #[test]
    fn steps_record_chunk_sequence() {
        let q = BoundedQueue::new(4);
        q.push("a");
        q.push("b");
        q.close();
        q.pop(7);
        q.pop(7);
        let steps = q.take_steps();
        assert_eq!(steps.len(), 2);
        assert_eq!((steps[0].worker, steps[0].chunk), (7, 0));
        assert_eq!((steps[1].worker, steps[1].chunk), (7, 1));
    }
}
