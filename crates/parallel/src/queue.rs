//! A bounded MPMC queue with an optional schedule turnstile.
//!
//! The pool feeds chunk indices through a [`BoundedQueue`]: the producer
//! blocks when `capacity` items are in flight, consumers block when the
//! queue is empty, and [`BoundedQueue::close`] lets consumers drain what
//! remains and then observe end-of-work (`pop` → `None`). Everything is a
//! single mutex + two condvars — no atomics, so the workspace
//! `relaxed-ordering` lint has nothing to even look at.
//!
//! The two condvars (`not_empty` for consumers, `not_full` for the
//! producer) replace an earlier single-condvar design whose every push
//! and pop `notify_all`'d all parties — the wakeup storm the roadmap
//! flagged: N-1 workers woke, found either no item or somebody else's
//! turn, and went straight back to sleep. Without a turnstile a push now
//! wakes exactly one consumer and a pop exactly the producer. With a
//! turnstile installed, pops still `notify_all` consumers — the grant
//! names one specific worker and `notify_one` could wake the wrong one
//! and strand the schedule. Lock poisoning is recovered everywhere
//! (`unwrap_or_else(|p| p.into_inner())`, the serve-crate idiom): queue
//! state is a `VecDeque` plus counters, consistent at every await point,
//! and a panicked worker must not cascade into aborting the whole
//! measurement campaign.
//!
//! The turnstile is how schedules become enforceable: when a worker order
//! is installed, the `s`-th successful `pop` is only granted to the worker
//! the order names for step `s`. Any recorded order is feasible (every
//! worker loops on `pop` until the queue reports end-of-work), so replay
//! cannot deadlock. Each grant is recorded as a [`Step`], which is the
//! trace the pool hands back for replay.

use crate::schedule::Step;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

struct State<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
    /// Successful pops so far (the step counter of the turnstile).
    seq: usize,
    /// Worker granted each step; free-for-all past the end or when `None`.
    order: Option<Vec<usize>>,
    /// The recorded interleaving.
    steps: Vec<Step>,
    /// Counted traffic and blocking — see [`QueueStats`].
    stats: QueueStats,
}

/// Counted queue traffic: how many items moved through and how many times
/// either side had to block for them. Counts, not wall-clock — so tests
/// can assert on contention shape (a wakeup storm means consumers loop
/// through `wait` far more often than items exist) without any timing
/// flakiness. One `wait` call is one count, whether it slept or not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Items successfully enqueued.
    pub pushes: u64,
    /// Items successfully dequeued.
    pub pops: u64,
    /// Times a consumer blocked in `pop` (queue empty, or a turnstile
    /// grant named somebody else).
    pub consumer_waits: u64,
    /// Times the producer blocked in `push` (queue at capacity).
    pub producer_waits: u64,
}

/// Bounded multi-producer/multi-consumer queue; see the module docs.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    /// Signalled when an item arrives, the queue closes, or (under a
    /// turnstile) the step sequence advances.
    not_empty: Condvar,
    /// Signalled when a slot frees up or the queue closes.
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to at least 1),
    /// with no turnstile.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue::with_order(capacity, None)
    }

    /// A queue whose `s`-th pop is reserved for worker `order[s]`.
    pub fn with_order(capacity: usize, order: Option<Vec<usize>>) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
                seq: 0,
                order,
                steps: Vec::new(),
                stats: QueueStats::default(),
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// The state mutex with poison recovery: a consumer that panicked in
    /// user code never held the lock across an inconsistent state, so
    /// the queue keeps serving the surviving workers.
    fn locked(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Signals item arrival (or a turnstile step advance) to consumers.
    /// One waiter suffices in free-for-all mode; a turnstile grant names
    /// a specific worker, so everyone must look. Takes the guard, not the
    /// state, so a caller cannot notify without holding the lock.
    fn signal_consumers(&self, st: &MutexGuard<'_, State<T>>) {
        if st.order.is_some() {
            self.not_empty.notify_all();
        } else {
            self.not_empty.notify_one();
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Returns `false`
    /// (dropping the item) if the queue was closed.
    pub fn push(&self, item: T) -> bool {
        let mut st = self.locked();
        loop {
            if st.closed {
                return false;
            }
            if st.items.len() < st.capacity {
                st.items.push_back(item);
                st.stats.pushes += 1;
                self.signal_consumers(&st);
                return true;
            }
            st.stats.producer_waits += 1;
            st = self.not_full.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Dequeues the next item for `worker`, blocking while the queue is
    /// empty or the turnstile has reserved the next step for somebody
    /// else. Returns `None` once the queue is closed *and* drained — the
    /// shutdown contract: close never discards queued work.
    pub fn pop(&self, worker: usize) -> Option<T> {
        let mut st = self.locked();
        loop {
            let my_turn = match &st.order {
                Some(order) => order.get(st.seq).is_none_or(|&w| w == worker),
                None => true,
            };
            if my_turn {
                if let Some(item) = st.items.pop_front() {
                    let chunk = st.seq;
                    st.steps.push(Step { worker, chunk });
                    st.seq += 1;
                    st.stats.pops += 1;
                    // A slot freed for the producer; under a turnstile the
                    // advanced seq also changes whose turn it is, so the
                    // other consumers must re-check.
                    self.not_full.notify_one();
                    if st.order.is_some() {
                        self.not_empty.notify_all();
                    }
                    return Some(item);
                }
                if st.closed {
                    return None;
                }
            } else if st.closed && st.items.is_empty() {
                return None;
            }
            st.stats.consumer_waits += 1;
            st = self.not_empty.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes the queue: producers fail fast, consumers drain and exit.
    pub fn close(&self) {
        let mut st = self.locked();
        st.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued (racy by nature; for tests/diagnostics).
    pub fn len(&self) -> usize {
        self.locked().items.len()
    }

    /// Whether the queue holds no items right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes the recorded interleaving (the `s`-th entry is the worker
    /// that won step `s`).
    pub fn take_steps(&self) -> Vec<Step> {
        std::mem::take(&mut self.locked().steps)
    }

    /// A snapshot of the counted traffic so far.
    pub fn stats(&self) -> QueueStats {
        self.locked().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_consumer() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            assert!(q.push(i));
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop(0)).collect();
        assert_eq!(drained, vec![0, 1, 2, 3]);
    }

    #[test]
    fn close_drains_queued_work_then_signals_end() {
        let q = Arc::new(BoundedQueue::new(8));
        for i in 0..5 {
            q.push(i);
        }
        q.close();
        // All five queued items survive the close; only then end-of-work.
        assert_eq!(q.len(), 5);
        let mut got = Vec::new();
        while let Some(v) = q.pop(0) {
            got.push(v);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
        // Pushing after close reports failure instead of blocking.
        assert!(!q.push(99));
    }

    #[test]
    fn capacity_blocks_producer_until_a_pop() {
        let q = Arc::new(BoundedQueue::new(2));
        assert!(q.push(1));
        assert!(q.push(2));
        let qp = Arc::clone(&q);
        let producer = std::thread::spawn(move || qp.push(3));
        // The producer can only finish once a slot frees up.
        assert_eq!(q.pop(0), Some(1));
        assert!(producer.join().unwrap());
        q.close();
        assert_eq!(q.pop(0), Some(2));
        assert_eq!(q.pop(0), Some(3));
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn turnstile_grants_steps_in_the_installed_order() {
        let q = Arc::new(BoundedQueue::with_order(8, Some(vec![1, 0, 1])));
        for i in 0..3 {
            q.push(i);
        }
        q.close();
        let q0 = Arc::clone(&q);
        let w0 = std::thread::spawn(move || std::iter::from_fn(|| q0.pop(0)).count());
        let q1 = Arc::clone(&q);
        let w1 = std::thread::spawn(move || std::iter::from_fn(|| q1.pop(1)).count());
        assert_eq!(w0.join().unwrap() + w1.join().unwrap(), 3);
        let steps: Vec<usize> = q.take_steps().iter().map(|s| s.worker).collect();
        assert_eq!(steps, vec![1, 0, 1]);
    }

    #[test]
    fn poisoned_lock_recovers_and_the_queue_keeps_serving() {
        // Regression for the poison-recovery audit fix: a thread that
        // panics while holding the state mutex poisons it, and every
        // subsequent `.lock().unwrap()` would have cascaded that panic
        // into the surviving workers. `unwrap_or_else(into_inner)` keeps
        // the queue serving instead.
        let q = Arc::new(BoundedQueue::new(4));
        q.push(1);
        let qp = Arc::clone(&q);
        std::thread::spawn(move || {
            let _g = qp.state.lock().unwrap();
            panic!("poison the queue mutex");
        })
        .join()
        .unwrap_err();
        assert!(q.state.is_poisoned());
        assert!(q.push(2), "push survives the poisoned lock");
        assert_eq!(q.pop(0), Some(1), "pop survives the poisoned lock");
        assert_eq!(q.pop(0), Some(2));
        q.close();
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn single_notify_never_strands_a_consumer() {
        // Regression for the wakeup-storm redesign: push wakes exactly one
        // consumer (`notify_one`) in free-for-all mode. If that ever lost
        // a wakeup — woke a consumer that could not make progress while a
        // hungry one slept — this drain would hang rather than complete.
        const ITEMS: usize = 256;
        let q = Arc::new(BoundedQueue::new(2));
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let qc = Arc::clone(&q);
                std::thread::spawn(move || std::iter::from_fn(|| qc.pop(w)).count())
            })
            .collect();
        for i in 0..ITEMS {
            assert!(q.push(i));
        }
        q.close();
        let drained: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(drained, ITEMS, "every queued item reaches some consumer");
    }

    #[test]
    fn stats_count_traffic_and_blocking() {
        let q = Arc::new(BoundedQueue::new(1));
        assert!(q.push(10));
        let qp = Arc::clone(&q);
        // Queue is at capacity, so this push must block at least once.
        let producer = std::thread::spawn(move || qp.push(20));
        assert_eq!(q.pop(0), Some(10));
        assert!(producer.join().unwrap());
        q.close();
        assert_eq!(q.pop(0), Some(20));
        // Drained + closed: this pop returns None without waiting.
        assert_eq!(q.pop(0), None);
        let stats = q.stats();
        assert_eq!(stats.pushes, 2);
        assert_eq!(stats.pops, 2);
        assert!(stats.producer_waits >= 1, "{stats:?}");
    }

    #[test]
    fn steps_record_chunk_sequence() {
        let q = BoundedQueue::new(4);
        q.push("a");
        q.push("b");
        q.close();
        q.pop(7);
        q.pop(7);
        let steps = q.take_steps();
        assert_eq!(steps.len(), 2);
        assert_eq!((steps[0].worker, steps[0].chunk), (7, 0));
        assert_eq!((steps[1].worker, steps[1].chunk), (7, 1));
    }
}
