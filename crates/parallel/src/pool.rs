//! The scoped worker pool.
//!
//! One [`Pool::run`] call is one fork-join region: the caller thread
//! feeds chunk indices through a [`BoundedQueue`], `threads` scoped
//! workers pull, execute, and deposit `(chunk, results)` pairs; the
//! caller merges the deposits **by chunk index** — which is submission
//! order — so the output vector is bit-identical to a sequential loop no
//! matter how the chunks interleaved. There is no long-lived state: the
//! pool owns only configuration, so a panicked run poisons nothing and
//! the same pool value is immediately reusable.
//!
//! Timing inside the pool goes through `np_telemetry::now_ns` (the
//! facade's monotonic anchor) — `Instant::now()` is lint-forbidden in
//! this crate so the deterministic-output contract is mechanically
//! checkable: nothing in here can branch on a wall clock.

use crate::chunk::{auto_chunk_size, Chunker, TARGET_CHUNK_NS};
use crate::queue::{BoundedQueue, QueueStats};
use crate::schedule::{Schedule, Step, Trace};
use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Fixed chunk size; `None` lets a free-schedule run size chunks
    /// adaptively from the measured per-item cost (other schedules fall
    /// back to [`Chunker::balanced`], whose geometry is reproducible).
    pub chunk_size: Option<usize>,
    /// Bounded-queue capacity: chunk indices in flight between the
    /// submitting thread and the workers.
    pub queue_capacity: usize,
    /// Target useful work per adaptive chunk, nanoseconds; defaults to
    /// [`TARGET_CHUNK_NS`]. Only consulted when `chunk_size` is `None`
    /// under a free schedule.
    pub target_chunk_ns: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            chunk_size: None,
            queue_capacity: 32,
            target_chunk_ns: TARGET_CHUNK_NS,
        }
    }
}

/// A typed execution failure, surfaced by [`Pool::try_run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A worker panicked while executing the item at `index`.
    Panic {
        /// The item whose closure panicked (earliest across the run).
        index: usize,
        /// The panic payload, rendered when it was a string.
        message: String,
    },
    /// The task closure returned an error for the item at `index`.
    Task {
        /// The failing item (earliest across the run).
        index: usize,
        /// The closure's error.
        message: String,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Panic { index, message } => {
                write!(f, "worker panicked on item {index}: {message}")
            }
            PoolError::Task { index, message } => {
                write!(f, "task failed on item {index}: {message}")
            }
        }
    }
}

/// Everything one pool run produces besides the merged results.
#[derive(Debug)]
pub struct RunReport<U> {
    /// Results, merged in submission order.
    pub results: Vec<U>,
    /// The recorded interleaving (replayable via [`Schedule::Replay`]).
    pub trace: Trace,
    /// Execution time of each chunk, nanoseconds, indexed by chunk.
    pub chunk_ns: Vec<u64>,
    /// Per-chunk worker attribution and timing, indexed by chunk — the
    /// raw material of the `np report` worker timeline. Timestamps are
    /// `np_telemetry::now_ns` (monotonic, process-epoch), so gaps between
    /// one worker's chunks are real idle/queue-wait time.
    pub profile: Vec<ChunkProfile>,
    /// Counted queue traffic for the run: items moved and times either
    /// side blocked. Counts, not wall-clock, so overhead regressions
    /// (wakeup storms, serialisation) are assertable without timing
    /// flakiness. All zero on the inline single-worker fast path, which
    /// has no queue at all.
    pub queue: QueueStats,
}

/// When and where one chunk ran: which worker took it, how long that
/// worker sat in `queue.pop` beforehand, and the chunk's execution
/// window. This is what explains a measured slowdown that per-chunk
/// durations alone cannot: contention shows up as wait, imbalance as
/// trailing idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkProfile {
    /// Chunk index (submission order).
    pub chunk: usize,
    /// Worker that executed the chunk.
    pub worker: usize,
    /// Nanoseconds the worker blocked on the queue before this chunk.
    pub wait_ns: u64,
    /// Chunk execution start, monotonic ns.
    pub start_ns: u64,
    /// Chunk execution end, monotonic ns.
    pub end_ns: u64,
}

/// What actually went wrong inside a worker, pre-merge. The panic payload
/// is kept intact so [`Pool::run`] can re-raise it unchanged.
enum Failure {
    Panic {
        index: usize,
        payload: Box<dyn Any + Send>,
    },
    Task {
        index: usize,
        message: String,
    },
}

impl Failure {
    fn index(&self) -> usize {
        match self {
            Failure::Panic { index, .. } | Failure::Task { index, .. } => *index,
        }
    }

    fn into_error(self) -> PoolError {
        match self {
            Failure::Panic { index, payload } => PoolError::Panic {
                index,
                message: panic_message(payload.as_ref()),
            },
            Failure::Task { index, message } => PoolError::Task { index, message },
        }
    }

    /// The payload `resume_unwind` re-raises on the caller thread. A task
    /// failure cannot occur under an infallible closure, but mapping it to
    /// a string payload keeps the propagation total — no unreachable arm
    /// to assert over.
    fn into_panic_payload(self) -> Box<dyn Any + Send> {
        match self {
            Failure::Panic { payload, .. } => payload,
            Failure::Task { index, message } => {
                Box::new(format!("infallible task failed on item {index}: {message}"))
            }
        }
    }
}

/// One executed chunk: its per-item results (or the failure that stopped
/// it) plus the timing/attribution profile.
type Deposit<U> = (Result<Vec<U>, Failure>, ChunkProfile);

/// Everything [`Pool::execute`] produces; [`RunReport`] is its public
/// face minus the typed failure.
struct Execution<U> {
    outcome: Result<Vec<U>, Failure>,
    trace: Trace,
    chunk_ns: Vec<u64>,
    profile: Vec<ChunkProfile>,
    queue: QueueStats,
}

/// Measured cost fed back from workers to the adaptive producer:
/// `(items attempted, execution ns)` accumulated over finished chunks.
/// The producer waits on `ready` until the first chunk lands, then sizes
/// every subsequent chunk from the running average — measurement instead
/// of guesswork, at the price of a handful of size-1 probe chunks.
struct CostFeedback {
    done: Mutex<(u64, u64)>,
    ready: Condvar,
}

/// Renders a panic payload the way the default hook would.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The deterministic fork-join worker pool. See the module docs.
#[derive(Debug, Clone)]
pub struct Pool {
    config: PoolConfig,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::with_config(PoolConfig::default())
    }
}

impl Pool {
    /// A pool with `threads` workers and default chunking/queueing.
    pub fn new(threads: usize) -> Pool {
        Pool::with_config(PoolConfig {
            threads,
            ..PoolConfig::default()
        })
    }

    /// A pool with explicit configuration.
    pub fn with_config(config: PoolConfig) -> Pool {
        Pool { config }
    }

    /// The effective worker count.
    pub fn threads(&self) -> usize {
        self.config.threads.max(1)
    }

    /// Runs `f` over `0..items`, returning results in index order.
    /// A worker panic is re-raised on the caller (earliest item wins).
    pub fn run<U, F>(&self, items: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        self.run_report(items, f, &Schedule::Free).results
    }

    /// [`Pool::run`] over a slice, preserving order.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.run(items.len(), |i| f(&items[i]))
    }

    /// Runs `f` under an explicit [`Schedule`], returning the results and
    /// the recorded trace. Panics propagate as in [`Pool::run`].
    pub fn run_traced<U, F>(&self, items: usize, f: F, schedule: &Schedule) -> (Vec<U>, Trace)
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let report = self.run_report(items, f, schedule);
        (report.results, report.trace)
    }

    /// Runs `f` and returns the full [`RunReport`] (results, trace,
    /// per-chunk timings). Panics propagate as in [`Pool::run`].
    pub fn run_report<U, F>(&self, items: usize, f: F, schedule: &Schedule) -> RunReport<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let guarded = |i: usize| -> Result<U, Failure> {
            catch_unwind(AssertUnwindSafe(|| f(i)))
                .map_err(|payload| Failure::Panic { index: i, payload })
        };
        let exec = self.execute(items, &guarded, schedule);
        match exec.outcome {
            Ok(results) => RunReport {
                results,
                trace: exec.trace,
                chunk_ns: exec.chunk_ns,
                profile: exec.profile,
                queue: exec.queue,
            },
            Err(failure) => resume_unwind(failure.into_panic_payload()),
        }
    }

    /// Runs a fallible `f` over `0..items`. The earliest failure — a
    /// returned error or a caught panic — comes back as a typed
    /// [`PoolError`]; the pool itself stays fully usable afterwards.
    pub fn try_run<U, F>(&self, items: usize, f: F) -> Result<Vec<U>, PoolError>
    where
        U: Send,
        F: Fn(usize) -> Result<U, String> + Sync,
    {
        let guarded = |i: usize| -> Result<U, Failure> {
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(Ok(v)) => Ok(v),
                Ok(Err(message)) => Err(Failure::Task { index: i, message }),
                Err(payload) => Err(Failure::Panic { index: i, payload }),
            }
        };
        self.execute(items, &guarded, &Schedule::Free)
            .outcome
            .map_err(Failure::into_error)
    }

    /// The fork-join engine shared by every entry point. Routes to one of
    /// three strategies:
    ///
    /// - **inline** when only one worker would exist — no queue, no
    ///   thread, no barrier, so `threads == 1` costs exactly a sequential
    ///   loop plus per-chunk timestamps;
    /// - **fixed geometry** when the chunk size is pinned (explicitly, by
    ///   a replayed trace, or by a turnstile schedule needing
    ///   reproducible chunk identities);
    /// - **adaptive** for free schedules with no pinned size, where the
    ///   producer measures per-item cost from size-1 probes and then
    ///   targets [`PoolConfig::target_chunk_ns`] of work per chunk.
    fn execute<U, G>(&self, items: usize, g: &G, schedule: &Schedule) -> Execution<U>
    where
        U: Send,
        G: Fn(usize) -> Result<U, Failure> + Sync,
    {
        let threads = self.threads();
        let fixed = match (schedule, self.config.chunk_size) {
            // Replaying a compatible trace re-uses its chunk geometry so
            // step identities line up with the recording.
            (Schedule::Replay(t), _) if t.items == items && t.chunk_size > 0 => {
                Some(Chunker::new(items, t.chunk_size))
            }
            (_, Some(size)) => Some(Chunker::new(items, size)),
            (Schedule::Free, None) => None,
            _ => Some(Chunker::balanced(items, threads)),
        };
        match fixed {
            Some(chunker) => {
                let chunks = chunker.chunk_count();
                // A free schedule never benefits from more workers than
                // chunks; turnstile schedules (seeded/replay) keep the
                // full complement because their orders may name any
                // worker id below `threads`.
                let workers = match schedule {
                    Schedule::Free => threads.min(chunks.max(1)),
                    _ => threads,
                };
                if workers == 1 {
                    return self.execute_inline(items, g, chunker);
                }
                let order = schedule.worker_order(chunks, workers);
                self.execute_queued(
                    items,
                    g,
                    workers,
                    order,
                    chunker.chunk_size(),
                    |queue, _| {
                        for chunk in 0..chunks {
                            if !queue.push((chunk, chunker.bounds(chunk))) {
                                break;
                            }
                        }
                    },
                )
            }
            None => {
                if threads == 1 || items <= 1 {
                    return self.execute_inline(items, g, Chunker::new(items, items.max(1)));
                }
                self.execute_adaptive(items, g, threads)
            }
        }
    }

    /// Free-schedule run with measured-cost chunk sizing. The recorded
    /// trace carries `chunk_size: 0` — variable geometry — which marks it
    /// non-replayable (replay falls back to balanced chunking).
    fn execute_adaptive<U, G>(&self, items: usize, g: &G, threads: usize) -> Execution<U>
    where
        U: Send,
        G: Fn(usize) -> Result<U, Failure> + Sync,
    {
        let workers = threads.min(items);
        let target_ns = self.config.target_chunk_ns;
        self.execute_queued(items, g, workers, None, 0, |queue, feedback| {
            // Size-1 probes — enough for every worker to report twice —
            // establish the per-item cost; after the first lands, every
            // chunk targets `target_chunk_ns` of measured work while
            // still spreading the remainder over all workers.
            let probes = (2 * workers).min(items);
            let mut next = 0usize;
            let mut chunk = 0usize;
            while next < probes {
                if !queue.push((chunk, next..next + 1)) {
                    return;
                }
                next += 1;
                chunk += 1;
            }
            while next < items {
                let per_item_ns = {
                    let mut done = feedback.done.lock().unwrap_or_else(|p| p.into_inner());
                    // Wait-in-loop: spurious wakeups re-check. Progress is
                    // guaranteed — the probes above are already queued and
                    // every popped chunk reports, failed or not.
                    while done.0 == 0 {
                        done = feedback.ready.wait(done).unwrap_or_else(|p| p.into_inner());
                    }
                    (done.1 / done.0).max(1)
                };
                let size = auto_chunk_size(items - next, workers, per_item_ns, target_ns);
                let hi = (next + size).min(items);
                if !queue.push((chunk, next..hi)) {
                    return;
                }
                next = hi;
                chunk += 1;
            }
        })
    }

    /// The single-worker fast path: chunks run on the caller thread in
    /// submission order with no queue, no spawn and no barrier. Taken
    /// whenever only one worker would exist; turnstile schedules with
    /// more than one worker never come here, because their recorded
    /// orders name worker ids that must exist to take their steps.
    fn execute_inline<U, G>(&self, items: usize, g: &G, chunker: Chunker) -> Execution<U>
    where
        U: Send,
        G: Fn(usize) -> Result<U, Failure> + Sync,
    {
        let chunks = chunker.chunk_count();
        let mut results = Vec::with_capacity(items);
        let mut chunk_ns = Vec::with_capacity(chunks);
        let mut profiles = Vec::with_capacity(chunks);
        let mut steps = Vec::with_capacity(chunks);
        let mut first_failure: Option<Failure> = None;
        for chunk in 0..chunks {
            let started = np_telemetry::now_ns();
            for i in chunker.bounds(chunk) {
                match g(i) {
                    Ok(v) => results.push(v),
                    Err(e) => {
                        if first_failure.as_ref().is_none_or(|f| e.index() < f.index()) {
                            first_failure = Some(e);
                        }
                        break;
                    }
                }
            }
            let ended = np_telemetry::now_ns();
            chunk_ns.push(ended.saturating_sub(started));
            profiles.push(ChunkProfile {
                chunk,
                worker: 0,
                wait_ns: 0,
                start_ns: started,
                end_ns: ended,
            });
            steps.push(Step { worker: 0, chunk });
        }
        record_pool_counters(&profiles, 1);
        Execution {
            outcome: match first_failure {
                None => Ok(results),
                Some(e) => Err(e),
            },
            trace: Trace {
                items,
                chunk_size: chunker.chunk_size(),
                steps,
            },
            chunk_ns,
            profile: profiles,
            queue: QueueStats::default(),
        }
    }

    /// The queued multi-worker engine: `produce` feeds `(chunk, range)`
    /// pairs, `workers` scoped threads execute them, and the merge is one
    /// ordered pass over chunk-indexed deposit slots — no sort, and the
    /// result values move straight into the output vector.
    fn execute_queued<U, G, P>(
        &self,
        items: usize,
        g: &G,
        workers: usize,
        order: Option<Vec<usize>>,
        trace_chunk_size: usize,
        produce: P,
    ) -> Execution<U>
    where
        U: Send,
        G: Fn(usize) -> Result<U, Failure> + Sync,
        P: FnOnce(&BoundedQueue<(usize, Range<usize>)>, &CostFeedback),
    {
        let queue: BoundedQueue<(usize, Range<usize>)> =
            BoundedQueue::with_order(self.config.queue_capacity, order);
        let feedback = CostFeedback {
            done: Mutex::new((0, 0)),
            ready: Condvar::new(),
        };
        let deposits: Mutex<Vec<Option<Deposit<U>>>> = Mutex::new(Vec::new());

        // Barrier-synchronised start: no worker pulls a chunk until every
        // worker thread exists, so measured walls (bench harness samples,
        // chunk profiles) never fold thread-spawn skew into the first
        // chunks. Determinism is unaffected — merge order is by chunk
        // index either way.
        let start = std::sync::Barrier::new(workers);
        std::thread::scope(|scope| {
            for worker in 0..workers {
                let queue = &queue;
                let deposits = &deposits;
                let feedback = &feedback;
                let start = &start;
                scope.spawn(move || {
                    start.wait();
                    loop {
                        let waited = np_telemetry::now_ns();
                        let Some((chunk, range)) = queue.pop(worker) else {
                            break;
                        };
                        let wait_ns = np_telemetry::now_ns().saturating_sub(waited);
                        if np_telemetry::enabled() {
                            np_telemetry::histogram!("par.idle_ns").record(wait_ns);
                        }
                        let started = np_telemetry::now_ns();
                        let mut out = Vec::with_capacity(range.len());
                        let mut failure = None;
                        let mut attempted = 0u64;
                        for i in range {
                            attempted += 1;
                            match g(i) {
                                Ok(v) => out.push(v),
                                Err(e) => {
                                    failure = Some(e);
                                    break;
                                }
                            }
                        }
                        let ended = np_telemetry::now_ns();
                        {
                            // Report measured cost; only the transition
                            // out of "nothing finished yet" notifies —
                            // that is the only state the adaptive
                            // producer ever waits on.
                            let mut done = feedback.done.lock().unwrap_or_else(|p| p.into_inner());
                            let first = done.0 == 0;
                            done.0 += attempted;
                            done.1 += ended.saturating_sub(started);
                            if first && attempted > 0 {
                                feedback.ready.notify_all();
                            }
                        }
                        let profile = ChunkProfile {
                            chunk,
                            worker,
                            wait_ns,
                            start_ns: started,
                            end_ns: ended,
                        };
                        let deposit = match failure {
                            None => Ok(out),
                            Some(e) => Err(e),
                        };
                        // Deposits land directly in their chunk slot, so
                        // the merge needs no sort. Poison recovery as in
                        // the queue: a panicked sibling never leaves a
                        // slot torn (the slot write is a plain store).
                        let mut slots = deposits.lock().unwrap_or_else(|p| p.into_inner());
                        if slots.len() <= chunk {
                            slots.resize_with(chunk + 1, || None);
                        }
                        slots[chunk] = Some((deposit, profile));
                    }
                });
            }
            produce(&queue, &feedback);
            queue.close();
        });

        // Merge in chunk order — submission order — regardless of which
        // worker finished when. The earliest failure (by item index) wins
        // deterministically: chunks are ordered index ranges and a chunk
        // stops at its first failing item. Every pushed chunk is popped
        // exactly once (close drains, never discards), so the slot pass
        // reconstructs submission order directly.
        let stats = queue.stats();
        let steps = queue.take_steps();
        let slots = deposits.into_inner().unwrap_or_else(|p| p.into_inner());
        debug_assert!(
            slots.iter().all(Option::is_some),
            "every chunk executed exactly once"
        );
        let chunks = slots.len();
        let mut results = Vec::with_capacity(items);
        let mut chunk_ns = Vec::with_capacity(chunks);
        let mut profiles = Vec::with_capacity(chunks);
        let mut first_failure: Option<Failure> = None;
        for (deposit, profile) in slots.into_iter().flatten() {
            chunk_ns.push(profile.end_ns.saturating_sub(profile.start_ns));
            profiles.push(profile);
            match deposit {
                Ok(values) => results.extend(values),
                Err(e) => {
                    if first_failure.as_ref().is_none_or(|f| e.index() < f.index()) {
                        first_failure = Some(e);
                    }
                }
            }
        }
        record_pool_counters(&profiles, workers);
        Execution {
            outcome: match first_failure {
                None => Ok(results),
                Some(e) => Err(e),
            },
            trace: Trace {
                items,
                chunk_size: trace_chunk_size,
                steps,
            },
            chunk_ns,
            profile: profiles,
            queue: stats,
        }
    }
}

/// Merge-time telemetry: total chunks executed, plus how many chunks each
/// worker took beyond its fair share (the steal signal).
fn record_pool_counters(profiles: &[ChunkProfile], workers: usize) {
    let chunks = profiles.len();
    np_telemetry::counter!("par.tasks").add(chunks as u64);
    if workers == 0 || chunks == 0 {
        return;
    }
    let fair_share = chunks.div_ceil(workers);
    let mut executed = vec![0usize; workers];
    for p in profiles {
        if let Some(e) = executed.get_mut(p.worker) {
            *e += 1;
        }
    }
    let steal: u64 = executed
        .iter()
        .map(|&e| e.saturating_sub(fair_share) as u64)
        .sum();
    np_telemetry::counter!("par.steal").add(steal);
}

/// Greedy list-scheduling makespan of `chunk_ns` on `workers` identical
/// workers, in submission order: each chunk goes to the least-loaded
/// worker. This is the parallel wall time the recorded chunk costs imply
/// for a given worker count, independent of how many cores the recording
/// host actually had — the model `np bench-parallel` reports speedups
/// from (and the classic 2-approximation of the optimal schedule).
pub fn modeled_makespan_ns(chunk_ns: &[u64], workers: usize) -> u64 {
    let mut load = vec![0u64; workers.max(1)];
    for &c in chunk_ns {
        if let Some(min) = load.iter_mut().min() {
            *min += c;
        }
    }
    load.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_matches_sequential_for_every_thread_count() {
        let expect: Vec<u64> = (0..100u64).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let got = pool.run(100, |i| (i as u64) * (i as u64));
            assert_eq!(got, expect, "{threads} threads");
        }
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<i32> = (0..57).collect();
        let pool = Pool::new(4);
        let doubled = pool.map(&items, |&v| v * 2);
        assert_eq!(doubled, items.iter().map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_run_returns_empty() {
        let pool = Pool::new(4);
        let out: Vec<usize> = pool.run(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn try_run_surfaces_the_earliest_task_error() {
        let pool = Pool::new(4);
        let err = pool
            .try_run(64, |i| {
                if i == 17 || i == 41 {
                    Err(format!("bad item {i}"))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
        assert_eq!(
            err,
            PoolError::Task {
                index: 17,
                message: "bad item 17".to_string()
            }
        );
    }

    #[test]
    fn panic_becomes_a_typed_error_and_the_pool_survives() {
        let pool = Pool::new(4);
        let err = pool
            .try_run(32, |i| {
                if i == 9 {
                    panic!("boom at {i}");
                }
                Ok(i)
            })
            .unwrap_err();
        match err {
            PoolError::Panic { index, message } => {
                assert_eq!(index, 9);
                assert!(message.contains("boom"), "{message}");
            }
            other => panic!("expected panic error, got {other}"),
        }
        // Not poisoned: the same pool value runs clean work fine.
        assert_eq!(pool.run(8, |i| i), (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "carried payload")]
    fn run_reraises_worker_panics() {
        let pool = Pool::new(2);
        pool.run(16, |i| {
            if i == 3 {
                panic!("carried payload");
            }
            i
        });
    }

    #[test]
    fn seeded_schedule_changes_interleaving_not_output() {
        let pool = Pool::with_config(PoolConfig {
            threads: 4,
            chunk_size: Some(1),
            queue_capacity: 4,
            ..PoolConfig::default()
        });
        let expect: Vec<usize> = (0..24).map(|i| i + 1).collect();
        let (base, trace_a) = pool.run_traced(24, |i| i + 1, &Schedule::Seeded(1));
        let (other, trace_b) = pool.run_traced(24, |i| i + 1, &Schedule::Seeded(99));
        assert_eq!(base, expect);
        assert_eq!(other, expect);
        // The seeds really did schedule differently.
        assert_eq!(trace_a.steps.len(), 24);
        let workers_a: Vec<usize> = trace_a.steps.iter().map(|s| s.worker).collect();
        let workers_b: Vec<usize> = trace_b.steps.iter().map(|s| s.worker).collect();
        assert_ne!(workers_a, workers_b);
    }

    #[test]
    fn replay_reproduces_a_recorded_trace_exactly() {
        let pool = Pool::with_config(PoolConfig {
            threads: 3,
            chunk_size: Some(2),
            queue_capacity: 8,
            ..PoolConfig::default()
        });
        let (out, trace) = pool.run_traced(20, |i| i * 7, &Schedule::Seeded(5));
        let (replayed, replay_trace) =
            pool.run_traced(20, |i| i * 7, &Schedule::Replay(trace.clone()));
        assert_eq!(out, replayed);
        assert_eq!(trace, replay_trace);
    }

    #[test]
    fn report_times_every_chunk() {
        let pool = Pool::with_config(PoolConfig {
            threads: 2,
            chunk_size: Some(4),
            queue_capacity: 8,
            ..PoolConfig::default()
        });
        let report = pool.run_report(16, |i| i, &Schedule::Free);
        assert_eq!(report.results.len(), 16);
        assert_eq!(report.chunk_ns.len(), 4);
        assert_eq!(report.trace.steps.len(), 4);
    }

    #[test]
    fn profile_attributes_every_chunk_to_a_worker() {
        let pool = Pool::with_config(PoolConfig {
            threads: 3,
            chunk_size: Some(2),
            queue_capacity: 8,
            ..PoolConfig::default()
        });
        let report = pool.run_report(10, |i| i * 3, &Schedule::Free);
        assert_eq!(report.profile.len(), 5);
        for (chunk, p) in report.profile.iter().enumerate() {
            assert_eq!(p.chunk, chunk, "profile sits at its chunk slot");
            assert!(p.worker < 3);
            assert!(p.end_ns >= p.start_ns);
            assert_eq!(
                report.chunk_ns[chunk],
                p.end_ns - p.start_ns,
                "chunk_ns derives from the profile window"
            );
        }
        // The profile agrees with the recorded schedule trace on who ran
        // what (the trace is pop-order, the profile is chunk-order).
        for step in &report.trace.steps {
            assert_eq!(report.profile[step.chunk].worker, step.worker);
        }
    }

    #[test]
    fn makespan_model_is_work_conserving() {
        // 4 equal chunks on 2 workers: two per worker.
        assert_eq!(modeled_makespan_ns(&[10, 10, 10, 10], 2), 20);
        // One giant chunk dominates regardless of workers.
        assert_eq!(modeled_makespan_ns(&[100, 1, 1, 1], 4), 100);
        // One worker serialises.
        assert_eq!(modeled_makespan_ns(&[5, 6, 7], 1), 18);
        assert_eq!(modeled_makespan_ns(&[], 3), 0);
    }
}
