//! Deterministic chunk assignment.
//!
//! A [`Chunker`] is a pure function of `(items, chunk_size)`: chunk `c`
//! covers the contiguous index range `[c·size, min((c+1)·size, items))`.
//! Nothing about the host — thread count, load, scheduling — moves a
//! chunk boundary, which is half of the pool's determinism contract (the
//! other half is merging results back in chunk order).

use std::ops::Range;

/// A deterministic partition of `0..items` into contiguous chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunker {
    items: usize,
    chunk_size: usize,
}

/// Chunks per worker the balanced policy aims for: enough slack that a
/// slow chunk does not serialise the tail, few enough that queue traffic
/// stays negligible next to simulation work.
const CHUNKS_PER_WORKER: usize = 4;

/// Target useful work per chunk for the adaptive policy, in nanoseconds
/// (~1 ms). Below this floor the fixed per-chunk overhead — one queue
/// round-trip, one deposit lock, one output vector — stops being
/// negligible next to the work itself, which is exactly the measured
/// regression the committed bench baseline showed for the campaign.
pub const TARGET_CHUNK_NS: u64 = 1_000_000;

/// The adaptive chunk size implied by a measured per-item cost: large
/// enough that one chunk carries at least `target_ns` of work (the work
/// floor), but never so large that the `remaining` items stop spreading
/// across every worker. The tail chunk may undercut the floor — there is
/// nothing left to pad it with — and so may every chunk when the floor
/// exceeds the fair per-worker share, where balance beats amortisation.
pub fn auto_chunk_size(
    remaining: usize,
    workers: usize,
    per_item_ns: u64,
    target_ns: u64,
) -> usize {
    let floor = (target_ns / per_item_ns.max(1)).max(1);
    let floor = usize::try_from(floor).unwrap_or(usize::MAX);
    let fair_share = remaining.div_ceil(workers.max(1)).max(1);
    floor.min(fair_share)
}

impl Chunker {
    /// A chunker with an explicit chunk size (clamped to at least 1).
    pub fn new(items: usize, chunk_size: usize) -> Chunker {
        Chunker {
            items,
            chunk_size: chunk_size.max(1),
        }
    }

    /// The default policy: roughly [`CHUNKS_PER_WORKER`] chunks per
    /// worker. Note the resulting chunk size depends on `workers`; the
    /// merged output still does not, because merging is by index.
    pub fn balanced(items: usize, workers: usize) -> Chunker {
        let target = workers.max(1) * CHUNKS_PER_WORKER;
        Chunker::new(items, items.div_ceil(target.max(1)).max(1))
    }

    /// Total items partitioned.
    pub fn items(&self) -> usize {
        self.items
    }

    /// The chunk size (the last chunk may be shorter).
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.items.div_ceil(self.chunk_size)
    }

    /// The index range of chunk `c`.
    pub fn bounds(&self, c: usize) -> Range<usize> {
        let lo = (c * self.chunk_size).min(self.items);
        let hi = ((c + 1) * self.chunk_size).min(self.items);
        lo..hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_every_index_exactly_once_in_order() {
        for items in [0, 1, 7, 64, 100] {
            for size in [1, 3, 7, 64, 1000] {
                let c = Chunker::new(items, size);
                let mut seen = Vec::new();
                for i in 0..c.chunk_count() {
                    seen.extend(c.bounds(i));
                }
                let expect: Vec<usize> = (0..items).collect();
                assert_eq!(seen, expect, "items {items} size {size}");
            }
        }
    }

    #[test]
    fn zero_chunk_size_clamped() {
        let c = Chunker::new(10, 0);
        assert_eq!(c.chunk_size(), 1);
        assert_eq!(c.chunk_count(), 10);
    }

    #[test]
    fn empty_input_has_no_chunks() {
        let c = Chunker::new(0, 8);
        assert_eq!(c.chunk_count(), 0);
    }

    #[test]
    fn balanced_targets_chunks_per_worker() {
        let c = Chunker::balanced(64, 4);
        assert_eq!(c.chunk_size(), 4); // 64 / (4 workers * 4)
        assert_eq!(c.chunk_count(), 16);
        // Tiny inputs still produce at-least-one-item chunks.
        let t = Chunker::balanced(3, 8);
        assert_eq!(t.chunk_size(), 1);
        assert_eq!(t.chunk_count(), 3);
    }

    #[test]
    fn out_of_range_chunk_is_empty() {
        let c = Chunker::new(10, 4);
        assert_eq!(c.chunk_count(), 3);
        assert!(c.bounds(99).is_empty());
    }
}
