//! Seedable, recordable, replayable schedules.
//!
//! A schedule decides which worker wins each queue step. Three policies:
//!
//! * [`Schedule::Free`] — whoever gets the lock first. The schedule of
//!   production runs; recorded but not enforced.
//! * [`Schedule::Seeded`] — a pseudo-random worker order derived from a
//!   seed (xorshift64*, the same generator family as the simulator's
//!   noise), so a test can explore many adversarial interleavings and
//!   name each one by a number.
//! * [`Schedule::Replay`] — the exact interleaving of a recorded
//!   [`Trace`], enforced by the queue turnstile.
//!
//! What a trace pins down is the *dequeue order*: step `s` of a run pops
//! chunk `s` (the queue is FIFO over chunks submitted in order), and the
//! trace names the worker that took it. That is the whole observable
//! schedule of a fork-join run — and the pool's merge is proven (by the
//! proptests) to produce identical output under every one of them.

/// One granted queue step: `worker` dequeued `chunk`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// The worker index (0-based) that won the step.
    pub worker: usize,
    /// The chunk it dequeued; equals the step index for FIFO submission.
    pub chunk: usize,
}

/// A recorded interleaving, replayable via [`Schedule::Replay`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Items of the run the trace was recorded from.
    pub items: usize,
    /// Chunk size of that run (replay re-uses it so chunk boundaries —
    /// and therefore step identities — line up).
    pub chunk_size: usize,
    /// The granted steps, in order.
    pub steps: Vec<Step>,
}

/// A scheduling policy for one pool run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Unconstrained: the OS scheduler decides, the run records.
    #[default]
    Free,
    /// A pseudo-random worker order derived from the seed.
    Seeded(u64),
    /// Enforce a previously recorded interleaving.
    Replay(Trace),
}

impl Schedule {
    /// The worker order to install in the queue turnstile, or `None` for
    /// free-for-all. Worker ids are clamped into `0..workers` so a trace
    /// recorded at a higher thread count stays feasible.
    pub(crate) fn worker_order(&self, chunks: usize, workers: usize) -> Option<Vec<usize>> {
        let workers = workers.max(1);
        match self {
            Schedule::Free => None,
            Schedule::Seeded(seed) => {
                let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
                if x == 0 {
                    x = 0x2545_F491_4F6C_DD1D;
                }
                Some(
                    (0..chunks)
                        .map(|_| {
                            // xorshift64*: deterministic, well-mixed.
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as usize % workers
                        })
                        .collect(),
                )
            }
            Schedule::Replay(trace) => {
                Some(trace.steps.iter().map(|s| s.worker % workers).collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_installs_no_order() {
        assert_eq!(Schedule::Free.worker_order(8, 4), None);
    }

    #[test]
    fn seeded_orders_are_deterministic_and_seed_sensitive() {
        let a = Schedule::Seeded(1).worker_order(32, 4).unwrap();
        let b = Schedule::Seeded(1).worker_order(32, 4).unwrap();
        let c = Schedule::Seeded(2).worker_order(32, 4).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 32);
        assert!(a.iter().all(|&w| w < 4));
        // A healthy seed spreads work beyond one worker.
        assert!(a.iter().collect::<std::collections::HashSet<_>>().len() > 1);
    }

    #[test]
    fn replay_extracts_the_recorded_worker_sequence() {
        let trace = Trace {
            items: 3,
            chunk_size: 1,
            steps: vec![
                Step {
                    worker: 2,
                    chunk: 0,
                },
                Step {
                    worker: 0,
                    chunk: 1,
                },
                Step {
                    worker: 2,
                    chunk: 2,
                },
            ],
        };
        let order = Schedule::Replay(trace.clone()).worker_order(3, 4).unwrap();
        assert_eq!(order, vec![2, 0, 2]);
        // Clamped when replayed on a smaller pool.
        let clamped = Schedule::Replay(trace).worker_order(3, 2).unwrap();
        assert_eq!(clamped, vec![0, 0, 0]);
    }

    #[test]
    fn zero_seed_still_generates() {
        let order = Schedule::Seeded(0x9E37_79B9_7F4A_7C15) // xor-cancels to 0
            .worker_order(8, 3)
            .unwrap();
        assert_eq!(order.len(), 8);
    }
}
