//! Pool-lifecycle stress: the failure-path half of the determinism
//! contract.
//!
//! Three promises under test. A panicking task surfaces as a typed error
//! (or re-raises) without poisoning the pool — the same value keeps
//! working afterwards. Shutdown drains the queue: every submitted chunk
//! executes even when workers heavily outnumber cores. And an injected
//! [`Fault::Delay`] stalling arbitrary tasks changes only timing, never
//! the merged order — delays are exactly the nondeterminism the merge is
//! supposed to erase.

use np_parallel::{Pool, PoolConfig, PoolError, Schedule};
use np_resilience::fault::{Fault, FaultInjector, ScriptedFaults};
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::Mutex;
use std::time::Duration;

#[test]
fn repeated_panics_never_poison_the_pool() {
    let pool = Pool::new(4);
    for round in 0..20u64 {
        let bad = (round as usize * 7) % 50;
        let err = pool
            .try_run(50, |i| {
                if i == bad {
                    panic!("round {round} item {i}");
                }
                Ok(i as u64 + round)
            })
            .unwrap_err();
        match err {
            PoolError::Panic { index, .. } => assert_eq!(index, bad),
            other => panic!("expected panic error, got {other}"),
        }
        // Immediately after the failure the pool does clean work.
        let clean: Vec<u64> = pool.run(10, |i| i as u64 * round);
        assert_eq!(clean, (0..10).map(|i| i * round).collect::<Vec<u64>>());
    }
}

#[test]
fn mixed_task_errors_and_panics_pick_the_earliest_item() {
    let pool = Pool::with_config(PoolConfig {
        threads: 8,
        chunk_size: Some(3),
        queue_capacity: 4,
        ..PoolConfig::default()
    });
    // A panic at 30 and a task error at 12: index order decides, not
    // completion order, so the Err(12) must win every time.
    for _ in 0..10 {
        let err = pool
            .try_run(60, |i| match i {
                30 => panic!("later panic"),
                12 => Err("earlier error".to_string()),
                _ => Ok(i),
            })
            .unwrap_err();
        assert_eq!(
            err,
            PoolError::Task {
                index: 12,
                message: "earlier error".to_string()
            }
        );
    }
}

#[test]
fn shutdown_drains_every_queued_chunk() {
    // Many more chunks than queue capacity and many more workers than
    // cores: the close/drain path is exercised hard, and the executed-item
    // count must still be exact.
    let executed = AtomicUsize::new(0);
    let pool = Pool::with_config(PoolConfig {
        threads: 16,
        chunk_size: Some(1),
        queue_capacity: 2,
        ..PoolConfig::default()
    });
    let out = pool.run(300, |i| {
        executed.fetch_add(1, SeqCst);
        i
    });
    assert_eq!(out, (0..300).collect::<Vec<_>>());
    assert_eq!(executed.load(SeqCst), 300);
}

#[test]
fn injected_delays_never_reorder_merged_output() {
    // Script a pile of delays and let tasks consume them in whatever
    // order the scheduler produces: some tasks stall, some do not, and
    // which-stalls-where varies per run. The merged output may not.
    let faults =
        ScriptedFaults::new().inject_n("pool.task", Fault::Delay(Duration::from_millis(2)), 40);
    let expect: Vec<u64> = (0..120).map(|i| i as u64 * 11).collect();
    let pool = Pool::with_config(PoolConfig {
        threads: 6,
        chunk_size: Some(2),
        queue_capacity: 4,
        ..PoolConfig::default()
    });
    let got = pool.run(120, |i| {
        if let Some(Fault::Delay(d)) = faults.next("pool.task") {
            std::thread::sleep(d);
        }
        i as u64 * 11
    });
    assert_eq!(got, expect);
    assert_eq!(faults.remaining(), 0, "all scripted delays consumed");
}

#[test]
fn delayed_replay_still_matches_the_recorded_trace() {
    // Replay under adversarial timing: the turnstile must enforce the
    // recorded interleaving even when the replayed tasks are slower than
    // the recording (the classic way replay harnesses drift).
    let pool = Pool::with_config(PoolConfig {
        threads: 3,
        chunk_size: Some(1),
        queue_capacity: 8,
        ..PoolConfig::default()
    });
    let (out, trace) = pool.run_traced(30, |i| i * 13, &Schedule::Seeded(42));
    let faults =
        ScriptedFaults::new().inject_n("pool.task", Fault::Delay(Duration::from_millis(1)), 15);
    let (replayed, replay_trace) = pool.run_traced(
        30,
        |i| {
            if let Some(Fault::Delay(d)) = faults.next("pool.task") {
                std::thread::sleep(d);
            }
            i * 13
        },
        &Schedule::Replay(trace.clone()),
    );
    assert_eq!(out, replayed);
    assert_eq!(trace, replay_trace);
}

#[test]
fn concurrent_pools_do_not_interfere() {
    // Two pools driven from two threads at once: per-call scoped state
    // means there is nothing shared to corrupt.
    let results = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for run in 0..4u64 {
            let results = &results;
            s.spawn(move || {
                let pool = Pool::new(3);
                let out = pool.run(80, |i| i as u64 + run * 1000);
                results.lock().unwrap().push((run, out));
            });
        }
    });
    let runs = results.into_inner().unwrap();
    assert_eq!(runs.len(), 4);
    for (run, out) in runs {
        let expect: Vec<u64> = (0..80).map(|i| i + run * 1000).collect();
        assert_eq!(out, expect, "pool run {run}");
    }
}
