//! Property-based tests for the np-parallel determinism contract.
//!
//! These are the proofs the crate docs lean on: chunking is a partition
//! for *every* `(items, chunk_size)`, merged output equals the sequential
//! loop for *every* `(items, threads, chunk_size, seed)`, and a recorded
//! schedule replays to the identical trace and output.

use np_parallel::{Chunker, Pool, PoolConfig, Schedule};
use proptest::prelude::*;

/// The task every property runs: cheap, injective in `i`, so a lost,
/// duplicated or reordered item is always visible in the output.
fn task(i: usize) -> u64 {
    (i as u64).wrapping_mul(0x9E37_79B9) ^ 0xABCD
}

fn pool(threads: usize, chunk_size: usize) -> Pool {
    Pool::with_config(PoolConfig {
        threads,
        chunk_size: Some(chunk_size),
        queue_capacity: 8,
        ..PoolConfig::default()
    })
}

proptest! {
    #[test]
    fn chunks_partition_the_index_space(items in 0usize..500, size in 0usize..64) {
        let c = Chunker::new(items, size);
        let mut covered = Vec::new();
        for chunk in 0..c.chunk_count() {
            covered.extend(c.bounds(chunk));
        }
        let expect: Vec<usize> = (0..items).collect();
        prop_assert_eq!(covered, expect);
    }

    #[test]
    fn balanced_chunks_partition_for_any_worker_count(
        items in 0usize..500,
        workers in 0usize..16,
    ) {
        let c = Chunker::balanced(items, workers);
        let mut covered = Vec::new();
        for chunk in 0..c.chunk_count() {
            covered.extend(c.bounds(chunk));
        }
        let expect: Vec<usize> = (0..items).collect();
        prop_assert_eq!(covered, expect);
    }

    #[test]
    fn merged_output_equals_sequential_for_any_geometry(
        items in 0usize..200,
        threads in 1usize..9,
        size in 1usize..32,
    ) {
        let expect: Vec<u64> = (0..items).map(task).collect();
        let got = pool(threads, size).run(items, task);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn seeded_schedules_never_change_output(
        items in 1usize..150,
        threads in 1usize..7,
        size in 1usize..16,
        seed in 0u64..u64::MAX,
    ) {
        let expect: Vec<u64> = (0..items).map(task).collect();
        let (got, trace) = pool(threads, size).run_traced(items, task, &Schedule::Seeded(seed));
        prop_assert_eq!(got, expect);
        // Every chunk appears exactly once in the trace, in FIFO order.
        let chunks: Vec<usize> = trace.steps.iter().map(|s| s.chunk).collect();
        let fifo: Vec<usize> = (0..trace.steps.len()).collect();
        prop_assert_eq!(chunks, fifo);
    }

    #[test]
    fn record_replay_round_trips(
        items in 1usize..150,
        threads in 1usize..7,
        size in 1usize..16,
        seed in 0u64..u64::MAX,
    ) {
        let p = pool(threads, size);
        let (out, trace) = p.run_traced(items, task, &Schedule::Seeded(seed));
        let (replayed, replay_trace) = p.run_traced(items, task, &Schedule::Replay(trace.clone()));
        prop_assert_eq!(&out, &replayed);
        prop_assert_eq!(&trace, &replay_trace);
        // And a second replay of the *replayed* trace is still identical:
        // replay is a fixed point, not a one-shot approximation.
        let (again, again_trace) = p.run_traced(items, task, &Schedule::Replay(replay_trace.clone()));
        prop_assert_eq!(out, again);
        prop_assert_eq!(trace, again_trace);
    }

    #[test]
    fn map_agrees_with_run_for_any_input(
        values in proptest::collection::vec(-1_000_000i64..1_000_000, 0..120),
        threads in 1usize..6,
    ) {
        let p = Pool::new(threads);
        let by_map = p.map(&values, |&v| v.wrapping_mul(3));
        let by_run = p.run(values.len(), |i| values[i].wrapping_mul(3));
        prop_assert_eq!(by_map, by_run);
    }
}
