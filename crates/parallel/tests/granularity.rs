//! Property tests for the adaptive chunk-granularity policy.
//!
//! The policy (`auto_chunk_size` + the pool's probe-then-size producer)
//! exists to keep per-chunk overhead amortised: every chunk should carry
//! at least the target amount of measured work unless spreading the
//! remainder across workers demands smaller chunks, or the tail simply
//! runs out of items. These properties pin that floor, prove the emitted
//! chunks are a lossless partition, and prove that merge order is
//! invariant under any thread count — i.e. the adaptive geometry cannot
//! leak into results.

use np_parallel::{auto_chunk_size, Pool, PoolConfig, Schedule, TARGET_CHUNK_NS};
use proptest::prelude::*;

/// Injective task so any lost/duplicated/reordered item shows up.
fn task(i: usize) -> u64 {
    (i as u64).wrapping_mul(0x9E37_79B9) ^ 0x5A5A
}

/// Replays the adaptive producer's sizing loop deterministically: given a
/// fixed per-item cost, emit the chunk sizes the producer would emit
/// after its probe phase.
fn sized_chunks(items: usize, workers: usize, per_item_ns: u64, target_ns: u64) -> Vec<usize> {
    let mut out = Vec::new();
    let mut next = 0usize;
    while next < items {
        let size = auto_chunk_size(items - next, workers, per_item_ns, target_ns);
        let hi = (next + size).min(items);
        out.push(hi - next);
        next = hi;
    }
    out
}

proptest! {
    #[test]
    fn chunks_never_undercut_the_work_floor_except_the_tail(
        items in 1usize..5_000,
        workers in 1usize..17,
        per_item_ns in 1u64..5_000_000,
    ) {
        let target = TARGET_CHUNK_NS;
        let sizes = sized_chunks(items, workers, per_item_ns, target);
        let floor = ((target / per_item_ns).max(1) as usize).min(items.div_ceil(workers).max(1));
        for (i, &size) in sizes.iter().enumerate() {
            if i + 1 < sizes.len() {
                // Every non-tail chunk meets the floor: either ≥ target
                // worth of work, or the fair per-worker share when that
                // is smaller (balance beats amortisation). The fair
                // share can only shrink as items are consumed, so the
                // initial floor is a valid lower bound divided by at
                // most itself — assert against the per-step floor.
                prop_assert!(
                    size >= 1,
                    "chunk {i} of {} is empty (sizes {sizes:?})",
                    sizes.len()
                );
                if floor > 1 {
                    // Re-derive the exact floor at this step.
                    let consumed: usize = sizes[..i].iter().sum();
                    let remaining = items - consumed;
                    let step_floor = ((target / per_item_ns).max(1) as usize)
                        .min(remaining.div_ceil(workers).max(1));
                    prop_assert!(
                        size >= step_floor,
                        "chunk {i} has {size} items, floor {step_floor} (sizes {sizes:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn sized_chunks_partition_losslessly(
        items in 0usize..5_000,
        workers in 1usize..17,
        per_item_ns in 1u64..5_000_000,
        target_ns in 1u64..10_000_000,
    ) {
        let sizes = sized_chunks(items, workers, per_item_ns, target_ns);
        let total: usize = sizes.iter().sum();
        prop_assert_eq!(total, items, "sizes {:?}", sizes);
        prop_assert!(sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    fn auto_chunk_size_is_positive_and_bounded(
        remaining in 1usize..100_000,
        workers in 0usize..32,
        per_item_ns in 0u64..u64::MAX,
        target_ns in 0u64..u64::MAX,
    ) {
        let size = auto_chunk_size(remaining, workers, per_item_ns, target_ns);
        prop_assert!(size >= 1);
        prop_assert!(size <= remaining.div_ceil(workers.max(1)).max(1));
    }

    #[test]
    fn adaptive_merge_is_permutation_invariant_across_thread_counts(
        items in 0usize..400,
        threads in 1usize..9,
    ) {
        // No fixed chunk_size → the free schedule takes the adaptive
        // path (probes + measured sizing). Whatever geometry the run
        // actually produced, the merged output must equal the
        // sequential loop — and therefore agree across thread counts.
        let expect: Vec<u64> = (0..items).map(task).collect();
        let pool = Pool::with_config(PoolConfig {
            threads,
            chunk_size: None,
            queue_capacity: 8,
            ..PoolConfig::default()
        });
        let got = pool.run(items, task);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn adaptive_trace_covers_every_chunk_exactly_once(
        items in 1usize..300,
        threads in 2usize..7,
    ) {
        let pool = Pool::with_config(PoolConfig {
            threads,
            chunk_size: None,
            queue_capacity: 8,
            ..PoolConfig::default()
        });
        let report = pool.run_report(items, task, &Schedule::Free);
        // The trace records each chunk grant once, in FIFO chunk order.
        let chunks: Vec<usize> = report.trace.steps.iter().map(|s| s.chunk).collect();
        let fifo: Vec<usize> = (0..report.trace.steps.len()).collect();
        prop_assert_eq!(chunks, fifo);
        // Profiles land one per chunk, in chunk order, and the queue
        // moved exactly that many items.
        prop_assert_eq!(report.profile.len(), report.trace.steps.len());
        for (chunk, p) in report.profile.iter().enumerate() {
            prop_assert_eq!(p.chunk, chunk);
        }
        prop_assert_eq!(report.queue.pushes, report.queue.pops);
    }
}

#[test]
fn adaptive_chunking_amortises_cheap_items() {
    // ~16k near-free items at 4 threads: the probe phase may emit up to
    // 2×workers size-1 chunks, but once the measured cost comes back the
    // producer must emit large chunks — far fewer total chunks than
    // items. This is the counted (not timed) signature of granularity
    // control; the balanced fallback would emit exactly 16 chunks, and a
    // regression to per-item chunks would emit 16384.
    let pool = Pool::with_config(PoolConfig {
        threads: 4,
        chunk_size: None,
        queue_capacity: 32,
        ..PoolConfig::default()
    });
    let items = 16_384usize;
    let report = pool.run_report(items, task, &Schedule::Free);
    let chunks = report.profile.len();
    assert!(
        chunks < items / 4,
        "adaptive path emitted {chunks} chunks for {items} items"
    );
    assert_eq!(report.results, (0..items).map(task).collect::<Vec<_>>());
}
