//! Property-based tests for the tool layer's invariants.

use np_core::evsel::{EvSel, ParameterSweep};
use np_counters::measurement::{Measurement, RunSet};
use np_simulator::HwEvent;
use proptest::prelude::*;

fn runset(label: &str, values: &[f64]) -> RunSet {
    let mut rs = RunSet::new(label);
    for (i, &v) in values.iter().enumerate() {
        let mut m = Measurement::new(i as u64);
        m.values.insert(HwEvent::Cycles, v);
        m.values.insert(HwEvent::L1dMiss, v / 2.0 + i as f64);
        rs.runs.push(m);
    }
    rs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn comparison_is_antisymmetric(
        a in proptest::collection::vec(1.0f64..1e6, 3..10),
        b in proptest::collection::vec(1.0f64..1e6, 3..10),
    ) {
        let evsel = EvSel { bonferroni: false, ..EvSel::default() };
        let ra = runset("A", &a);
        let rb = runset("B", &b);
        let ab = evsel.compare(&ra, &rb);
        let ba = evsel.compare(&rb, &ra);
        for e in [HwEvent::Cycles, HwEvent::L1dMiss] {
            let x = ab.row(e).unwrap();
            let y = ba.row(e).unwrap();
            prop_assert_eq!(x.significant, y.significant, "significance must be symmetric");
            prop_assert!(((x.mean_b - x.mean_a) + (y.mean_b - y.mean_a)).abs() < 1e-6);
            if let (Some(tx), Some(ty)) = (&x.ttest, &y.ttest) {
                if tx.t.is_finite() {
                    prop_assert!((tx.p_two_sided - ty.p_two_sided).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn comparison_of_a_set_with_itself_finds_nothing(
        a in proptest::collection::vec(1.0f64..1e6, 3..10),
    ) {
        let evsel = EvSel::default();
        let ra = runset("A", &a);
        let report = evsel.compare(&ra, &ra);
        prop_assert!(report.significant_rows().is_empty());
        for row in &report.rows {
            prop_assert!(row.relative_change.abs() < 1e-12);
        }
    }

    #[test]
    fn bonferroni_report_is_subset_of_naive(
        a in proptest::collection::vec(1.0f64..1e4, 4..8),
        shift in 0.0f64..500.0,
    ) {
        let b: Vec<f64> = a.iter().map(|v| v + shift).collect();
        let naive = EvSel { alpha: 0.05, bonferroni: false, ..EvSel::default() };
        let strict = EvSel { alpha: 0.05, bonferroni: true, ..EvSel::default() };
        let ra = runset("A", &a);
        let rb = runset("B", &b);
        let naive_sig: Vec<_> =
            naive.compare(&ra, &rb).significant_rows().iter().map(|r| r.event).collect();
        let strict_sig: Vec<_> =
            strict.compare(&ra, &rb).significant_rows().iter().map(|r| r.event).collect();
        for e in &strict_sig {
            prop_assert!(naive_sig.contains(e), "corrected finding {e:?} missing from naive set");
        }
    }

    #[test]
    fn sweep_correlation_sign_matches_slope(slope in -100.0f64..100.0) {
        prop_assume!(slope.abs() > 1.0);
        let mut sweep = ParameterSweep::new("x");
        for x in [1.0, 2.0, 4.0, 8.0, 16.0] {
            let base = 1e5 + slope * x;
            sweep.push(x, runset(&format!("x{x}"), &[base, base * 1.0001, base * 0.9999]));
        }
        let report = EvSel::default().correlate(&sweep);
        let row = report.row(HwEvent::Cycles).unwrap();
        prop_assert_eq!(row.pearson.signum(), slope.signum());
        prop_assert!(row.pearson.abs() > 0.99);
    }
}
