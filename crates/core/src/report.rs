//! Plain-text table rendering shared by the tools' reports.
//!
//! The original tools are GUIs (Figs. 5, 8, 9, 10, 11 are screenshots);
//! this reproduction renders the same content as aligned text tables so
//! that reports work over SSH and diff cleanly in EXPERIMENTS.md.

/// Renders an aligned text table with a header row and a separator.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders the tool suite's own telemetry as a report appendix.
///
/// Returns `None` while telemetry is disabled or nothing has been
/// recorded, so reports only grow the section when `--telemetry` (or a
/// programmatic [`np_telemetry::set_enabled`]) asked for it.
pub fn telemetry_section() -> Option<String> {
    if !np_telemetry::enabled() {
        return None;
    }
    let snap = np_telemetry::global().snapshot();
    if snap.live_metrics() == 0 {
        return None;
    }
    let mut out = String::from("\n== tool telemetry ==\n");
    out.push_str(&snap.to_text());
    Some(out)
}

/// Formats a count with thousands separators (`1234567` → `1,234,567`).
pub fn fmt_count(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let neg = v < 0.0;
    let i = v.abs().round() as u64;
    let s = i.to_string();
    let mut out = String::new();
    for (k, c) in s.chars().enumerate() {
        if k > 0 && (s.len() - k) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    if neg {
        format!("-{out}")
    } else {
        out
    }
}

/// Formats a relative change as a signed percentage (`0.5` → `+50.0 %`,
/// factors above 10× as `×N`).
pub fn fmt_change(rel: f64) -> String {
    if !rel.is_finite() {
        return "new".to_string();
    }
    if rel > 10.0 {
        format!("x{:.0}", rel + 1.0)
    } else {
        format!("{:+.1} %", rel * 100.0)
    }
}

/// Formats a significance level like EvSel's confidence display
/// (`0.9995` → `99.95 %`).
pub fn fmt_significance(sig: f64) -> String {
    format!("{:.2} %", sig * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["event", "count"],
            &[
                vec!["cycles".into(), "123".into()],
                vec!["L1-dcache-load-misses".into(), "4".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("event"));
        assert!(lines[1].starts_with("---"));
        // The count column starts at the same offset in both data rows.
        let off2 = lines[2].find("123").unwrap();
        let off3 = lines[3].find('4').unwrap();
        assert_eq!(off2, off3);
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(0.0), "0");
        assert_eq!(fmt_count(999.0), "999");
        assert_eq!(fmt_count(1_000.0), "1,000");
        assert_eq!(fmt_count(3_000_000.0), "3,000,000");
        assert_eq!(fmt_count(-1234.0), "-1,234");
    }

    #[test]
    fn change_formatting() {
        assert_eq!(fmt_change(0.5), "+50.0 %");
        assert_eq!(fmt_change(-0.9), "-90.0 %");
        assert_eq!(fmt_change(99.0), "x100");
        assert_eq!(fmt_change(f64::INFINITY), "new");
    }

    #[test]
    fn significance_formatting() {
        assert_eq!(fmt_significance(0.9995), "99.95 %");
    }
}
