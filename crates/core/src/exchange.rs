//! Publishing measured results to the indicator exchange.
//!
//! The measurement tools (EvSel run sets, Memhist histograms,
//! Phasenprüfer splits) produce rich in-process types; the exchange
//! stores flat, digestable [`IndicatorSet`]s. This module is the bridge:
//! it assembles a wire set from whatever a campaign measured and pushes
//! it through the resilient `np-serve` client, so any machine's runs
//! become transferable calibration data for every other machine's
//! `predict` queries — the paper's cross-machine indicator reuse, as a
//! service.

use crate::memhist::MemhistResult;
use crate::phasen::PhaseReport;
use crate::strategy::indicators_of;
use np_counters::measurement::RunSet;
use np_serve::client::{ClientError, ExchangeClient};
use np_serve::proto::{IndicatorKey, IndicatorSet, MemhistCounts, PhaseSplit};

impl MemhistResult {
    /// The histogram's interval counts as parallel vectors — the wire
    /// shape the exchange stores (the serde shim carries no tuples).
    pub fn interval_counts(&self) -> MemhistCounts {
        let bins = &self.histogram.bins;
        MemhistCounts {
            lo: bins.iter().map(|b| b.lo).collect(),
            hi: bins.iter().map(|b| b.hi).collect(),
            count: bins.iter().map(|b| b.count).collect(),
        }
    }
}

/// The phase split in wire shape.
pub fn phase_split(report: &PhaseReport) -> PhaseSplit {
    PhaseSplit {
        pivot_index: report.pivot_index as u64,
        pivot_time: report.pivot_time,
        ramp_slope: report.ramp_slope(),
    }
}

/// Assembles a publishable indicator set from a campaign's artefacts:
/// per-event means (and mean cycle cost) from the run set, plus whatever
/// Memhist and Phasenprüfer produced, if anything.
pub fn indicator_set(
    machine: &str,
    param: u64,
    runs: &RunSet,
    memhist: Option<&MemhistResult>,
    phases: Option<&PhaseReport>,
) -> IndicatorSet {
    let cycles = if runs.runs.is_empty() {
        0.0
    } else {
        runs.runs.iter().map(|m| m.cycles as f64).sum::<f64>() / runs.runs.len() as f64
    };
    let seed = runs.runs.first().map(|m| m.seed).unwrap_or_default();
    IndicatorSet {
        key: IndicatorKey {
            machine: machine.to_string(),
            program: runs.label.clone(),
            param,
        },
        seed,
        cycles,
        indicators: indicators_of(runs),
        memhist: memhist.map(|m| m.interval_counts()),
        phases: phases.map(phase_split),
    }
}

/// Publishes one measured campaign to a running exchange; returns the
/// store generation after the write.
pub fn publish(
    client: &ExchangeClient,
    machine: &str,
    param: u64,
    runs: &RunSet,
    memhist: Option<&MemhistResult>,
    phases: Option<&PhaseReport>,
) -> Result<u64, ClientError> {
    client.put(vec![indicator_set(machine, param, runs, memhist, phases)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_counters::measurement::Measurement;
    use np_simulator::HwEvent;
    use np_stats::histogram::LatencyHistogram;

    fn run_set() -> RunSet {
        let mut rs = RunSet::new("stride");
        for (i, (cycles, misses)) in [(100u64, 7.0), (300u64, 9.0)].iter().enumerate() {
            let mut m = Measurement::new(i as u64 + 1);
            m.cycles = *cycles;
            m.values.insert(HwEvent::L1dMiss, *misses);
            rs.runs.push(m);
        }
        rs
    }

    #[test]
    fn indicator_set_carries_means_and_provenance() {
        let set = indicator_set("dl580", 9, &run_set(), None, None);
        assert_eq!(set.key.machine, "dl580");
        assert_eq!(set.key.program, "stride");
        assert_eq!(set.key.param, 9);
        assert_eq!(set.seed, 1);
        assert_eq!(set.cycles, 200.0);
        assert_eq!(set.indicators[&HwEvent::L1dMiss], 8.0);
        assert!(set.memhist.is_none());
        assert!(set.phases.is_none());
    }

    #[test]
    fn memhist_intervals_flatten_to_parallel_vectors() {
        let histogram =
            LatencyHistogram::from_threshold_counts(&[1, 8, 64], &[100, 40, 15]).unwrap();
        let result = MemhistResult::complete(histogram, vec![3, 3, 3], 9);
        let counts = result.interval_counts();
        assert_eq!(counts.lo, vec![1, 8, 64]);
        assert_eq!(counts.hi, vec![8, 64, u64::MAX]);
        assert_eq!(counts.count, vec![60, 25, 15]);
        let set = indicator_set("dl580", 1, &run_set(), Some(&result), None);
        assert_eq!(set.memhist.unwrap(), counts);
    }
}
