//! Parameter regressions: "EvSel uses regressions to correlate parameters
//! with event counters. To find interdependencies, linear, quadratic, and
//! exponential regressions are created and evaluated" (§IV-A-2).
//!
//! A [`ParameterSweep`] holds one run set per value of a swept input
//! parameter (thread count, workload size, …); [`correlate`] fits all
//! three families per event and reports the winner with its R² — the
//! "regression function types, and the regression functions themselves …
//! along with their coefficients of determination" of Fig. 9.

use super::EvSel;
use crate::report::render_table;
use np_counters::catalog::EventId;
use np_counters::measurement::RunSet;
use np_stats::correlate::pearson_r;
use np_stats::regression::{best_fit, RegressionFit};

/// A swept input parameter with one measured run set per point.
#[derive(Debug, Clone)]
pub struct ParameterSweep {
    /// Name of the swept parameter ("threads", "size", …).
    pub parameter: String,
    /// `(parameter value, measurements)` pairs, ascending.
    pub points: Vec<(f64, RunSet)>,
}

impl ParameterSweep {
    /// Creates an empty sweep.
    pub fn new(parameter: impl Into<String>) -> Self {
        ParameterSweep {
            parameter: parameter.into(),
            points: Vec::new(),
        }
    }

    /// Adds one measured point.
    pub fn push(&mut self, value: f64, runs: RunSet) {
        self.points.push((value, runs));
    }

    /// Per-event series: mean counter value at each parameter point.
    pub fn series(&self, event: EventId) -> (Vec<f64>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (v, rs) in &self.points {
            if let Some(m) = rs.mean(event) {
                x.push(*v);
                y.push(m);
            }
        }
        (x, y)
    }

    /// Events covered by every point.
    pub fn events(&self) -> Vec<EventId> {
        let mut events: Option<Vec<EventId>> = None;
        for (_, rs) in &self.points {
            let e = rs.events();
            events = Some(match events {
                None => e,
                Some(prev) => prev.into_iter().filter(|x| e.contains(x)).collect(),
            });
        }
        events.unwrap_or_default()
    }
}

/// One event's correlation result.
#[derive(Debug, Clone)]
pub struct CorrelationRow {
    /// The event.
    pub event: EventId,
    /// Pearson correlation between parameter and mean counter value.
    pub pearson: f64,
    /// Best regression fit (by R² in the original space).
    pub best: RegressionFit,
    /// All evaluated fits, best first.
    pub fits: Vec<RegressionFit>,
}

/// The full sweep report.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Swept parameter name.
    pub parameter: String,
    /// Per-event rows, sorted by |Pearson r| descending.
    pub rows: Vec<CorrelationRow>,
}

impl SweepReport {
    /// Row for one event.
    pub fn row(&self, event: EventId) -> Option<&CorrelationRow> {
        self.rows.iter().find(|r| r.event == event)
    }

    /// Rows whose |r| meets `threshold` — the strong correlations EvSel
    /// surfaces (the paper highlights R > 0.95 and R > 0.99).
    pub fn strong(&self, threshold: f64) -> Vec<&CorrelationRow> {
        self.rows
            .iter()
            .filter(|r| r.pearson.abs() >= threshold)
            .collect()
    }

    /// Renders the Fig. 9-style table.
    pub fn render(&self) -> String {
        let mut out = format!("EvSel correlations vs {}\n\n", self.parameter);
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.event.name().to_string(),
                    format!("{:+.4}", r.pearson),
                    r.best.kind.name().to_string(),
                    r.best.formula(),
                    format!("{:.4}", r.best.r_squared),
                    format!("{:.2} %", 100.0 * r.best.slope_confidence()),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["event", "pearson", "family", "fit", "R^2", "confidence"],
            &rows,
        ));
        out
    }
}

/// Performs the correlation analysis for [`EvSel::correlate`].
pub fn correlate(_evsel: &EvSel, sweep: &ParameterSweep) -> SweepReport {
    let mut rows = Vec::new();
    for event in sweep.events() {
        let (x, y) = sweep.series(event);
        if x.len() < 4 {
            continue;
        }
        let Some(r) = pearson_r(&x, &y) else { continue };
        let Some((best, fits)) = best_fit(&x, &y) else {
            continue;
        };
        rows.push(CorrelationRow {
            event,
            pearson: r,
            best,
            fits,
        });
    }
    rows.sort_by(|a, b| {
        b.pearson
            .abs()
            .partial_cmp(&a.pearson.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    SweepReport {
        parameter: sweep.parameter.clone(),
        rows,
    }
}

/// Performs the correlation analysis for [`EvSel::correlate_pool`]: one
/// pool task per candidate event, rows merged in event order, then the
/// same stable sort by |r| as the serial path — so ties between equally
/// strong events resolve identically and the report is bit-identical to
/// [`correlate`] at any thread count.
pub fn correlate_pool(
    _evsel: &EvSel,
    sweep: &ParameterSweep,
    pool: &np_parallel::Pool,
) -> SweepReport {
    let events = sweep.events();
    let mut rows: Vec<CorrelationRow> = pool
        .map(&events, |&event| {
            let (x, y) = sweep.series(event);
            if x.len() < 4 {
                return None;
            }
            let r = pearson_r(&x, &y)?;
            let (best, fits) = best_fit(&x, &y)?;
            Some(CorrelationRow {
                event,
                pearson: r,
                best,
                fits,
            })
        })
        .into_iter()
        .flatten()
        .collect();
    rows.sort_by(|a, b| {
        b.pearson
            .abs()
            .partial_cmp(&a.pearson.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    SweepReport {
        parameter: sweep.parameter.clone(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_counters::measurement::Measurement;
    use np_simulator::HwEvent;

    fn point(seed: u64, pairs: &[(EventId, f64)]) -> RunSet {
        let mut rs = RunSet::new(format!("p{seed}"));
        for rep in 0..3 {
            let mut m = Measurement::new(seed * 10 + rep);
            for (e, v) in pairs {
                // Tiny deterministic jitter so t-test-able samples exist.
                m.values.insert(*e, v * (1.0 + rep as f64 * 1e-4));
            }
            rs.runs.push(m);
        }
        rs
    }

    fn sweep_with(f_lock: impl Fn(f64) -> f64, f_spec: impl Fn(f64) -> f64) -> ParameterSweep {
        let mut s = ParameterSweep::new("threads");
        for t in [1.0, 2.0, 4.0, 8.0, 16.0] {
            s.push(
                t,
                point(
                    t as u64,
                    &[
                        (HwEvent::L1dLocked, f_lock(t)),
                        (HwEvent::SpecJumpsRetired, f_spec(t)),
                        (HwEvent::Instructions, 1e6), // flat: no correlation
                    ],
                ),
            );
        }
        s
    }

    #[test]
    fn linear_positive_correlation_found() {
        let s = sweep_with(|t| 1000.0 + 500.0 * t, |t| 1e5 - 1000.0 * t);
        let rep = EvSel::default().correlate(&s);
        let row = rep.row(HwEvent::L1dLocked).unwrap();
        assert!(row.pearson > 0.99, "r = {}", row.pearson);
        assert!(row.best.r_squared > 0.99);
    }

    #[test]
    fn negative_correlation_found() {
        let s = sweep_with(|t| 1000.0 * t, |t| 2e5 * (-0.2 * t).exp());
        let rep = EvSel::default().correlate(&s);
        let row = rep.row(HwEvent::SpecJumpsRetired).unwrap();
        assert!(row.pearson < -0.8, "r = {}", row.pearson);
        // The generating family wins.
        assert_eq!(
            row.best.kind,
            np_stats::regression::RegressionKind::Exponential
        );
    }

    #[test]
    fn flat_series_is_weak() {
        let s = sweep_with(|t| 100.0 * t, |t| 5e4 - 10.0 * t);
        let rep = EvSel::default().correlate(&s);
        let strong = rep.strong(0.95);
        assert!(strong.iter().all(|r| r.event != HwEvent::Instructions));
    }

    #[test]
    fn rows_sorted_by_strength() {
        let s = sweep_with(|t| 777.0 * t, |t| 1e5 - 3.0 * t * t);
        let rep = EvSel::default().correlate(&s);
        for w in rep.rows.windows(2) {
            assert!(w[0].pearson.abs() >= w[1].pearson.abs());
        }
    }

    #[test]
    fn pooled_sweep_is_bit_identical_to_serial() {
        let s = sweep_with(|t| 1000.0 + 500.0 * t, |t| 2e5 * (-0.2 * t).exp());
        let serial = EvSel::default().correlate(&s);
        for threads in [1, 2, 8] {
            let pool = np_parallel::Pool::new(threads);
            let pooled = EvSel::default().correlate_pool(&s, &pool);
            assert_eq!(pooled.rows.len(), serial.rows.len(), "{threads} threads");
            for (a, b) in pooled.rows.iter().zip(&serial.rows) {
                assert_eq!(a.event, b.event, "{threads} threads");
                assert_eq!(a.pearson.to_bits(), b.pearson.to_bits());
                assert_eq!(a.best.kind, b.best.kind);
                assert_eq!(a.best.r_squared.to_bits(), b.best.r_squared.to_bits());
                assert_eq!(a.fits.len(), b.fits.len());
            }
        }
    }

    #[test]
    fn render_shows_formula_and_r2() {
        let s = sweep_with(|t| 10.0 + 2.0 * t, |t| 100.0 / t);
        let text = EvSel::default().correlate(&s).render();
        assert!(text.contains("threads"));
        assert!(text.contains("R^2"));
        assert!(text.contains("y = "));
    }

    #[test]
    fn too_few_points_skipped() {
        let mut s = ParameterSweep::new("size");
        s.push(1.0, point(1, &[(HwEvent::Cycles, 10.0)]));
        s.push(2.0, point(2, &[(HwEvent::Cycles, 20.0)]));
        let rep = EvSel::default().correlate(&s);
        assert!(rep.rows.is_empty());
    }
}
