//! EvSel — selection through correlation (§IV-A).
//!
//! "The tool EvSel retrieves, measures, and presents all available
//! hardware counters to the user. In addition to identifying relevant
//! performance counters, EvSel helps developers to verify the
//! effectiveness of optimization techniques by comparing two versions or
//! parameter configurations of a program with respect to all performance
//! counter information. The tool varies specified input parameters in
//! order to determine functional dependencies between the input parameters
//! and each measured indicator."
//!
//! Two analyses, two submodules:
//! * [`compare`] — run-set comparison with Welch t-tests (Figs. 5, 8),
//! * [`regress`] — parameter sweeps with linear/quadratic/exponential
//!   regressions and R² (Fig. 9).

pub mod compare;
pub mod regress;

pub use compare::{ComparisonReport, ComparisonRow};
pub use regress::{CorrelationRow, ParameterSweep, SweepReport};

use np_counters::catalog::EventCatalog;
use np_counters::measurement::RunSet;

/// The EvSel tool: configuration shared by its analyses.
///
/// ```
/// use np_core::evsel::EvSel;
/// use np_core::runner::{MeasurementPlan, Runner};
/// use np_simulator::{HwEvent, MachineConfig};
/// use np_workloads::cache_miss::CacheMissKernel;
///
/// let runner = Runner::new(MachineConfig::two_socket_small());
/// let plan = MeasurementPlan::all_events(3, 1);
/// let a = runner.measure(&CacheMissKernel::row_major(128), &plan).unwrap();
/// let b = runner.measure(&CacheMissKernel::column_major(128), &plan).unwrap();
///
/// let report = EvSel::default().compare(&a, &b);
/// let l1 = report.row(HwEvent::L1dMiss).unwrap();
/// assert!(l1.relative_change > 1.0); // column-major misses far more
/// ```
pub struct EvSel {
    /// Event catalog (names and descriptions for the report).
    pub catalog: EventCatalog,
    /// Family-wise significance level (the paper reports findings at
    /// "over 99.9 %" ⇒ α = 0.001).
    pub alpha: f64,
    /// Apply Bonferroni correction across the tested events (§III-B-1's
    /// answer to the multiple-comparisons problem).
    pub bonferroni: bool,
}

impl Default for EvSel {
    fn default() -> Self {
        EvSel {
            catalog: EventCatalog::builtin(),
            alpha: 0.001,
            bonferroni: true,
        }
    }
}

impl EvSel {
    /// Compares two run sets event-by-event (the Fig. 5/8 view).
    pub fn compare(&self, a: &RunSet, b: &RunSet) -> ComparisonReport {
        compare::compare(self, a, b)
    }

    /// Correlates a swept input parameter with every event (the Fig. 9
    /// view).
    pub fn correlate(&self, sweep: &ParameterSweep) -> SweepReport {
        regress::correlate(self, sweep)
    }

    /// [`EvSel::correlate`] with the per-event regression rows fanned
    /// across `pool`; bit-identical to the serial sweep at any thread
    /// count (rows merge in event order before the stable strength sort).
    pub fn correlate_pool(&self, sweep: &ParameterSweep, pool: &np_parallel::Pool) -> SweepReport {
        regress::correlate_pool(self, sweep, pool)
    }
}
