//! Run-set comparison: "When selecting 2 measurements, a comparison,
//! including t-test is presented" (Fig. 5).
//!
//! Per event: the means of both run sets, the relative change, and a Welch
//! t-test with Bessel-corrected standard deviations. Events that stayed
//! zero everywhere are greyed out ("If a value remains zero for all
//! measurements, it is grayed out"); with Bonferroni enabled, the per-test
//! threshold is `α / #events`.

use super::EvSel;
use crate::report::{fmt_change, fmt_count, fmt_significance, render_table};
use np_counters::catalog::EventId;
use np_counters::measurement::RunSet;
use np_stats::correlate::bonferroni_threshold;
use np_stats::ttest::{welch_t_test, TTestResult};

/// One event's row in the comparison.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// The event.
    pub event: EventId,
    /// Mean over run set A.
    pub mean_a: f64,
    /// Mean over run set B.
    pub mean_b: f64,
    /// `(mean_b - mean_a) / mean_a`; infinite when A is zero and B is not.
    pub relative_change: f64,
    /// Welch t-test, when both samples admit one.
    pub ttest: Option<TTestResult>,
    /// Significant at the (possibly Bonferroni-corrected) level.
    pub significant: bool,
    /// Zero in every run of both sets — EvSel greys these out.
    pub grayed: bool,
}

/// The full comparison.
#[derive(Debug, Clone)]
pub struct ComparisonReport {
    /// Label of run set A.
    pub label_a: String,
    /// Label of run set B.
    pub label_b: String,
    /// Per-event rows, sorted by |relative change| descending (grayed rows
    /// last).
    pub rows: Vec<ComparisonRow>,
    /// The per-test significance threshold actually applied.
    pub effective_alpha: f64,
}

impl ComparisonReport {
    /// Row for one event.
    pub fn row(&self, event: EventId) -> Option<&ComparisonRow> {
        self.rows.iter().find(|r| r.event == event)
    }

    /// Only the significant rows (EvSel's icons: "this counter has changed
    /// significantly").
    pub fn significant_rows(&self) -> Vec<&ComparisonRow> {
        self.rows.iter().filter(|r| r.significant).collect()
    }

    /// Renders the Fig. 8-style table.
    pub fn render(&self) -> String {
        let mut out = format!("EvSel comparison: {} vs {}\n", self.label_a, self.label_b);
        out.push_str(&format!(
            "(per-test alpha = {:.2e})\n\n",
            self.effective_alpha
        ));
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.event.name().to_string(),
                    fmt_count(r.mean_a),
                    fmt_count(r.mean_b),
                    fmt_change(r.relative_change),
                    match &r.ttest {
                        Some(t) => fmt_significance(t.significance),
                        None => "-".to_string(),
                    },
                    if r.grayed {
                        "(zero)".to_string()
                    } else if r.significant {
                        "*".to_string()
                    } else {
                        String::new()
                    },
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["event", "mean A", "mean B", "change", "confidence", ""],
            &rows,
        ));
        out
    }
}

/// Performs the comparison for [`EvSel::compare`].
pub fn compare(evsel: &EvSel, a: &RunSet, b: &RunSet) -> ComparisonReport {
    // The union of events either set measured.
    let mut events = a.events();
    for e in b.events() {
        if !events.contains(&e) {
            events.push(e);
        }
    }
    let effective_alpha = if evsel.bonferroni {
        bonferroni_threshold(evsel.alpha, events.len())
    } else {
        evsel.alpha
    };

    let mut rows: Vec<ComparisonRow> = events
        .into_iter()
        .map(|event| {
            let sa = a.samples(event);
            let sb = b.samples(event);
            let mean = |s: &[f64]| {
                if s.is_empty() {
                    f64::NAN
                } else {
                    s.iter().sum::<f64>() / s.len() as f64
                }
            };
            let mean_a = mean(&sa);
            let mean_b = mean(&sb);
            let grayed = sa.iter().all(|&v| v == 0.0) && sb.iter().all(|&v| v == 0.0);
            let ttest = if grayed { None } else { welch_t_test(&sa, &sb) };
            let significant = ttest
                .as_ref()
                .is_some_and(|t| t.p_two_sided < effective_alpha);
            let relative_change = if mean_a == 0.0 {
                if mean_b == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (mean_b - mean_a) / mean_a
            };
            ComparisonRow {
                event,
                mean_a,
                mean_b,
                relative_change,
                ttest,
                significant,
                grayed,
            }
        })
        .collect();

    rows.sort_by(|x, y| {
        let key = |r: &ComparisonRow| {
            let c = r.relative_change.abs();
            (r.grayed, if c.is_finite() { -c } else { f64::NEG_INFINITY })
        };
        key(x)
            .partial_cmp(&key(y))
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    ComparisonReport {
        label_a: a.label.clone(),
        label_b: b.label.clone(),
        rows,
        effective_alpha,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_counters::measurement::Measurement;
    use np_simulator::HwEvent;

    fn runset(label: &str, event: EventId, values: &[f64]) -> RunSet {
        let mut rs = RunSet::new(label);
        for (i, &v) in values.iter().enumerate() {
            let mut m = Measurement::new(i as u64);
            m.values.insert(event, v);
            m.values.insert(HwEvent::HitmTransfer, 0.0);
            rs.runs.push(m);
        }
        rs
    }

    #[test]
    fn detects_large_significant_change() {
        let e = HwEvent::L1dMiss;
        let a = runset("A", e, &[100.0, 101.0, 99.0, 100.5, 99.5]);
        let b = runset("B", e, &[1100.0, 1101.0, 1099.0, 1100.5, 1099.5]);
        let evsel = EvSel {
            bonferroni: false,
            ..EvSel::default()
        };
        let rep = evsel.compare(&a, &b);
        let row = rep.row(e).unwrap();
        assert!(row.significant);
        assert!((row.relative_change - 10.0).abs() < 0.05);
        assert!(row.ttest.as_ref().unwrap().significance > 0.999);
    }

    #[test]
    fn zero_events_are_grayed_and_insignificant() {
        let a = runset("A", HwEvent::L1dMiss, &[1.0, 2.0, 3.0]);
        let b = runset("B", HwEvent::L1dMiss, &[1.0, 2.0, 3.0]);
        let rep = EvSel::default().compare(&a, &b);
        let row = rep.row(HwEvent::HitmTransfer).unwrap();
        assert!(row.grayed);
        assert!(!row.significant);
        // Grayed rows sort last.
        assert_eq!(rep.rows.last().unwrap().event, HwEvent::HitmTransfer);
    }

    #[test]
    fn bonferroni_tightens_threshold() {
        let e = HwEvent::L2Miss;
        // Borderline difference: place alpha between p and p·m so the
        // event passes only without the correction (two events are in the
        // union, so the corrected threshold is alpha/2).
        let a = runset("A", e, &[10.0, 11.0, 12.0, 10.5, 11.5]);
        let b = runset("B", e, &[12.0, 13.0, 14.0, 12.5, 13.5]);
        let p = np_stats::ttest::welch_t_test(&a.samples(e), &b.samples(e))
            .unwrap()
            .p_two_sided;
        let alpha = 1.5 * p;
        let loose = EvSel {
            alpha,
            bonferroni: false,
            ..EvSel::default()
        };
        let strict = EvSel {
            alpha,
            bonferroni: true,
            ..EvSel::default()
        };
        let r_loose = loose.compare(&a, &b);
        let r_strict = strict.compare(&a, &b);
        assert!(r_strict.effective_alpha < r_loose.effective_alpha);
        // The borderline event passes only without correction.
        assert!(r_loose.row(e).unwrap().significant);
        assert!(!r_strict.row(e).unwrap().significant);
    }

    #[test]
    fn render_contains_key_fields() {
        let e = HwEvent::FillBufferReject;
        let a = runset("cache-hit", e, &[26.0, 27.0, 25.0]);
        let b = runset("cache-miss", e, &[3_000_000.0, 3_000_100.0, 2_999_900.0]);
        let evsel = EvSel {
            bonferroni: false,
            ..EvSel::default()
        };
        let text = evsel.compare(&a, &b).render();
        assert!(text.contains("fill-buffer-rejects"));
        assert!(text.contains("3,000,000"));
        assert!(text.contains('x'), "large factors rendered as xN:\n{text}");
        assert!(text.contains("cache-hit") && text.contains("cache-miss"));
    }

    #[test]
    fn new_event_reports_infinite_change() {
        let e = HwEvent::HitmTransfer;
        let mut a = RunSet::new("A");
        let mut b = RunSet::new("B");
        for i in 0..3 {
            let mut ma = Measurement::new(i);
            ma.values.insert(e, 0.0);
            a.runs.push(ma);
            let mut mb = Measurement::new(i);
            mb.values.insert(e, 50.0 + i as f64);
            b.runs.push(mb);
        }
        let rep = EvSel::default().compare(&a, &b);
        let row = rep.row(e).unwrap();
        assert!(row.relative_change.is_infinite());
        assert!(!row.grayed);
    }
}
