//! Step 1: code-to-indicator analysis by extrapolation.
//!
//! "For many programs, measurements with common workloads can be performed
//! offline. For example, programmers would start by measuring small yet
//! typical workloads. Based on these measurements, programmers could
//! extrapolate performance indicators by continuously increasing the
//! workload sizes or measuring varying workloads. In this way, the
//! infeasible direct code-to-cost deduction can be circumvented" (§III-B).
//!
//! Implementation: per event, fit the best of the linear/quadratic/
//! exponential families over the measured sizes (the same machinery EvSel
//! uses) and evaluate the winner at the target size. Events whose best fit
//! explains too little variance are dropped — the "selection" the paper
//! demands, since "not all performance indicators are equally important,
//! and some might even be redundant".

use super::IndicatorVector;
use crate::evsel::ParameterSweep;
use np_counters::catalog::EventId;
use np_stats::regression::{best_fit, RegressionFit};
use std::collections::BTreeMap;

/// Per-event extrapolation models fitted over a workload-size sweep.
pub struct IndicatorExtrapolator {
    /// Event → winning fit.
    pub fits: BTreeMap<EventId, RegressionFit>,
    /// Minimum R² for an event to be considered extrapolatable.
    pub min_r_squared: f64,
}

impl IndicatorExtrapolator {
    /// Fits extrapolation models from a size sweep (the x-axis is the
    /// workload-size parameter).
    pub fn fit(sweep: &ParameterSweep, min_r_squared: f64) -> Self {
        let mut fits = BTreeMap::new();
        for event in sweep.events() {
            let (x, y) = sweep.series(event);
            if x.len() < 4 {
                continue;
            }
            if let Some((best, _)) = best_fit(&x, &y) {
                if best.r_squared >= min_r_squared {
                    fits.insert(event, best);
                }
            }
        }
        IndicatorExtrapolator {
            fits,
            min_r_squared,
        }
    }

    /// Events that survived selection.
    pub fn events(&self) -> Vec<EventId> {
        self.fits.keys().copied().collect()
    }

    /// Predicts the full indicator vector at `size`; `None` when no event
    /// is extrapolatable.
    pub fn predict(&self, size: f64) -> Option<IndicatorVector> {
        if self.fits.is_empty() {
            return None;
        }
        Some(
            self.fits
                .iter()
                .map(|(&e, f)| (e, f.predict(size).max(0.0)))
                .collect(),
        )
    }

    /// Predicts one event at `size`.
    pub fn predict_event(&self, event: EventId, size: f64) -> Option<f64> {
        self.fits.get(&event).map(|f| f.predict(size).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_counters::measurement::{Measurement, RunSet};
    use np_simulator::HwEvent;

    fn sweep() -> ParameterSweep {
        let mut s = ParameterSweep::new("size");
        // Zig-zag values no monotone family can explain (R² « 0.95).
        let noise = [50.0, 5.0, 95.0, 20.0, 60.0];
        for (k, &size) in [64.0, 128.0, 256.0, 512.0, 1024.0].iter().enumerate() {
            let mut rs = RunSet::new(format!("n{size}"));
            for rep in 0..3 {
                let mut m = Measurement::new(rep);
                // Loads scale linearly, misses quadratically, and one
                // event is pure noise.
                m.values
                    .insert(HwEvent::LoadRetired, 2.0 * size + rep as f64);
                m.values
                    .insert(HwEvent::L1dMiss, 0.01 * size * size + rep as f64);
                m.values
                    .insert(HwEvent::TimerInterrupt, noise[k] + rep as f64);
                rs.runs.push(m);
            }
            s.push(size, rs);
        }
        s
    }

    #[test]
    fn extrapolates_clean_scalings() {
        let ex = IndicatorExtrapolator::fit(&sweep(), 0.95);
        // Linear event predicted at 4096.
        let loads = ex.predict_event(HwEvent::LoadRetired, 4096.0).unwrap();
        assert!((loads - 8193.0).abs() < 50.0, "loads {loads}");
        // Quadratic event.
        let misses = ex.predict_event(HwEvent::L1dMiss, 4096.0).unwrap();
        assert!(
            (misses - 0.01 * 4096.0 * 4096.0).abs() / misses < 0.05,
            "misses {misses}"
        );
    }

    #[test]
    fn noise_events_filtered_out() {
        let ex = IndicatorExtrapolator::fit(&sweep(), 0.95);
        assert!(ex.predict_event(HwEvent::TimerInterrupt, 2048.0).is_none());
        assert!(ex.events().contains(&HwEvent::LoadRetired));
    }

    #[test]
    fn predict_vector_covers_surviving_events() {
        let ex = IndicatorExtrapolator::fit(&sweep(), 0.9);
        let v = ex.predict(2048.0).unwrap();
        assert!(v.contains_key(&HwEvent::LoadRetired));
        assert!(v.contains_key(&HwEvent::L1dMiss));
        assert!(v.values().all(|&x| x >= 0.0));
    }

    #[test]
    fn empty_extrapolator_predicts_none() {
        let s = ParameterSweep::new("size");
        let ex = IndicatorExtrapolator::fit(&s, 0.9);
        assert!(ex.predict(100.0).is_none());
    }
}
