//! The two-step performance assessment strategy (§III).
//!
//! "In contrast to classic single-step (code-to-cost) performance models,
//! we propose a two-step performance deduction strategy consisting of a
//! code-to-indicator and an indicator-to-cost analysis" (Fig. 4).
//!
//! * Step 1, **code-to-indicator** ([`extrapolate`]): "programmers would
//!   start by measuring small yet typical workloads. Based on these
//!   measurements, programmers could extrapolate performance indicators by
//!   continuously increasing the workload sizes."
//! * Step 2, **indicator-to-cost** ([`costmodel`]): a least-squares linear
//!   map from indicator vectors to cost (cycles), "less complex compared
//!   to the first step since hardware performance indicators relate to
//!   costs much more directly".
//!
//! [`TwoStepStrategy`] composes both and supports the *transfer* use
//! (Fig. 4b's "transfer" arrow): indicators extrapolated from machine A
//! feed the cost model fitted on machine B, predicting B's cost for a
//! workload size that was never run on B.

pub mod costmodel;
pub mod extrapolate;

pub use costmodel::CostModel;
pub use extrapolate::IndicatorExtrapolator;

use np_counters::catalog::EventId;
use np_counters::measurement::RunSet;
use std::collections::BTreeMap;

/// A vector of indicator values (event means).
pub type IndicatorVector = BTreeMap<EventId, f64>;

/// Extracts the indicator vector (per-event means) from a run set.
pub fn indicators_of(runs: &RunSet) -> IndicatorVector {
    runs.events()
        .into_iter()
        .filter_map(|e| runs.mean(e).map(|m| (e, m)))
        .collect()
}

/// The composed two-step strategy.
pub struct TwoStepStrategy {
    /// Step 1: indicator extrapolation over the workload-size parameter.
    pub extrapolator: IndicatorExtrapolator,
    /// Step 2: indicator → cost model.
    pub cost_model: CostModel,
}

impl TwoStepStrategy {
    /// Predicts the cost (cycles) at workload size `size`: extrapolates
    /// the indicators, then applies the cost model. Returns `None` when an
    /// indicator required by the cost model cannot be extrapolated.
    pub fn predict_cost(&self, size: f64) -> Option<f64> {
        let indicators = self.extrapolator.predict(size)?;
        self.cost_model.predict(&indicators)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_counters::measurement::Measurement;
    use np_simulator::HwEvent;

    #[test]
    fn indicators_are_event_means() {
        let mut rs = RunSet::new("x");
        for (i, v) in [10.0, 20.0].iter().enumerate() {
            let mut m = Measurement::new(i as u64);
            m.values.insert(HwEvent::L1dMiss, *v);
            rs.runs.push(m);
        }
        let ind = indicators_of(&rs);
        assert_eq!(ind[&HwEvent::L1dMiss], 15.0);
    }
}
