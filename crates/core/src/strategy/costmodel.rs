//! Step 2: indicator-to-cost analysis.
//!
//! "The second step consists of an indicator-to-cost analysis, which can
//! be considered less complex compared to the first step since hardware
//! performance indicators relate to costs much more directly" (§III-B).
//!
//! The model is linear least squares: `cost ≈ β₀ + Σ βᵢ · indicatorᵢ`,
//! fitted over measured (indicator vector, cycles) pairs with the QR
//! solver. Linearity is the physically-motivated choice — cycle counts
//! decompose additively into per-event penalty contributions (misses ×
//! latency etc.), which is why indicators relate to cost "much more
//! directly" than code does.

use super::IndicatorVector;
use np_counters::catalog::EventId;
use np_linalg::{lstsq, Matrix};

/// A fitted linear indicator→cost model.
pub struct CostModel {
    /// The indicator events used as features, in column order.
    pub features: Vec<EventId>,
    /// Coefficients: `[β₀, β₁, …]` (intercept first).
    pub beta: Vec<f64>,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
}

impl CostModel {
    /// Fits the model from training pairs. Uses the intersection of events
    /// present in every indicator vector as features. Requires more
    /// observations than features; returns `None` otherwise or when the
    /// design is degenerate.
    pub fn fit(pairs: &[(IndicatorVector, f64)]) -> Option<CostModel> {
        if pairs.len() < 3 {
            return None;
        }
        // Features: events present in every observation.
        let mut features: Vec<EventId> = pairs[0].0.keys().copied().collect();
        for (v, _) in pairs.iter().skip(1) {
            features.retain(|e| v.contains_key(e));
        }
        // Drop constant features (no identifiable coefficient).
        features.retain(|e| {
            let first = pairs[0].0[e];
            pairs.iter().any(|(v, _)| (v[e] - first).abs() > 1e-9)
        });
        if features.is_empty() {
            return None;
        }

        let n = pairs.len();
        let build = |feats: &[EventId], scales: &[f64]| -> (Matrix, Matrix) {
            let mut x = Matrix::zeros(n, feats.len() + 1);
            let mut y = Matrix::zeros(n, 1);
            for (i, (v, cost)) in pairs.iter().enumerate() {
                x[(i, 0)] = 1.0;
                for (j, e) in feats.iter().enumerate() {
                    x[(i, j + 1)] = v[e] / scales[j];
                }
                y[(i, 0)] = *cost;
            }
            (x, y)
        };
        let scale_of = |e: &EventId| -> f64 {
            let m = pairs.iter().map(|(v, _)| v[e].abs()).fold(0.0f64, f64::max);
            if m > 0.0 {
                m
            } else {
                1.0
            }
        };

        // Greedy forward selection: indicators are often collinear (many
        // events scale identically with workload size — the redundancy
        // §III-B-1 notes). Keep a feature only while the design stays
        // solvable and enough observations remain.
        let max_cost = pairs
            .iter()
            .map(|(_, c)| c.abs())
            .fold(0.0f64, f64::max)
            .max(1.0);
        let mut kept: Vec<EventId> = Vec::new();
        let mut kept_scales: Vec<f64> = Vec::new();
        for e in features {
            if pairs.len() < kept.len() + 3 {
                break;
            }
            let mut trial = kept.clone();
            let mut trial_scales = kept_scales.clone();
            trial.push(e);
            trial_scales.push(scale_of(&e));
            let (x, y) = build(&trial, &trial_scales);
            match lstsq(&x, &y) {
                // Near-collinear designs pass QR with exploding
                // coefficients; with unit-scaled columns a well-conditioned
                // fit keeps |β| within a few orders of the cost scale.
                Ok(sol)
                    if (0..sol.beta.rows()).all(|i| sol.beta[(i, 0)].abs() < 1e3 * max_cost) =>
                {
                    kept = trial;
                    kept_scales = trial_scales;
                }
                _ => {}
            }
        }
        if kept.is_empty() || pairs.len() < kept.len() + 2 {
            return None;
        }
        let features = kept;
        let scales = kept_scales;
        let k = features.len();
        let (x, y) = build(&features, &scales);
        let sol = lstsq(&x, &y).ok()?;
        let mut beta = vec![sol.beta[(0, 0)]];
        for (j, scale) in scales.iter().enumerate().take(k) {
            beta.push(sol.beta[(j + 1, 0)] / scale);
        }

        // R² on the training data.
        let mean_y: f64 = pairs.iter().map(|(_, c)| c).sum::<f64>() / n as f64;
        let tss: f64 = pairs.iter().map(|(_, c)| (c - mean_y) * (c - mean_y)).sum();
        let r_squared = if tss == 0.0 { 1.0 } else { 1.0 - sol.rss / tss };

        Some(CostModel {
            features,
            beta,
            r_squared,
        })
    }

    /// Predicts the cost for an indicator vector; `None` when a feature is
    /// missing.
    pub fn predict(&self, indicators: &IndicatorVector) -> Option<f64> {
        let mut cost = self.beta[0];
        for (j, e) in self.features.iter().enumerate() {
            cost += self.beta[j + 1] * indicators.get(e)?;
        }
        Some(cost)
    }

    /// Relative prediction error against a known cost.
    pub fn relative_error(&self, indicators: &IndicatorVector, actual: f64) -> Option<f64> {
        let predicted = self.predict(indicators)?;
        Some((predicted - actual).abs() / actual.abs().max(1e-12))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_simulator::HwEvent;
    use std::collections::BTreeMap;

    fn vec_of(pairs: &[(EventId, f64)]) -> IndicatorVector {
        pairs.iter().copied().collect::<BTreeMap<_, _>>()
    }

    /// Synthetic machine: cost = 1000 + 4·hits + 230·misses, with hits and
    /// misses varied independently so the design has full rank.
    fn training_data() -> Vec<(IndicatorVector, f64)> {
        let mut out = Vec::new();
        for i in 1..6 {
            for j in 1..5 {
                let hits = 1000.0 * i as f64;
                let misses = 40.0 * j as f64;
                let cost = 1000.0 + 4.0 * hits + 230.0 * misses;
                out.push((
                    vec_of(&[(HwEvent::L1dHit, hits), (HwEvent::L1dMiss, misses)]),
                    cost,
                ));
            }
        }
        out
    }

    #[test]
    fn recovers_linear_cost_structure() {
        let m = CostModel::fit(&training_data()).unwrap();
        assert!(m.r_squared > 0.999, "R² {}", m.r_squared);
        // Predict an unseen combination exactly (the model is exact).
        let probe = vec_of(&[(HwEvent::L1dHit, 12_345.0), (HwEvent::L1dMiss, 77.0)]);
        let expected = 1000.0 + 4.0 * 12_345.0 + 230.0 * 77.0;
        let got = m.predict(&probe).unwrap();
        assert!(
            (got - expected).abs() / expected < 1e-6,
            "{got} vs {expected}"
        );
    }

    #[test]
    fn missing_feature_fails_prediction() {
        let m = CostModel::fit(&training_data()).unwrap();
        let probe = vec_of(&[(HwEvent::L1dHit, 10.0)]);
        assert!(m.predict(&probe).is_none());
    }

    #[test]
    fn constant_features_dropped() {
        let mut data = training_data();
        for (v, _) in &mut data {
            v.insert(HwEvent::TimerInterrupt, 42.0);
        }
        let m = CostModel::fit(&data).unwrap();
        assert!(!m.features.contains(&HwEvent::TimerInterrupt));
    }

    #[test]
    fn too_little_data_rejected() {
        let data = training_data().into_iter().take(2).collect::<Vec<_>>();
        assert!(CostModel::fit(&data).is_none());
    }

    #[test]
    fn relative_error_reports_accuracy() {
        let m = CostModel::fit(&training_data()).unwrap();
        let probe = vec_of(&[(HwEvent::L1dHit, 5000.0), (HwEvent::L1dMiss, 100.0)]);
        let actual = 1000.0 + 4.0 * 5000.0 + 230.0 * 100.0;
        let err = m.relative_error(&probe, actual).unwrap();
        assert!(err < 1e-6);
        let err_off = m.relative_error(&probe, actual * 2.0).unwrap();
        assert!((err_off - 0.5).abs() < 1e-6);
    }
}
