//! Step 2: indicator-to-cost analysis.
//!
//! "The second step consists of an indicator-to-cost analysis, which can
//! be considered less complex compared to the first step since hardware
//! performance indicators relate to costs much more directly" (§III-B).
//!
//! The fitting machinery lives in `np_models::transfer` — the serving
//! layer (np-serve) evaluates the same model when transferring stored
//! indicator sets onto other machines, so the implementation is shared
//! rather than duplicated. This module keeps the historical `CostModel`
//! name for the strategy pipeline; the tests below pin the delegation.

pub use np_models::transfer::TransferModel as CostModel;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::IndicatorVector;
    use np_counters::catalog::EventId;
    use np_simulator::HwEvent;
    use std::collections::BTreeMap;

    fn vec_of(pairs: &[(EventId, f64)]) -> IndicatorVector {
        pairs.iter().copied().collect::<BTreeMap<_, _>>()
    }

    /// Synthetic machine: cost = 1000 + 4·hits + 230·misses, with hits and
    /// misses varied independently so the design has full rank.
    fn training_data() -> Vec<(IndicatorVector, f64)> {
        let mut out = Vec::new();
        for i in 1..6 {
            for j in 1..5 {
                let hits = 1000.0 * i as f64;
                let misses = 40.0 * j as f64;
                let cost = 1000.0 + 4.0 * hits + 230.0 * misses;
                out.push((
                    vec_of(&[(HwEvent::L1dHit, hits), (HwEvent::L1dMiss, misses)]),
                    cost,
                ));
            }
        }
        out
    }

    #[test]
    fn recovers_linear_cost_structure() {
        let m = CostModel::fit(&training_data()).unwrap();
        assert!(m.r_squared > 0.999, "R² {}", m.r_squared);
        // Predict an unseen combination exactly (the model is exact).
        let probe = vec_of(&[(HwEvent::L1dHit, 12_345.0), (HwEvent::L1dMiss, 77.0)]);
        let expected = 1000.0 + 4.0 * 12_345.0 + 230.0 * 77.0;
        let got = m.predict(&probe).unwrap();
        assert!(
            (got - expected).abs() / expected < 1e-6,
            "{got} vs {expected}"
        );
    }

    #[test]
    fn missing_feature_fails_prediction() {
        let m = CostModel::fit(&training_data()).unwrap();
        let probe = vec_of(&[(HwEvent::L1dHit, 10.0)]);
        assert!(m.predict(&probe).is_none());
    }

    #[test]
    fn constant_features_dropped() {
        let mut data = training_data();
        for (v, _) in &mut data {
            v.insert(HwEvent::TimerInterrupt, 42.0);
        }
        let m = CostModel::fit(&data).unwrap();
        assert!(!m.features.contains(&HwEvent::TimerInterrupt));
    }

    #[test]
    fn too_little_data_rejected() {
        let data = training_data().into_iter().take(2).collect::<Vec<_>>();
        assert!(CostModel::fit(&data).is_none());
    }

    #[test]
    fn relative_error_reports_accuracy() {
        let m = CostModel::fit(&training_data()).unwrap();
        let probe = vec_of(&[(HwEvent::L1dHit, 5000.0), (HwEvent::L1dMiss, 100.0)]);
        let actual = 1000.0 + 4.0 * 5000.0 + 230.0 * 100.0;
        let err = m.relative_error(&probe, actual).unwrap();
        assert!(err < 1e-6);
        let err_off = m.relative_error(&probe, actual * 2.0).unwrap();
        assert!((err_off - 0.5).abs() < 1e-6);
    }
}
