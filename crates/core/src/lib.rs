//! # np-core — the paper's contribution: EvSel, Memhist, Phasenprüfer and
//! the two-step performance assessment strategy
//!
//! Plauth et al. propose (§III) replacing monolithic code-to-cost models
//! with a **two-step strategy**: a *code-to-indicator* analysis (measure
//! hardware counters on small/typical workloads, extrapolate) followed by
//! an *indicator-to-cost* analysis (map indicators to costs, which
//! transfers across machines). Three tools support the strategy (§IV):
//!
//! * [`evsel`] — measures *all* available counters over repeated runs,
//!   compares program versions with Welch t-tests and correlates input
//!   parameters with counters via linear/quadratic/exponential regressions
//!   (Figs. 5, 8, 9).
//! * [`memhist`] — builds memory-load latency histograms from threshold-
//!   cycled PEBS measurements, in occurrences and cost modes, with a
//!   TCP remote probe (Figs. 6, 10).
//! * [`phasen`] — splits runs into ramp-up and computation phases by
//!   segmented regression over the procfs memory footprint and attributes
//!   counter records to the phases (Figs. 7, 11), with the k-phase
//!   extension the paper sketches.
//! * [`strategy`] — the two-step pipeline itself: indicator extrapolation
//!   over workload sizes, least-squares indicator→cost models, and
//!   cross-machine transfer.
//! * [`runner`] — orchestration: run a workload under a measurement plan
//!   (batched or multiplexed acquisition, parallel repetitions).
//! * [`annotate`] — the §VI outlook implemented: per-source-region event
//!   attribution ("the mapping from events to lines of code").

pub mod annotate;
pub mod balance;
pub mod c2c;
pub mod capture;
pub mod evsel;
pub mod exchange;
pub mod memhist;
pub mod objprof;
pub mod phasen;
pub mod report;
pub mod runner;
pub mod session;
pub mod strategy;

pub use capture::{Capture, NodeSeriesObserver, SeriesDoc, Timeline};
pub use evsel::{ComparisonReport, EvSel, ParameterSweep};
pub use memhist::{Memhist, MemhistConfig, MemhistResult};
pub use phasen::{PhaseDetector, PhaseReport, Phasenpruefer};
pub use runner::{MeasurementPlan, Runner, SampledCampaign};
pub use strategy::{CostModel, IndicatorExtrapolator, TwoStepStrategy};
