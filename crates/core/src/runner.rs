//! Run orchestration: workloads × measurement plans → run sets.
//!
//! EvSel "was designed to measure all performance counters during the
//! whole program run and does not perform event cycling thus. Since only a
//! limited number of registers is available for measuring, program runs
//! are repeated" (§IV-A-1). A [`MeasurementPlan`] captures those choices
//! (which events, how many repetitions, batched vs multiplexed); the
//! [`Runner`] executes the plan, fanning independent simulated runs across
//! host cores with the np-parallel pool — whose merge-in-submission-order
//! contract is what keeps the campaign bit-identical to a serial loop at
//! every thread count.

use crate::capture::NodeSeriesObserver;
use np_counters::acquisition::{
    measure_batched, measure_batched_resilient, measure_multiplexed, AcquisitionMode,
};
use np_counters::catalog::{EventCatalog, EventId};
use np_counters::measurement::{Measurement, RunSet};
use np_counters::pmu::PmuModel;
use np_parallel::{ChunkProfile, Pool, Schedule};
use np_resilience::{BreakerConfig, CircuitBreaker, FaultInjector, RetryPolicy};
use np_simulator::{MachineConfig, MachineSim, Program};
use np_telemetry::timeseries::Sampler;
use np_workloads::Workload;

/// What to measure and how.
#[derive(Debug, Clone)]
pub struct MeasurementPlan {
    /// Events to cover.
    pub events: Vec<EventId>,
    /// Identically-configured repetitions (the sample size for t-tests;
    /// the paper's EvSel takes "a number of repetitions").
    pub repetitions: usize,
    /// Register acquisition mode.
    pub mode: AcquisitionMode,
    /// Seed of the first repetition; repetition `r` uses `base_seed + r`.
    pub base_seed: u64,
    /// The PMU register model.
    pub pmu: PmuModel,
}

impl MeasurementPlan {
    /// Measures *every* catalog event with batched runs — EvSel's default
    /// posture ("EvSel can measure all counters").
    pub fn all_events(repetitions: usize, base_seed: u64) -> Self {
        MeasurementPlan {
            events: EventCatalog::builtin().ids(),
            repetitions: repetitions.max(2),
            mode: AcquisitionMode::BatchedRuns,
            base_seed,
            pmu: PmuModel::default(),
        }
    }

    /// Measures a specific event list.
    pub fn events(events: Vec<EventId>, repetitions: usize, base_seed: u64) -> Self {
        MeasurementPlan {
            events,
            repetitions: repetitions.max(2),
            mode: AcquisitionMode::BatchedRuns,
            base_seed,
            pmu: PmuModel::default(),
        }
    }

    /// Switches to multiplexed acquisition (for the ablation).
    pub fn multiplexed(mut self) -> Self {
        self.mode = AcquisitionMode::Multiplexed;
        self
    }

    /// Total simulated runs this plan will execute.
    pub fn total_runs(&self) -> usize {
        match self.mode {
            AcquisitionMode::BatchedRuns => self.repetitions * self.pmu.runs_needed(&self.events),
            AcquisitionMode::Multiplexed => self.repetitions,
        }
    }
}

/// Fault policy for a resilient measurement campaign.
///
/// A campaign is a sequence of repetitions; each repetition retries its
/// simulated runs per [`RetryPolicy`], and a shared [`CircuitBreaker`]
/// stops hammering an acquisition path that keeps failing. The campaign
/// degrades gracefully: it succeeds with however many repetitions
/// survived, as long as at least `min_repetitions` did.
#[derive(Debug, Clone)]
pub struct CampaignPolicy {
    /// Per-repetition retry schedule for transient acquisition failures.
    pub retry: RetryPolicy,
    /// Breaker thresholds shared by every repetition of the campaign.
    pub breaker: BreakerConfig,
    /// Minimum surviving repetitions for the campaign to count. Fewer
    /// than this (after retries and breaker skips) is a hard error.
    pub min_repetitions: usize,
}

impl Default for CampaignPolicy {
    fn default() -> Self {
        CampaignPolicy {
            retry: RetryPolicy::new(3),
            breaker: BreakerConfig::default(),
            min_repetitions: 1,
        }
    }
}

/// What a sampled campaign produced: the measurements, the merged
/// deterministic time-series capture, and the pool's worker profile.
#[derive(Debug)]
pub struct SampledCampaign {
    /// The per-repetition measurements (same values the plain batched
    /// path records for the same plan).
    pub runs: RunSet,
    /// Merged per-repetition, per-node, phase-attributed series
    /// (`rep<R>.node<N>.<event>`), timestamped in simulated cycles.
    pub sampler: Sampler,
    /// Per-chunk worker attribution from the pool (wall-clock ns).
    pub profile: Vec<ChunkProfile>,
    /// Pool worker count the campaign ran with.
    pub workers: usize,
}

/// Executes measurement plans against one simulated machine.
pub struct Runner {
    sim: MachineSim,
    pool: Pool,
}

impl Runner {
    /// Creates a runner for `machine`.
    pub fn new(machine: MachineConfig) -> Self {
        Runner {
            sim: MachineSim::new(machine),
            pool: Pool::default(),
        }
    }

    /// Wraps an existing simulator.
    pub fn from_sim(sim: MachineSim) -> Self {
        Runner {
            sim,
            pool: Pool::default(),
        }
    }

    /// Sets the worker-thread count for parallel campaign execution.
    /// Purely a throughput knob: measured values are bit-identical for
    /// every choice (see the np-parallel determinism contract).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = Pool::new(threads);
        self
    }

    /// The pool that fans out batched repetitions.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &MachineSim {
        &self.sim
    }

    /// Measures a workload under `plan`. Returns an error for empty plans.
    pub fn measure(
        &self,
        workload: &dyn Workload,
        plan: &MeasurementPlan,
    ) -> Result<RunSet, String> {
        let program = workload.build(self.sim.config());
        let mut set = self.measure_program(&program, plan)?;
        set.label = workload.name();
        Ok(set)
    }

    /// Measures an already-built program under `plan`.
    pub fn measure_program(
        &self,
        program: &Program,
        plan: &MeasurementPlan,
    ) -> Result<RunSet, String> {
        if plan.events.is_empty() {
            return Err("measurement plan has no events".into());
        }
        if plan.repetitions == 0 {
            return Err("measurement plan has no repetitions".into());
        }
        let _span = np_telemetry::span!("runner.measure", "runner");
        np_telemetry::counter!("runner.campaigns").inc();
        np_telemetry::counter!("runner.repetitions").add(plan.repetitions as u64);
        match plan.mode {
            AcquisitionMode::BatchedRuns => self.measure_batched_parallel(program, plan),
            AcquisitionMode::Multiplexed => measure_multiplexed(
                &self.sim,
                program,
                &plan.events,
                plan.repetitions,
                plan.base_seed,
                &plan.pmu,
            ),
        }
    }

    /// Measures a workload under `plan` with fault tolerance: retries,
    /// a circuit breaker, and graceful degradation to fewer repetitions.
    pub fn measure_resilient(
        &self,
        workload: &dyn Workload,
        plan: &MeasurementPlan,
        policy: &CampaignPolicy,
        faults: &dyn FaultInjector,
    ) -> Result<RunSet, String> {
        let program = workload.build(self.sim.config());
        let mut set = self.measure_program_resilient(&program, plan, policy, faults)?;
        set.label = workload.name();
        Ok(set)
    }

    /// Resilient variant of [`Runner::measure_program`].
    ///
    /// Repetitions run serially so the breaker sees failures in order;
    /// each repetition is still the same independent `(program, seed)`
    /// simulation, so on a clean link the values are bit-identical to
    /// the parallel path. Skipped and failed repetitions are visible in
    /// telemetry (`runner.skipped_repetitions`, `runner.failed_repetitions`)
    /// and the breaker exports its state under `runner.circuit.*`.
    pub fn measure_program_resilient(
        &self,
        program: &Program,
        plan: &MeasurementPlan,
        policy: &CampaignPolicy,
        faults: &dyn FaultInjector,
    ) -> Result<RunSet, String> {
        if plan.events.is_empty() {
            return Err("measurement plan has no events".into());
        }
        if plan.repetitions == 0 {
            return Err("measurement plan has no repetitions".into());
        }
        let _span = np_telemetry::span!("runner.measure_resilient", "runner");
        np_telemetry::counter!("runner.campaigns").inc();
        np_telemetry::counter!("runner.repetitions").add(plan.repetitions as u64);
        let breaker = CircuitBreaker::new("runner.circuit", policy.breaker.clone());
        let mut runs: Vec<Measurement> = Vec::with_capacity(plan.repetitions);
        let mut last_err: Option<String> = None;
        for rep in 0..plan.repetitions {
            if !breaker.allow() {
                np_telemetry::counter!("runner.skipped_repetitions").inc();
                continue;
            }
            let seed = plan.base_seed + rep as u64;
            let outcome = match plan.mode {
                AcquisitionMode::BatchedRuns => measure_batched_resilient(
                    &self.sim,
                    program,
                    &plan.events,
                    1,
                    seed,
                    &plan.pmu,
                    &policy.retry,
                    faults,
                ),
                // Multiplexing measures everything in one run; there is no
                // batch boundary to retry, so it runs unguarded.
                AcquisitionMode::Multiplexed => {
                    measure_multiplexed(&self.sim, program, &plan.events, 1, seed, &plan.pmu)
                }
            };
            match outcome {
                Ok(one) => {
                    breaker.record_success();
                    np_telemetry::counter!("runner.reps_done").inc();
                    runs.extend(one.runs);
                }
                Err(e) => {
                    breaker.record_failure();
                    np_telemetry::counter!("runner.failed_repetitions").inc();
                    last_err = Some(e);
                }
            }
        }
        if runs.len() < policy.min_repetitions {
            return Err(format!(
                "campaign degraded below minimum: {}/{} repetitions survived (need {}): {}",
                runs.len(),
                plan.repetitions,
                policy.min_repetitions,
                last_err.unwrap_or_else(|| "no repetition attempted".into()),
            ));
        }
        Ok(RunSet {
            runs,
            label: "batched".into(),
        })
    }

    /// [`Runner::measure_program_sampled`] over a workload.
    pub fn measure_sampled(
        &self,
        workload: &dyn Workload,
        plan: &MeasurementPlan,
        capacity: usize,
    ) -> Result<SampledCampaign, String> {
        let program = workload.build(self.sim.config());
        let mut campaign = self.measure_program_sampled(&program, plan, capacity)?;
        campaign.runs.label = workload.name();
        Ok(campaign)
    }

    /// Batched measurement with a per-repetition time-series capture.
    ///
    /// Every repetition runs the simulation once under a
    /// [`NodeSeriesObserver`] (timestamps in simulated cycles, phase
    /// `measure`), into its **own** sampler; the pool hands repetitions
    /// back in submission order and the samplers merge serially under
    /// `rep<R>.` prefixes. The merged capture is therefore a pure
    /// function of the plan — byte-identical across runs and across
    /// pool thread counts. The pool's [`ChunkProfile`] rides along for
    /// the worker timeline (wall-clock, intentionally separate from the
    /// deterministic capture).
    ///
    /// Event values are read straight off the observed run's counters —
    /// identical to what batched acquisition records for the same
    /// `(program, seed)`, without paying for one simulation per
    /// register batch.
    pub fn measure_program_sampled(
        &self,
        program: &Program,
        plan: &MeasurementPlan,
        capacity: usize,
    ) -> Result<SampledCampaign, String> {
        if plan.events.is_empty() {
            return Err("measurement plan has no events".into());
        }
        if plan.repetitions == 0 {
            return Err("measurement plan has no repetitions".into());
        }
        let _span = np_telemetry::span!("runner.measure_sampled", "runner");
        np_telemetry::counter!("runner.campaigns").inc();
        np_telemetry::counter!("runner.repetitions").add(plan.repetitions as u64);
        // One chunk per repetition, pinned: each item is a whole observed
        // simulation (far above the adaptive work floor), and the worker
        // timeline's contract is per-repetition attribution — the same
        // chunk geometry at every thread count, including the inline
        // single-worker path.
        let pool = Pool::with_config(np_parallel::PoolConfig {
            threads: self.pool.threads(),
            chunk_size: Some(1),
            ..np_parallel::PoolConfig::default()
        });
        let report = pool.run_report(
            plan.repetitions,
            |rep| {
                let _phase = np_telemetry::phase("measure");
                let seed = plan.base_seed + rep as u64;
                let mut obs = NodeSeriesObserver::new(self.sim.config().topology.clone(), capacity);
                let result = match self.sim.run_observed(program, seed, &mut obs) {
                    Ok(r) => r,
                    Err(e) => {
                        return (Err(format!("invalid program: {e}")), obs.into_sampler());
                    }
                };
                let mut m = Measurement::new(seed);
                for &e in &plan.events {
                    m.values.insert(e, result.total(e) as f64);
                }
                m.cycles = result.cycles;
                np_telemetry::counter!("runner.reps_done").inc();
                (Ok(m), obs.into_sampler())
            },
            &Schedule::Free,
        );
        let mut runs = Vec::with_capacity(plan.repetitions);
        let mut sampler = Sampler::new(capacity);
        for (rep, (m, rep_sampler)) in report.results.into_iter().enumerate() {
            runs.push(m?);
            sampler.merge_prefixed(&format!("rep{rep}."), &rep_sampler);
        }
        Ok(SampledCampaign {
            runs: RunSet {
                runs,
                label: "sampled".into(),
            },
            sampler,
            profile: report.profile,
            workers: self.pool.threads(),
        })
    }

    /// Batched acquisition with repetitions fanned across the pool.
    /// Results are bit-identical to the serial path: each repetition is an
    /// independent `(program, seed)` simulation, and the pool merges in
    /// submission order.
    fn measure_batched_parallel(
        &self,
        program: &Program,
        plan: &MeasurementPlan,
    ) -> Result<RunSet, String> {
        let runs: Vec<Measurement> = self
            .pool
            .try_run(plan.repetitions, |rep| {
                // Occupancy gauge brackets the repetition so a trace shows
                // how many pool workers the fan-out actually kept busy.
                let _rep_span = np_telemetry::span!("runner.repetition", "runner");
                np_telemetry::gauge!("runner.active_workers").add(1);
                let one = measure_batched(
                    &self.sim,
                    program,
                    &plan.events,
                    1,
                    plan.base_seed + rep as u64,
                    &plan.pmu,
                )?;
                np_telemetry::gauge!("runner.active_workers").add(-1);
                np_telemetry::counter!("runner.reps_done").inc();
                one.runs
                    .into_iter()
                    .next()
                    .ok_or_else(|| "repetition produced no measurement".to_string())
            })
            .map_err(|e| e.to_string())?;
        Ok(RunSet {
            runs,
            label: "batched".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_simulator::HwEvent;
    use np_workloads::cache_miss::CacheMissKernel;

    fn machine() -> MachineConfig {
        let mut cfg = MachineConfig::two_socket_small();
        cfg.noise.timer_interval = 5_000;
        cfg.noise.dram_jitter = 0.05;
        cfg
    }

    #[test]
    fn plan_accounting() {
        let plan = MeasurementPlan::all_events(3, 1);
        // 33 programmable events at 4 slots → 9 runs per repetition.
        assert_eq!(plan.total_runs(), 3 * 9);
        let mux = MeasurementPlan::all_events(3, 1).multiplexed();
        assert_eq!(mux.total_runs(), 3);
    }

    #[test]
    fn measure_produces_labelled_runs() {
        let runner = Runner::new(machine());
        let plan = MeasurementPlan::events(
            vec![HwEvent::Cycles, HwEvent::Instructions, HwEvent::L1dMiss],
            3,
            42,
        );
        let rs = runner
            .measure(&CacheMissKernel::row_major(48), &plan)
            .unwrap();
        assert_eq!(rs.len(), 3);
        assert!(rs.label.contains("row-major"));
        assert!(rs.mean(HwEvent::Instructions).unwrap() > 0.0);
    }

    #[test]
    fn parallel_batched_matches_serial() {
        let runner = Runner::new(machine());
        let w = CacheMissKernel::column_major(32);
        let program = w.build(runner.sim().config());
        let plan = MeasurementPlan::events(
            vec![HwEvent::Cycles, HwEvent::L1dMiss, HwEvent::L2Miss],
            4,
            7,
        );
        let par = runner.measure_program(&program, &plan).unwrap();
        let ser = np_counters::acquisition::measure_batched(
            runner.sim(),
            &program,
            &plan.events,
            4,
            7,
            &plan.pmu,
        )
        .expect("valid program");
        for (a, b) in par.runs.iter().zip(&ser.runs) {
            assert_eq!(a.values, b.values);
        }
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        let w = CacheMissKernel::row_major(32);
        let plan = MeasurementPlan::events(
            vec![HwEvent::Cycles, HwEvent::L1dMiss, HwEvent::L3Access],
            5,
            21,
        );
        let baseline = Runner::new(machine())
            .with_threads(1)
            .measure(&w, &plan)
            .unwrap();
        for threads in [2, 8] {
            let rs = Runner::new(machine())
                .with_threads(threads)
                .measure(&w, &plan)
                .unwrap();
            assert_eq!(rs.len(), baseline.len(), "{threads} threads");
            for (a, b) in rs.runs.iter().zip(&baseline.runs) {
                assert_eq!(a.values, b.values, "{threads} threads");
            }
        }
    }

    /// `machine()` with a timeslice fine enough that small kernels cross
    /// several sampling boundaries.
    fn sampled_machine() -> MachineConfig {
        let mut cfg = machine();
        cfg.timeslice_cycles = 2_000;
        cfg
    }

    #[test]
    fn sampled_campaign_is_deterministic_across_thread_counts() {
        let w = CacheMissKernel::row_major(32);
        let plan = MeasurementPlan::events(
            vec![HwEvent::Cycles, HwEvent::L1dMiss, HwEvent::L3Access],
            3,
            21,
        );
        let baseline = Runner::new(sampled_machine())
            .with_threads(1)
            .measure_sampled(&w, &plan, 128)
            .unwrap();
        assert!(!baseline.sampler.is_empty());
        let base_json = crate::capture::Capture::from_sampler(
            "two-socket",
            "row-major",
            21,
            3,
            &baseline.sampler,
        );
        for threads in [2, 8] {
            let c = Runner::new(sampled_machine())
                .with_threads(threads)
                .measure_sampled(&w, &plan, 128)
                .unwrap();
            let json =
                crate::capture::Capture::from_sampler("two-socket", "row-major", 21, 3, &c.sampler);
            assert_eq!(
                serde_json::to_string(&base_json).unwrap(),
                serde_json::to_string(&json).unwrap(),
                "{threads} threads"
            );
            // Measured values match the unsampled batched campaign too.
            for (a, b) in c.runs.runs.iter().zip(&baseline.runs.runs) {
                assert_eq!(a.values, b.values, "{threads} threads");
            }
        }
        // And the measurements agree with the plain batched path.
        let plain = Runner::new(sampled_machine())
            .with_threads(1)
            .measure(&w, &plan)
            .unwrap();
        for (a, b) in baseline.runs.runs.iter().zip(&plain.runs) {
            assert_eq!(a.values, b.values);
        }
    }

    #[test]
    fn sampled_capture_attributes_the_measure_phase() {
        let w = CacheMissKernel::row_major(32);
        let plan = MeasurementPlan::events(vec![HwEvent::Cycles], 2, 3);
        let c = Runner::new(sampled_machine())
            .with_threads(2)
            .measure_sampled(&w, &plan, 64)
            .unwrap();
        let (_, series) = c.sampler.iter().next().expect("series recorded");
        let phases = c.sampler.phases();
        assert!(series
            .bins
            .iter()
            .all(|b| phases[b.phase as usize] == "measure"));
        // The worker profile covers every chunk the fan-out produced.
        assert!(!c.profile.is_empty());
        assert_eq!(
            c.profile.iter().map(|p| p.chunk).collect::<Vec<_>>(),
            (0..c.profile.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_plans_rejected() {
        let runner = Runner::new(machine());
        let w = CacheMissKernel::row_major(16);
        let p = w.build(runner.sim().config());
        let empty = MeasurementPlan {
            events: vec![],
            ..MeasurementPlan::all_events(2, 1)
        };
        assert!(runner.measure_program(&p, &empty).is_err());
    }

    #[test]
    fn resilient_campaign_matches_plain_on_a_clean_link() {
        let runner = Runner::new(machine());
        let w = CacheMissKernel::row_major(32);
        let program = w.build(runner.sim().config());
        let plan = MeasurementPlan::events(vec![HwEvent::Cycles, HwEvent::L1dMiss], 3, 11);
        let plain = runner.measure_program(&program, &plan).unwrap();
        let resilient = runner
            .measure_program_resilient(
                &program,
                &plan,
                &CampaignPolicy::default(),
                &np_resilience::NoFaults,
            )
            .unwrap();
        assert_eq!(plain.len(), resilient.len());
        for (a, b) in plain.runs.iter().zip(&resilient.runs) {
            assert_eq!(a.values, b.values);
        }
    }

    #[test]
    fn resilient_campaign_retries_through_transient_faults() {
        let runner = Runner::new(machine());
        let w = CacheMissKernel::row_major(24);
        let program = w.build(runner.sim().config());
        let plan = MeasurementPlan::events(vec![HwEvent::Cycles], 3, 5);
        // Two consecutive drops: repetition 1 burns both on attempts 1-2
        // and succeeds on attempt 3; the rest run clean.
        let faults = np_resilience::ScriptedFaults::new().inject_n(
            "acq.batch_run",
            np_resilience::Fault::DropConnection,
            2,
        );
        let policy = CampaignPolicy {
            retry: RetryPolicy::immediate(3),
            ..CampaignPolicy::default()
        };
        let rs = runner
            .measure_program_resilient(&program, &plan, &policy, &faults)
            .unwrap();
        assert_eq!(rs.len(), 3);
        assert_eq!(faults.remaining(), 0);
    }

    #[test]
    fn campaign_degrades_to_surviving_repetitions() {
        let runner = Runner::new(machine());
        let w = CacheMissKernel::row_major(24);
        let program = w.build(runner.sim().config());
        let plan = MeasurementPlan::events(vec![HwEvent::Cycles], 4, 5);
        // Two consecutive drops exhaust repetition 1's retry budget; the
        // other three repetitions survive untouched.
        let faults = np_resilience::ScriptedFaults::new().inject_n(
            "acq.batch_run",
            np_resilience::Fault::DropConnection,
            2,
        );
        let policy = CampaignPolicy {
            retry: RetryPolicy::immediate(2),
            min_repetitions: 2,
            ..CampaignPolicy::default()
        };
        let rs = runner
            .measure_program_resilient(&program, &plan, &policy, &faults)
            .unwrap();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn open_circuit_skips_remaining_repetitions() {
        let runner = Runner::new(machine());
        let w = CacheMissKernel::row_major(24);
        let program = w.build(runner.sim().config());
        let plan = MeasurementPlan::events(vec![HwEvent::Cycles], 6, 5);
        // Every attempt faults: two repetitions fail, the breaker trips,
        // and the remaining four are skipped without touching the script.
        let faults = np_resilience::ScriptedFaults::new().inject_n(
            "acq.batch_run",
            np_resilience::Fault::DropConnection,
            100,
        );
        let policy = CampaignPolicy {
            retry: RetryPolicy::immediate(1),
            breaker: np_resilience::BreakerConfig {
                failure_threshold: 2,
                cooldown: std::time::Duration::from_secs(60),
            },
            min_repetitions: 1,
        };
        let err = runner
            .measure_program_resilient(&program, &plan, &policy, &faults)
            .unwrap_err();
        assert!(err.contains("0/6"), "{err}");
        // Only the two pre-trip repetitions consumed faults.
        assert_eq!(faults.remaining(), 98);
    }

    #[test]
    fn repetitions_vary_under_noise() {
        let runner = Runner::new(machine());
        let plan = MeasurementPlan::events(vec![HwEvent::Cycles], 5, 9);
        let rs = runner
            .measure(&CacheMissKernel::column_major(48), &plan)
            .unwrap();
        let cycles = rs.samples(HwEvent::Cycles);
        assert!(cycles.windows(2).any(|w| w[0] != w[1]), "{cycles:?}");
    }
}
