//! Phasenprüfer — program run phases (§IV-C).
//!
//! "The tool Phasenprüfer was developed to gain insights about the ramp-up
//! and the computation phase of an application. … the memory footprint
//! (reserved memory, obtained through procfs) is used to determine the
//! phases. … With the help of segmented regression, Phasenprüfer models
//! the phases as functions and finds the phase transition" (Fig. 7).
//!
//! Two detectors are provided:
//! * the paper's **footprint detector** (segmented linear regression by
//!   exhaustive pivot search), including the k-phase extension it
//!   sketches for BSP supersteps, and
//! * a **counter-based detector**, which the authors tried and rejected
//!   ("Attempts at using performance counters for phase detection failed
//!   due to strong statistical fluctuations") — kept so the failure can be
//!   reproduced as an ablation.
//!
//! After detection, counter records are attributed per phase: "In order to
//! attribute perf event measurements to different phases, Phasenprüfer
//! records and analyzes performance counters for the two phases
//! separately."

use crate::report::{fmt_count, render_table};
use np_counters::catalog::EventId;
use np_counters::procfs::{sample_footprint, to_regression_inputs};
use np_simulator::{Counters, HwEvent, MachineSim, Program, SimObserver};
use np_stats::segmented::{segmented_fit, segmented_fit_k, SegmentedFit};
use std::collections::BTreeMap;

/// Which signal drives phase detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseDetector {
    /// The paper's choice: the procfs memory footprint.
    Footprint,
    /// The rejected alternative: a hardware counter's per-slice rate.
    Counter(HwEvent),
}

/// A detected phase split.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Resampled signal `(cycles, value)` the detection ran on.
    pub samples: Vec<(u64, u64)>,
    /// Sample index of the first point of phase 2.
    pub pivot_index: usize,
    /// Simulated time of the phase transition, cycles.
    pub pivot_time: u64,
    /// The two-segment fit.
    pub fit: SegmentedFit,
}

impl PhaseReport {
    /// Slope of the ramp-up fit (signal units per sample).
    pub fn ramp_slope(&self) -> f64 {
        self.fit.before.coefficients[1]
    }

    /// Slope of the computation-phase fit.
    pub fn compute_slope(&self) -> f64 {
        self.fit.after.coefficients[1]
    }
}

/// Counters attributed to each detected phase.
#[derive(Debug, Clone)]
pub struct PhaseAttribution {
    /// Phase boundaries in cycles: `[0, pivot, end]` for two phases.
    pub boundaries: Vec<u64>,
    /// One `event -> count` map per phase.
    pub per_phase: Vec<BTreeMap<EventId, f64>>,
}

impl PhaseAttribution {
    /// Renders the per-phase table (the Fig. 11c view, as text).
    pub fn render(&self, events: &[EventId]) -> String {
        let mut headers: Vec<String> = vec!["event".into()];
        for i in 0..self.per_phase.len() {
            headers.push(format!("phase {}", i + 1));
        }
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<String>> = events
            .iter()
            .map(|e| {
                let mut row = vec![e.name().to_string()];
                for phase in &self.per_phase {
                    row.push(fmt_count(phase.get(e).copied().unwrap_or(0.0)));
                }
                row
            })
            .collect();
        render_table(&headers_ref, &rows)
    }
}

/// The Phasenprüfer tool.
///
/// ```
/// use np_core::phasen::Phasenpruefer;
/// use np_simulator::{HwEvent, MachineConfig, MachineSim};
/// use np_workloads::phases::PhaseTraceKernel;
/// use np_workloads::Workload;
///
/// let sim = MachineSim::new(MachineConfig::two_socket_small());
/// let trace = PhaseTraceKernel::chrome_startup().build(sim.config());
///
/// let (report, phases) = Phasenpruefer::default()
///     .measure(&sim, &trace, 1, &[HwEvent::LoadRetired])
///     .unwrap();
/// // Ramp-up allocates fast; computation keeps a flat footprint.
/// assert!(report.ramp_slope() > report.compute_slope().abs());
/// assert_eq!(phases.per_phase.len(), 2);
/// ```
pub struct Phasenpruefer {
    /// Resampling interval for the footprint signal, in cycles.
    pub sample_interval: u64,
    /// Detection signal.
    pub detector: PhaseDetector,
}

impl Default for Phasenpruefer {
    fn default() -> Self {
        Phasenpruefer {
            sample_interval: 50_000,
            detector: PhaseDetector::Footprint,
        }
    }
}

/// Observer recording per-timeslice counter totals and footprints.
struct SliceRecorder {
    times: Vec<u64>,
    totals: Vec<[u64; HwEvent::COUNT]>,
    footprints: Vec<u64>,
}

impl SimObserver for SliceRecorder {
    fn on_timeslice(&mut self, now: u64, counters: &Counters, footprint: u64) {
        self.times.push(now);
        self.totals.push(counters.totals());
        self.footprints.push(footprint);
    }
}

impl Phasenpruefer {
    /// Detects phases in an already-recorded footprint series.
    pub fn detect(&self, footprint: &[(u64, u64)]) -> Option<PhaseReport> {
        let samples = sample_footprint(footprint, self.sample_interval);
        let (x, y) = to_regression_inputs(&samples);
        let fit = segmented_fit(&x, &y)?;
        let pivot_index = fit.pivot;
        let pivot_time = samples.get(pivot_index).map(|&(t, _)| t)?;
        Some(PhaseReport {
            samples,
            pivot_index,
            pivot_time,
            fit,
        })
    }

    /// [`Phasenpruefer::detect`] with the exhaustive pivot scan fanned
    /// across `pool` via [`np_stats::segmented::segmented_fit_pool`].
    /// Bit-identical to the sequential detector at any thread count (the
    /// pooled fit preserves the earliest-pivot tie-break).
    pub fn detect_pool(
        &self,
        footprint: &[(u64, u64)],
        pool: &np_parallel::Pool,
    ) -> Option<PhaseReport> {
        let samples = sample_footprint(footprint, self.sample_interval);
        let (x, y) = to_regression_inputs(&samples);
        let fit = np_stats::segmented::segmented_fit_pool(&x, &y, pool)?;
        let pivot_index = fit.pivot;
        let pivot_time = samples.get(pivot_index).map(|&(t, _)| t)?;
        Some(PhaseReport {
            samples,
            pivot_index,
            pivot_time,
            fit,
        })
    }

    /// Detects `k` phases (the BSP-superstep extension): returns the
    /// boundary times.
    pub fn detect_k(&self, footprint: &[(u64, u64)], k: usize) -> Option<Vec<u64>> {
        let samples = sample_footprint(footprint, self.sample_interval);
        let (x, y) = to_regression_inputs(&samples);
        let fit = segmented_fit_k(&x, &y, k)?;
        Some(fit.boundaries.iter().map(|&i| samples[i].0).collect())
    }

    /// Runs `program`, detects the phase split, and attributes counters to
    /// the phases. Returns the report and the attribution.
    pub fn measure(
        &self,
        sim: &MachineSim,
        program: &Program,
        seed: u64,
        events: &[EventId],
    ) -> Option<(PhaseReport, PhaseAttribution)> {
        let mut rec = SliceRecorder {
            times: Vec::new(),
            totals: Vec::new(),
            footprints: Vec::new(),
        };
        // An invalid program yields no phase split, like any other
        // detection failure.
        let result = sim.run_observed(program, seed, &mut rec).ok()?;
        // Final state as the last slice.
        rec.times.push(result.cycles);
        rec.totals.push(result.counters.totals());
        rec.footprints
            .push(result.footprint.last().map(|&(_, f)| f).unwrap_or(0));

        let report = match self.detector {
            PhaseDetector::Footprint => self.detect(&result.footprint)?,
            PhaseDetector::Counter(event) => {
                // Per-slice deltas of one counter as the signal.
                let series: Vec<(u64, u64)> = rec
                    .times
                    .iter()
                    .zip(rec.totals.windows(2))
                    .map(|(&t, w)| (t, w[1][event.index()].saturating_sub(w[0][event.index()])))
                    .collect();
                self.detect(&series)?
            }
        };

        let boundaries = vec![0, report.pivot_time, result.cycles];
        let attribution = attribute(&rec, &boundaries, events);
        Some((report, attribution))
    }
}

/// Splits recorded counter totals at the given time boundaries.
fn attribute(rec: &SliceRecorder, boundaries: &[u64], events: &[EventId]) -> PhaseAttribution {
    let totals_at = |t: u64| -> [u64; HwEvent::COUNT] {
        // Last recorded slice at or before t (zero before the first).
        let mut last = [0u64; HwEvent::COUNT];
        for (time, tot) in rec.times.iter().zip(&rec.totals) {
            if *time <= t {
                last = *tot;
            } else {
                break;
            }
        }
        last
    };
    let mut per_phase = Vec::new();
    for w in boundaries.windows(2) {
        let start = totals_at(w[0]);
        let end = totals_at(w[1]);
        let mut map = BTreeMap::new();
        for &e in events {
            map.insert(e, end[e.index()].saturating_sub(start[e.index()]) as f64);
        }
        per_phase.push(map);
    }
    PhaseAttribution {
        boundaries: boundaries.to_vec(),
        per_phase,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_simulator::{MachineConfig, MachineSim};
    use np_workloads::phases::PhaseTraceKernel;
    use np_workloads::Workload;

    fn quiet() -> MachineSim {
        let mut cfg = MachineConfig::two_socket_small();
        cfg.noise.timer_interval = 0;
        cfg.noise.dram_jitter = 0.0;
        cfg.timeslice_cycles = 10_000;
        MachineSim::new(cfg)
    }

    fn chrome_like() -> PhaseTraceKernel {
        PhaseTraceKernel {
            ramp_pages: 400,
            compute_accesses: 30_000,
            rounds: 1,
            compute_trickle_pages: 4,
            release_at_end: false,
        }
    }

    #[test]
    fn detects_ramp_then_compute_split() {
        let sim = quiet();
        let r = sim
            .run(&chrome_like().build(sim.config()), 1)
            .expect("valid program");
        let pp = Phasenpruefer::default();
        let report = pp.detect(&r.footprint).expect("phases detected");
        // Ramp slope steep, compute slope nearly flat.
        assert!(
            report.ramp_slope() > 20.0 * report.compute_slope().abs().max(1e-6),
            "ramp {} vs compute {}",
            report.ramp_slope(),
            report.compute_slope()
        );
        // The pivot falls in the first half of the run (allocation is
        // fast, computation long).
        assert!(
            report.pivot_time < r.cycles / 2,
            "pivot {} of {}",
            report.pivot_time,
            r.cycles
        );
    }

    #[test]
    fn attribution_splits_counters_sensibly() {
        let sim = quiet();
        let pp = Phasenpruefer::default();
        let events = [
            HwEvent::Instructions,
            HwEvent::LoadRetired,
            HwEvent::StoreRetired,
        ];
        let (report, attr) = pp
            .measure(&sim, &chrome_like().build(sim.config()), 1, &events)
            .expect("measured");
        assert_eq!(attr.per_phase.len(), 2);
        let ramp = &attr.per_phase[0];
        let compute = &attr.per_phase[1];
        // Loads dominate the compute phase; the ramp-up is store/alloc
        // heavy relative to its loads.
        let ramp_loads = ramp[&HwEvent::LoadRetired];
        let compute_loads = compute[&HwEvent::LoadRetired];
        assert!(
            compute_loads > 10.0 * ramp_loads.max(1.0),
            "{ramp_loads} vs {compute_loads}"
        );
        // Sanity: attribution sums to the totals.
        let total: f64 = attr
            .per_phase
            .iter()
            .map(|p| p[&HwEvent::Instructions])
            .sum();
        assert!(total > 0.0);
        let _ = report;
    }

    #[test]
    fn pooled_detection_is_bit_identical_to_serial() {
        let sim = quiet();
        let r = sim
            .run(&chrome_like().build(sim.config()), 1)
            .expect("valid program");
        let pp = Phasenpruefer::default();
        let serial = pp.detect(&r.footprint).expect("phases detected");
        for threads in [1, 2, 8] {
            let pool = np_parallel::Pool::new(threads);
            let pooled = pp
                .detect_pool(&r.footprint, &pool)
                .expect("phases detected");
            assert_eq!(pooled.pivot_index, serial.pivot_index, "{threads} threads");
            assert_eq!(pooled.pivot_time, serial.pivot_time, "{threads} threads");
            assert_eq!(
                pooled.fit.combined_rss.to_bits(),
                serial.fit.combined_rss.to_bits(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn k_phase_extension_finds_supersteps() {
        let sim = quiet();
        let k = PhaseTraceKernel::bsp_supersteps(3);
        let r = sim.run(&k.build(sim.config()), 1).expect("valid program");
        let pp = Phasenpruefer::default();
        // 3 ramp+compute rounds = 6 linear segments; boundaries returned.
        let bounds = pp.detect_k(&r.footprint, 6).expect("k-phase fit");
        assert_eq!(bounds.len(), 6);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{bounds:?}");
    }

    #[test]
    fn counter_based_detection_is_unstable() {
        // Reproduces the authors' observation: the footprint detector
        // finds the allocation/compute pivot; a counter-rate detector
        // lands somewhere else (fluctuating signal), on a machine with
        // realistic noise.
        let mut cfg = MachineConfig::two_socket_small();
        cfg.noise.timer_interval = 5_000;
        cfg.noise.dram_jitter = 0.08;
        cfg.timeslice_cycles = 10_000;
        let sim = MachineSim::new(cfg);
        let program = chrome_like().build(sim.config());

        let fp = Phasenpruefer::default();
        let (fp_report, _) = fp
            .measure(&sim, &program, 3, &[HwEvent::Instructions])
            .expect("footprint detection");

        let ctr = Phasenpruefer {
            detector: PhaseDetector::Counter(HwEvent::L1dMiss),
            ..Phasenpruefer::default()
        };
        let ctr_result = ctr.measure(&sim, &program, 3, &[HwEvent::Instructions]);
        match ctr_result {
            None => {} // no usable fit at all — also a failure mode
            Some((ctr_report, _)) => {
                let diff = (ctr_report.pivot_time as i64 - fp_report.pivot_time as i64).abs();
                // The counter pivot disagrees noticeably with the footprint
                // pivot (or the fit explains little variance).
                let unstable = diff > (fp_report.pivot_time as i64) / 2
                    || ctr_report.fit.before.r_squared < 0.5
                    || ctr_report.fit.after.r_squared < 0.5;
                assert!(
                    unstable,
                    "counter detection unexpectedly matched: diff {diff}, R² {} / {}",
                    ctr_report.fit.before.r_squared, ctr_report.fit.after.r_squared
                );
            }
        }
    }

    #[test]
    fn render_produces_per_phase_table() {
        let sim = quiet();
        let pp = Phasenpruefer::default();
        let events = [HwEvent::Instructions, HwEvent::LoadRetired];
        let (_, attr) = pp
            .measure(&sim, &chrome_like().build(sim.config()), 1, &events)
            .expect("measured");
        let text = attr.render(&events);
        assert!(text.contains("phase 1") && text.contains("phase 2"));
        assert!(text.contains("instructions"));
    }

    #[test]
    fn detect_requires_enough_samples() {
        let pp = Phasenpruefer {
            sample_interval: 1_000_000_000,
            ..Default::default()
        };
        let series = vec![(0u64, 0u64), (100, 10)];
        assert!(pp.detect(&series).is_none());
    }
}
