//! Measurement archives: record now, analyse later.
//!
//! EvSel's workflow is interactive: "All retrieved values are recorded
//! together with their event identifiers for a single measurement run"
//! (§IV-A-1), and the user later *selects* recorded measurements to
//! compare (Fig. 5: "When selecting 2 measurements, a comparison,
//! including t-test is presented"). A [`Session`] is that recording layer:
//! run sets are saved as JSON files in a directory, listed, reloaded, and
//! fed into the same comparison/correlation analyses — so expensive
//! measurement campaigns and their analysis can be separated, including
//! across machines (ship the archive, not the testee).

use crate::capture::Capture;
use np_counters::measurement::RunSet;
use std::path::{Path, PathBuf};

/// A directory of recorded run sets.
pub struct Session {
    dir: PathBuf,
}

impl Session {
    /// Opens (creating if needed) a session directory.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Session> {
        std::fs::create_dir_all(&dir)?;
        Ok(Session {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    fn path_of(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.json"))
    }

    /// Validates an archive name (a path component, not a path).
    fn check_name(name: &str) -> std::io::Result<()> {
        if name.is_empty()
            || name.contains(['/', '\\'])
            || name == "."
            || name == ".."
            || name.ends_with(".json")
        {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("invalid archive name '{name}'"),
            ));
        }
        Ok(())
    }

    /// Saves a run set under `name` (overwrites).
    ///
    /// Crash-safe: the JSON is written to a temporary file in the session
    /// directory and renamed into place, so a crash mid-save leaves either
    /// the old archive or the new one — never a truncated file.
    pub fn save(&self, name: &str, runs: &RunSet) -> std::io::Result<()> {
        Self::check_name(name)?;
        let _span = np_telemetry::span!("session.save", "session");
        let json = serde_json::to_string_pretty(runs)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        np_telemetry::counter!("session.saved_bytes").add(json.len() as u64);
        np_telemetry::counter!("session.saves").inc();
        // Same directory as the target so the rename cannot cross
        // filesystems; pid-qualified so concurrent processes don't collide.
        let tmp = self
            .dir
            .join(format!(".{name}.json.tmp.{}", std::process::id()));
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, self.path_of(name)).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Loads the run set recorded under `name`.
    ///
    /// A torn or corrupt archive (unparseable JSON) is *quarantined*: the
    /// file is renamed to `<name>.json.corrupt` so it disappears from
    /// [`Session::list`] and stops poisoning later loads, while the bytes
    /// stay on disk for post-mortems. The returned error names the
    /// quarantine file.
    pub fn load(&self, name: &str) -> std::io::Result<RunSet> {
        Self::check_name(name)?;
        let _span = np_telemetry::span!("session.load", "session");
        let path = self.path_of(name);
        let json = std::fs::read_to_string(&path)?;
        np_telemetry::counter!("session.loaded_bytes").add(json.len() as u64);
        np_telemetry::counter!("session.loads").inc();
        serde_json::from_str(&json).map_err(|e| {
            let quarantine = self.dir.join(format!("{name}.json.corrupt"));
            let moved = std::fs::rename(&path, &quarantine).is_ok();
            np_telemetry::counter!("session.quarantined").inc();
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                if moved {
                    format!(
                        "archive '{name}' is corrupt ({e}); quarantined as {}",
                        quarantine.display()
                    )
                } else {
                    format!("archive '{name}' is corrupt ({e})")
                },
            )
        })
    }

    /// Saves a time-series capture under `name` (as
    /// `<name>.capture.json`, so captures and run-set archives share the
    /// directory without colliding). Same crash-safe tmp-and-rename
    /// discipline as [`Session::save`].
    pub fn save_capture(&self, name: &str, capture: &Capture) -> std::io::Result<()> {
        Self::check_name(name)?;
        let _span = np_telemetry::span!("session.save_capture", "session");
        let json = serde_json::to_string(capture)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        np_telemetry::counter!("session.saved_bytes").add(json.len() as u64);
        np_telemetry::counter!("session.saves").inc();
        let tmp = self
            .dir
            .join(format!(".{name}.capture.json.tmp.{}", std::process::id()));
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, self.dir.join(format!("{name}.capture.json"))).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Loads the capture recorded under `name`.
    pub fn load_capture(&self, name: &str) -> std::io::Result<Capture> {
        Self::check_name(name)?;
        let _span = np_telemetry::span!("session.load_capture", "session");
        let json = std::fs::read_to_string(self.dir.join(format!("{name}.capture.json")))?;
        np_telemetry::counter!("session.loaded_bytes").add(json.len() as u64);
        np_telemetry::counter!("session.loads").inc();
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Lists recorded captures, sorted.
    pub fn list_captures(&self) -> std::io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".capture.json") {
                names.push(stem.to_string());
            }
        }
        names.sort();
        Ok(names)
    }

    /// Lists recorded names, sorted. Captures have their own namespace
    /// ([`Session::list_captures`]).
    pub fn list(&self) -> std::io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".capture.json") {
                continue;
            }
            if let Some(stem) = name.strip_suffix(".json") {
                names.push(stem.to_string());
            }
        }
        names.sort();
        Ok(names)
    }

    /// Deletes one recording.
    pub fn delete(&self, name: &str) -> std::io::Result<()> {
        Self::check_name(name)?;
        std::fs::remove_file(self.path_of(name))
    }

    /// Loads two recordings and compares them with EvSel — the Fig. 5
    /// "select 2 measurements" interaction.
    pub fn compare(
        &self,
        evsel: &crate::evsel::EvSel,
        a: &str,
        b: &str,
    ) -> std::io::Result<crate::evsel::ComparisonReport> {
        let ra = self.load(a)?;
        let rb = self.load(b)?;
        Ok(evsel.compare(&ra, &rb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_counters::measurement::Measurement;
    use np_simulator::HwEvent;

    fn runset(label: &str, v: f64) -> RunSet {
        let mut rs = RunSet::new(label);
        for i in 0..3 {
            let mut m = Measurement::new(i);
            m.values.insert(HwEvent::L1dMiss, v + i as f64);
            m.cycles = 1000 + i;
            rs.runs.push(m);
        }
        rs
    }

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("np-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tempdir("roundtrip");
        let s = Session::open(&dir).unwrap();
        let rs = runset("baseline", 100.0);
        s.save("baseline", &rs).unwrap();
        let back = s.load("baseline").unwrap();
        assert_eq!(back.label, "baseline");
        assert_eq!(back.samples(HwEvent::L1dMiss), rs.samples(HwEvent::L1dMiss));
        assert_eq!(back.runs[0].cycles, 1000);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn list_and_delete() {
        let dir = tempdir("list");
        let s = Session::open(&dir).unwrap();
        s.save("v1", &runset("v1", 1.0)).unwrap();
        s.save("v2", &runset("v2", 2.0)).unwrap();
        assert_eq!(s.list().unwrap(), vec!["v1", "v2"]);
        s.delete("v1").unwrap();
        assert_eq!(s.list().unwrap(), vec!["v2"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compare_recorded_measurements() {
        let dir = tempdir("compare");
        let s = Session::open(&dir).unwrap();
        s.save("before", &runset("before", 100.0)).unwrap();
        s.save("after", &runset("after", 1000.0)).unwrap();
        let evsel = crate::evsel::EvSel {
            bonferroni: false,
            ..Default::default()
        };
        let report = s.compare(&evsel, "before", "after").unwrap();
        let row = report.row(HwEvent::L1dMiss).unwrap();
        assert!(row.relative_change > 8.0);
        assert!(row.significant);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn captures_roundtrip_in_their_own_namespace() {
        let dir = tempdir("captures");
        let s = Session::open(&dir).unwrap();
        let mut sampler = np_telemetry::timeseries::Sampler::new(16);
        sampler.record_with_phase("rep0.node0.qpi", 10, 3, "measure");
        let cap = Capture::from_sampler("two-socket", "row-major", 9, 1, &sampler);
        s.save_capture("trace", &cap).unwrap();
        s.save("runs", &runset("runs", 1.0)).unwrap();
        // Separate namespaces: captures don't show as run-set archives.
        assert_eq!(s.list().unwrap(), vec!["runs"]);
        assert_eq!(s.list_captures().unwrap(), vec!["trace"]);
        let back = s.load_capture("trace").unwrap();
        assert_eq!(back, cap);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_names_rejected() {
        let dir = tempdir("names");
        let s = Session::open(&dir).unwrap();
        for bad in ["", "a/b", "..", "x.json"] {
            assert!(s.save(bad, &runset("x", 1.0)).is_err(), "accepted '{bad}'");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_archives_are_quarantined() {
        let dir = tempdir("quarantine");
        let s = Session::open(&dir).unwrap();
        s.save("good", &runset("good", 5.0)).unwrap();
        // Simulate a torn write: truncate the archive mid-JSON.
        std::fs::write(dir.join("torn.json"), "{\"label\": \"torn\", \"ru").unwrap();
        let err = s.load("torn").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("quarantined"), "{err}");
        assert!(dir.join("torn.json.corrupt").exists());
        assert!(!dir.join("torn.json").exists());
        // The quarantined file no longer shows up or blocks the name.
        assert_eq!(s.list().unwrap(), vec!["good"]);
        s.save("torn", &runset("torn", 6.0)).unwrap();
        assert_eq!(s.load("torn").unwrap().label, "torn");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loading_missing_archive_errors() {
        let dir = tempdir("missing");
        let s = Session::open(&dir).unwrap();
        assert!(s.load("nope").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
