//! Cache-to-cache contention analysis (a `perf c2c` analogue).
//!
//! §II-F presents perf as the toolbox the paper builds on; its canonical
//! NUMA-contention facility is `perf c2c`, which samples HITM transfers
//! (loads served from another core's *modified* line) and groups them by
//! cache line to expose write sharing. This module implements that
//! analysis on the simulator's load samples:
//!
//! * per-line HITM and load statistics,
//! * the set of cores touching each contended line,
//! * the distinct byte offsets touched — multiple offsets on one HITM-hot
//!   line is the classic **false sharing** signature, one offset is a
//!   genuinely shared (true-sharing) word.

use crate::report::{fmt_count, render_table};
use np_simulator::{LoadSample, MachineSim, Program, ServedBy, SimObserver};
use std::collections::{BTreeMap, BTreeSet};

/// Statistics for one cache line.
#[derive(Debug, Clone, Default)]
pub struct LineStats {
    /// Loads that hit this line.
    pub loads: u64,
    /// Loads served cache-to-cache from a modified copy (HITM).
    pub hitm: u64,
    /// HITMs served from a remote node.
    pub hitm_remote: u64,
    /// Cores that issued loads to the line.
    pub cores: BTreeSet<usize>,
    /// Distinct byte offsets (within the line) loaded.
    pub offsets: BTreeSet<u8>,
}

impl LineStats {
    /// The false-sharing heuristic: HITM-hot line touched by multiple
    /// cores at multiple distinct offsets.
    pub fn looks_false_shared(&self) -> bool {
        self.hitm > 0 && self.cores.len() > 1 && self.offsets.len() > 1
    }
}

/// The collector: groups load samples by cache line.
pub struct CacheToCache {
    line_bytes: u64,
    lines: BTreeMap<u64, LineStats>,
}

impl CacheToCache {
    /// Creates a collector for 64-byte lines.
    pub fn new() -> Self {
        CacheToCache {
            line_bytes: 64,
            lines: BTreeMap::new(),
        }
    }

    /// Lines ranked by HITM count, hottest first.
    pub fn ranked(&self) -> Vec<(u64, &LineStats)> {
        let mut v: Vec<(u64, &LineStats)> = self
            .lines
            .iter()
            .filter(|(_, s)| s.hitm > 0)
            .map(|(&l, s)| (l, s))
            .collect();
        v.sort_by_key(|&(_, s)| std::cmp::Reverse(s.hitm));
        v
    }

    /// Total HITM transfers observed.
    pub fn total_hitm(&self) -> u64 {
        self.lines.values().map(|s| s.hitm).sum()
    }

    /// Stats for the line containing `addr`.
    pub fn line_of(&self, addr: u64) -> Option<&LineStats> {
        self.lines.get(&(addr / self.line_bytes))
    }

    /// Renders the `perf c2c`-style report: the top `limit` contended
    /// lines.
    pub fn render(&self, limit: usize) -> String {
        let rows: Vec<Vec<String>> = self
            .ranked()
            .into_iter()
            .take(limit)
            .map(|(line, s)| {
                vec![
                    format!("{:#014x}", line * self.line_bytes),
                    fmt_count(s.hitm as f64),
                    fmt_count(s.hitm_remote as f64),
                    fmt_count(s.loads as f64),
                    s.cores.len().to_string(),
                    s.offsets.len().to_string(),
                    if s.looks_false_shared() {
                        "FALSE-SHARING?"
                    } else {
                        "shared"
                    }
                    .to_string(),
                ]
            })
            .collect();
        let mut out = render_table(
            &[
                "line",
                "hitm",
                "remote hitm",
                "loads",
                "cores",
                "offsets",
                "verdict",
            ],
            &rows,
        );
        out.push_str(&format!("\ntotal HITM transfers: {}\n", self.total_hitm()));
        out
    }
}

impl Default for CacheToCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SimObserver for CacheToCache {
    fn on_load_sample(&mut self, s: &LoadSample) {
        let entry = self.lines.entry(s.addr / self.line_bytes).or_default();
        entry.loads += 1;
        entry.cores.insert(s.core);
        entry.offsets.insert((s.addr % self.line_bytes) as u8);
        if let ServedBy::Hitm { remote } = s.served {
            entry.hitm += 1;
            if remote {
                entry.hitm_remote += 1;
            }
        }
    }
}

/// Convenience: analyse one program end to end.
pub fn analyse(sim: &MachineSim, program: &Program, seed: u64) -> CacheToCache {
    let mut c = CacheToCache::new();
    // An invalid program contributes no slices; the observer just
    // stays empty, which the caller sees as zero coverage.
    let _ = sim.run_observed(program, seed, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_simulator::{AllocPolicy, MachineConfig, ProgramBuilder};

    fn sim() -> MachineSim {
        let mut cfg = MachineConfig::two_socket_small();
        cfg.noise.timer_interval = 0;
        cfg.noise.dram_jitter = 0.0;
        MachineSim::new(cfg)
    }

    /// Two cores ping-pong one line; one core streams privately.
    fn contended_program(offsets: &[u64]) -> Program {
        let sim = sim();
        let mut b = ProgramBuilder::new(&sim.config().topology, 4096);
        let shared = b.alloc(4096, AllocPolicy::Bind(0));
        let private = b.alloc(1 << 20, AllocPolicy::Bind(0));
        let t0 = b.add_thread(0);
        let t1 = b.add_thread(1);
        for round in 0..200u32 {
            // Writer dirties the line; reader pulls it HITM.
            b.store(t0, shared + offsets[0]);
            b.barrier(t0, round * 2);
            b.barrier(t1, round * 2);
            b.load_dependent(t1, shared + offsets[round as usize % offsets.len()]);
            b.barrier(t0, round * 2 + 1);
            b.barrier(t1, round * 2 + 1);
        }
        for i in 0..512u64 {
            b.load(t0, private + i * 64);
        }
        b.build()
    }

    #[test]
    fn finds_the_contended_line() {
        let sim = sim();
        let p = contended_program(&[0]);
        let c = analyse(&sim, &p, 1);
        let ranked = c.ranked();
        assert!(!ranked.is_empty());
        let (_, hot) = ranked[0];
        assert!(hot.hitm > 150, "hitm {}", hot.hitm);
        assert_eq!(hot.cores.len(), 1); // only the reader LOADS it
        assert!(c.total_hitm() >= hot.hitm);
    }

    #[test]
    fn single_offset_is_true_sharing() {
        let sim = sim();
        let c = analyse(&sim, &contended_program(&[0]), 1);
        let (_, hot) = c.ranked()[0];
        assert_eq!(hot.offsets.len(), 1);
        assert!(!hot.looks_false_shared());
    }

    #[test]
    fn multiple_offsets_flag_false_sharing() {
        let sim = sim();
        // The reader touches two different words of the same line, and a
        // second reader core joins.
        let mut b = ProgramBuilder::new(&sim.config().topology, 4096);
        let shared = b.alloc(4096, AllocPolicy::Bind(0));
        let t0 = b.add_thread(0);
        let t1 = b.add_thread(1);
        let t2 = b.add_thread(2);
        for round in 0..100u32 {
            b.store(t0, shared);
            b.barrier(t0, round * 2);
            b.barrier(t1, round * 2);
            b.barrier(t2, round * 2);
            b.load_dependent(t1, shared + 8);
            b.load_dependent(t2, shared + 16);
            b.barrier(t0, round * 2 + 1);
            b.barrier(t1, round * 2 + 1);
            b.barrier(t2, round * 2 + 1);
        }
        let c = analyse(&sim, &b.build(), 1);
        let (_, hot) = c.ranked()[0];
        assert!(hot.looks_false_shared(), "{hot:?}");
    }

    #[test]
    fn private_streams_are_not_reported() {
        let sim = sim();
        let mut b = ProgramBuilder::new(&sim.config().topology, 4096);
        let buf = b.alloc(1 << 20, AllocPolicy::Bind(0));
        let t = b.add_thread(0);
        for i in 0..1000u64 {
            b.load(t, buf + i * 64);
        }
        let c = analyse(&sim, &b.build(), 1);
        assert!(c.ranked().is_empty());
        assert_eq!(c.total_hitm(), 0);
    }

    #[test]
    fn render_shows_verdicts() {
        let sim = sim();
        let c = analyse(&sim, &contended_program(&[0]), 1);
        let text = c.render(5);
        assert!(text.contains("hitm"));
        assert!(text.contains("total HITM"));
        assert!(text.contains("0x"));
    }
}
