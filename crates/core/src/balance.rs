//! NUMA balance analysis.
//!
//! §II-F: "With these facilities at hands, perf enables detecting
//! imbalanced workloads among NUMA nodes." This module is that facility
//! for the simulated machine: it reads the per-node uncore counters
//! (memory-controller reads/writes) and the remote-access events out of a
//! run and summarises how evenly memory traffic spreads across nodes.

use crate::report::{fmt_count, render_table};
use np_simulator::{HwEvent, MachineConfig, RunResult};

/// Per-node memory traffic extracted from the uncore counters.
#[derive(Debug, Clone)]
pub struct NodeTraffic {
    /// The node.
    pub node: usize,
    /// Memory-controller read transactions at this node.
    pub imc_reads: u64,
    /// Memory-controller write-backs at this node.
    pub imc_writes: u64,
}

/// A NUMA balance summary for one run.
#[derive(Debug, Clone)]
pub struct BalanceReport {
    /// Per-node traffic.
    pub nodes: Vec<NodeTraffic>,
    /// Fraction of demand DRAM accesses that were remote.
    pub remote_fraction: f64,
    /// Imbalance index: max node read share × node count (1.0 = perfectly
    /// even, `nodes` = everything on one node).
    pub imbalance: f64,
}

impl BalanceReport {
    /// Extracts the balance view from a run on `machine`.
    pub fn from_run(machine: &MachineConfig, run: &RunResult) -> BalanceReport {
        let nodes: Vec<NodeTraffic> = (0..machine.topology.nodes)
            .map(|n| {
                // Uncore counters are accounted at the node's first core.
                let c0 = machine.topology.first_core_of_node(n);
                NodeTraffic {
                    node: n,
                    imc_reads: run.counters.get(c0, HwEvent::ImcRead),
                    imc_writes: run.counters.get(c0, HwEvent::ImcWrite),
                }
            })
            .collect();
        let total_reads: u64 = nodes.iter().map(|n| n.imc_reads).sum();
        let max_reads = nodes.iter().map(|n| n.imc_reads).max().unwrap_or(0);
        let imbalance = if total_reads == 0 {
            1.0
        } else {
            (max_reads as f64 / total_reads as f64) * nodes.len() as f64
        };
        let local = run.total(HwEvent::LocalDramAccess) as f64;
        let remote = run.total(HwEvent::RemoteDramAccess) as f64;
        let remote_fraction = if local + remote > 0.0 {
            remote / (local + remote)
        } else {
            0.0
        };
        BalanceReport {
            nodes,
            remote_fraction,
            imbalance,
        }
    }

    /// True when one node serves disproportionally much traffic.
    pub fn is_imbalanced(&self, threshold: f64) -> bool {
        self.imbalance > threshold
    }

    /// Renders the per-node table plus the summary line.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .nodes
            .iter()
            .map(|n| {
                vec![
                    format!("node {}", n.node),
                    fmt_count(n.imc_reads as f64),
                    fmt_count(n.imc_writes as f64),
                ]
            })
            .collect();
        let mut out = render_table(&["node", "IMC reads", "IMC writes"], &rows);
        out.push_str(&format!(
            "\nimbalance index: {:.2} (1.00 = even)   remote accesses: {:.1} %\n",
            self.imbalance,
            self.remote_fraction * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_simulator::{MachineConfig, MachineSim};
    use np_workloads::stream::StreamTriad;
    use np_workloads::Workload;

    fn sim() -> MachineSim {
        let mut cfg = MachineConfig::two_socket_small();
        cfg.noise.timer_interval = 0;
        cfg.noise.dram_jitter = 0.0;
        MachineSim::new(cfg)
    }

    #[test]
    fn bound_workload_is_flagged_imbalanced() {
        let sim = sim();
        let run = sim
            .run(&StreamTriad::bound(64 * 1024, 4, 0).build(sim.config()), 1)
            .expect("valid program");
        let b = BalanceReport::from_run(sim.config(), &run);
        assert!(b.is_imbalanced(1.5), "imbalance {}", b.imbalance);
        assert!(
            (b.imbalance - 2.0).abs() < 0.05,
            "all traffic on node 0 of 2"
        );
        // Half the threads sit on node 1 and reach across.
        assert!(b.remote_fraction > 0.3);
    }

    #[test]
    fn interleaved_workload_is_balanced() {
        let sim = sim();
        let run = sim
            .run(
                &StreamTriad::interleaved(64 * 1024, 4).build(sim.config()),
                1,
            )
            .expect("valid program");
        let b = BalanceReport::from_run(sim.config(), &run);
        assert!(!b.is_imbalanced(1.5), "imbalance {}", b.imbalance);
        assert!(b.imbalance < 1.2);
    }

    #[test]
    fn first_touch_local_workload_is_balanced_and_local() {
        let sim = sim();
        let run = sim
            .run(&StreamTriad::local(64 * 1024, 4).build(sim.config()), 1)
            .expect("valid program");
        let b = BalanceReport::from_run(sim.config(), &run);
        assert!(b.remote_fraction < 0.05, "remote {}", b.remote_fraction);
        assert!(b.imbalance < 1.3, "imbalance {}", b.imbalance);
    }

    #[test]
    fn render_lists_every_node() {
        let sim = sim();
        let run = sim
            .run(&StreamTriad::bound(16 * 1024, 2, 0).build(sim.config()), 1)
            .expect("valid program");
        let text = BalanceReport::from_run(sim.config(), &run).render();
        assert!(text.contains("node 0"));
        assert!(text.contains("node 1"));
        assert!(text.contains("imbalance index"));
    }

    #[test]
    fn empty_run_reports_even() {
        let sim = sim();
        let mut b = np_simulator::ProgramBuilder::new(&sim.config().topology, 4096);
        let t = b.add_thread(0);
        b.exec(t, 10);
        let run = sim.run(&b.build(), 1).expect("valid program");
        let rep = BalanceReport::from_run(sim.config(), &run);
        assert_eq!(rep.imbalance, 1.0);
        assert_eq!(rep.remote_fraction, 0.0);
    }
}
