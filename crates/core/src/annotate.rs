//! Events-to-code attribution (the §VI outlook item).
//!
//! "The mapping from events to lines of code was merely covered in this
//! paper, yet this information is important to developers when searching
//! for performance bottlenecks in their applications." Workloads declare
//! source regions with [`np_simulator::Op::Label`]; the engine attributes
//! every counter to the active region; this module renders the
//! `perf report`-style breakdown.

use crate::report::{fmt_count, render_table};
use np_counters::catalog::EventId;
use np_simulator::RunResult;

/// Human-readable names for region ids.
#[derive(Debug, Clone, Default)]
pub struct RegionNames {
    names: std::collections::BTreeMap<u32, String>,
}

impl RegionNames {
    /// Builds the name table.
    pub fn new(pairs: &[(u32, &str)]) -> Self {
        RegionNames {
            names: pairs.iter().map(|(id, n)| (*id, n.to_string())).collect(),
        }
    }

    /// Name for a region (falls back to `region <id>`).
    pub fn get(&self, id: u32) -> String {
        self.names
            .get(&id)
            .cloned()
            .unwrap_or_else(|| format!("region {id}"))
    }
}

/// One region's share of one event.
#[derive(Debug, Clone)]
pub struct HotSpot {
    /// Region id.
    pub region: u32,
    /// Event count inside the region.
    pub count: u64,
    /// Share of the event's total across labelled code (0..1).
    pub share: f64,
}

/// Ranks regions by their share of `event` — "where do my misses live?".
pub fn hotspots(run: &RunResult, event: EventId) -> Vec<HotSpot> {
    let total: u64 = run.regions.iter().map(|(_, a)| a[event.index()]).sum();
    let mut out: Vec<HotSpot> = run
        .regions
        .iter()
        .map(|(r, a)| HotSpot {
            region: *r,
            count: a[event.index()],
            share: if total == 0 {
                0.0
            } else {
                a[event.index()] as f64 / total as f64
            },
        })
        .collect();
    out.sort_by_key(|s| std::cmp::Reverse(s.count));
    out
}

/// Renders the per-region event table.
pub fn annotate(run: &RunResult, names: &RegionNames, events: &[EventId]) -> String {
    let mut headers: Vec<String> = vec!["region".into()];
    for e in events {
        headers.push(e.name().to_string());
    }
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = run
        .regions
        .iter()
        .map(|(r, a)| {
            let mut row = vec![names.get(*r)];
            for e in events {
                row.push(fmt_count(a[e.index()] as f64));
            }
            row
        })
        .collect();
    render_table(&headers_ref, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_simulator::{AllocPolicy, HwEvent, MachineConfig, MachineSim, ProgramBuilder};

    fn labelled_run() -> RunResult {
        let mut cfg = MachineConfig::two_socket_small();
        cfg.noise.timer_interval = 0;
        cfg.noise.dram_jitter = 0.0;
        let sim = MachineSim::new(cfg);
        let mut b = ProgramBuilder::new(&sim.config().topology, 4096);
        let buf = b.alloc(8 << 20, AllocPolicy::Bind(0));
        let t = b.add_thread(0);
        b.label(t, 1); // friendly
        for i in 0..256u64 {
            b.load(t, buf + i * 8);
        }
        b.label(t, 2); // hostile
        for i in 0..256u64 {
            b.load(t, buf + 64 + i * 4096);
        }
        sim.run(&b.build(), 1).expect("valid program")
    }

    #[test]
    fn hotspots_rank_the_miss_heavy_region_first() {
        let run = labelled_run();
        let spots = hotspots(&run, HwEvent::L1dMiss);
        assert_eq!(spots[0].region, 2);
        assert!(spots[0].share > 0.8, "share {}", spots[0].share);
        let sum: f64 = spots.iter().map(|s| s.share).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hotspots_handle_zero_totals() {
        let run = labelled_run();
        let spots = hotspots(&run, HwEvent::HitmTransfer);
        assert!(spots.iter().all(|s| s.share == 0.0));
    }

    #[test]
    fn annotate_renders_named_rows() {
        let run = labelled_run();
        let names = RegionNames::new(&[(1, "fill loop"), (2, "column walk")]);
        let text = annotate(&run, &names, &[HwEvent::LoadRetired, HwEvent::L1dMiss]);
        assert!(text.contains("fill loop"));
        assert!(text.contains("column walk"));
        assert!(text.contains("256"));
    }

    #[test]
    fn unnamed_regions_get_fallback_names() {
        let names = RegionNames::new(&[]);
        assert_eq!(names.get(5), "region 5");
    }
}
