//! The Memhist remote probe (Fig. 6).
//!
//! "Server platforms do not always provide all options for a rich
//! graphical interface. Because of this, an additional headless probe was
//! developed, which transfers the measured data via TCP to the GUI
//! application." The probe lives next to the testee (here: next to the
//! simulator), performs the threshold-cycled measurement on request, and
//! ships the per-threshold counts back; the front-end assembles the
//! histogram locally — exactly the split of the paper's
//! `Probe.Measure(...)` / `Backend.EventFor(Interval)` architecture.
//!
//! Wire format: newline-delimited JSON over TCP.

use super::{MemhistConfig, MemhistResult};
use np_simulator::{MachineSim, Program};
use np_stats::histogram::LatencyHistogram;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

/// A measurement request from the front-end.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbeRequest {
    /// Seed for the simulated run.
    pub seed: u64,
    /// Threshold ladder to cycle.
    pub thresholds: Vec<u64>,
    /// Timeslices per threshold step.
    pub slices_per_step: u32,
}

/// The probe's answer: raw per-threshold exceedance estimates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbeResponse {
    /// Echo of the thresholds measured.
    pub thresholds: Vec<u64>,
    /// Scaled exceedance counts, one per threshold.
    pub counts: Vec<i64>,
    /// Slices each threshold was active.
    pub coverage: Vec<u64>,
    /// Total slices observed.
    pub total_slices: u64,
}

/// The headless probe: owns the simulator and testee program.
pub struct ProbeServer {
    sim: MachineSim,
    program: Program,
}

impl ProbeServer {
    /// Creates a probe for one testee.
    pub fn new(sim: MachineSim, program: Program) -> Self {
        ProbeServer { sim, program }
    }

    /// Binds an ephemeral localhost port; returns the listener so the
    /// caller learns the address before serving.
    pub fn bind() -> std::io::Result<TcpListener> {
        TcpListener::bind("127.0.0.1:0")
    }

    /// Serves exactly `n` connections on `listener`, then returns.
    ///
    /// Per-connection failures (malformed JSON, mid-request disconnects)
    /// are recorded in the `probe.errors` counter and do **not** kill the
    /// accept loop — a probe next to a long campaign must survive a
    /// misbehaving client. Only listener-level failures propagate.
    pub fn serve(&self, listener: &TcpListener, n: usize) -> std::io::Result<()> {
        for _ in 0..n {
            let (stream, _) = listener.accept()?;
            if self.handle(stream).is_err() {
                np_telemetry::counter!("probe.errors").inc();
            }
        }
        Ok(())
    }

    fn handle(&self, stream: TcpStream) -> std::io::Result<()> {
        let _span = np_telemetry::span!("probe.request", "probe");
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut line = String::new();
        reader.read_line(&mut line)?;
        np_telemetry::counter!("probe.rx_bytes").add(line.len() as u64);
        let req: ProbeRequest = serde_json::from_str(line.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;

        let mut pebs =
            np_counters::pebs::CyclingPebs::new(req.thresholds.clone(), req.slices_per_step);
        self.sim.run_observed(&self.program, req.seed, &mut pebs);

        let resp = ProbeResponse {
            thresholds: req.thresholds,
            counts: pebs.estimated_exceed_counts(),
            coverage: pebs.coverage().to_vec(),
            total_slices: pebs.total_slices(),
        };
        let mut out = serde_json::to_string(&resp)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        out.push('\n');
        let mut stream = stream;
        stream.write_all(out.as_bytes())?;
        stream.flush()?;
        np_telemetry::counter!("probe.tx_bytes").add(out.len() as u64);
        np_telemetry::counter!("probe.requests").inc();
        Ok(())
    }
}

/// Front-end client: requests a measurement and assembles the histogram.
pub struct RemoteMemhist;

impl RemoteMemhist {
    /// Fetches one measurement from the probe at `addr`.
    pub fn fetch(
        addr: impl ToSocketAddrs,
        config: &MemhistConfig,
        seed: u64,
    ) -> std::io::Result<MemhistResult> {
        let _span = np_telemetry::span!("probe.fetch", "probe");
        let stream = TcpStream::connect(addr)?;
        let req = ProbeRequest {
            seed,
            thresholds: config.thresholds.clone(),
            slices_per_step: config.slices_per_step,
        };
        let mut out = serde_json::to_string(&req)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        out.push('\n');
        let mut writer = stream.try_clone()?;
        writer.write_all(out.as_bytes())?;
        writer.flush()?;

        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let resp: ProbeResponse = serde_json::from_str(line.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;

        let histogram = LatencyHistogram::from_threshold_counts(&resp.thresholds, &resp.counts)
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad threshold response")
            })?;
        Ok(MemhistResult {
            histogram,
            coverage: resp.coverage,
            total_slices: resp.total_slices,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memhist::Memhist;
    use np_simulator::MachineConfig;
    use np_workloads::mlc::LatencyChecker;
    use np_workloads::Workload;

    fn quiet_sim() -> MachineSim {
        let mut cfg = MachineConfig::two_socket_small();
        cfg.noise.timer_interval = 0;
        cfg.noise.dram_jitter = 0.0;
        cfg.timeslice_cycles = 5_000;
        MachineSim::new(cfg)
    }

    #[test]
    fn remote_measurement_matches_local() {
        let sim = quiet_sim();
        let program = LatencyChecker::new(0, 0, 4 << 20, 1500).build(sim.config());
        let config = MemhistConfig::default();

        // Local reference.
        let local = Memhist::new(config.clone()).measure(&sim, &program, 5);

        // Remote probe in a background thread.
        let listener = ProbeServer::bind().unwrap();
        let addr = listener.local_addr().unwrap();
        let server = ProbeServer::new(quiet_sim(), program);
        let handle = std::thread::spawn(move || server.serve(&listener, 1));

        let remote = RemoteMemhist::fetch(addr, &config, 5).unwrap();
        handle.join().unwrap().unwrap();

        // Same deterministic run ⇒ identical bins.
        assert_eq!(remote.histogram.bins.len(), local.histogram.bins.len());
        for (r, l) in remote.histogram.bins.iter().zip(&local.histogram.bins) {
            assert_eq!(r.count, l.count, "bin [{}, {})", r.lo, r.hi);
        }
        assert_eq!(remote.total_slices, local.total_slices);
    }

    #[test]
    fn serves_multiple_sequential_requests() {
        let sim = quiet_sim();
        let program = LatencyChecker::new(0, 0, 2 << 20, 400).build(sim.config());
        let config = MemhistConfig::default();

        let listener = ProbeServer::bind().unwrap();
        let addr = listener.local_addr().unwrap();
        let server = ProbeServer::new(quiet_sim(), program);
        let handle = std::thread::spawn(move || server.serve(&listener, 2));

        let a = RemoteMemhist::fetch(addr, &config, 1).unwrap();
        let b = RemoteMemhist::fetch(addr, &config, 2).unwrap();
        handle.join().unwrap().unwrap();
        // Different seeds may differ, but both are well-formed.
        assert_eq!(a.histogram.bins.len(), config.thresholds.len());
        assert_eq!(b.histogram.bins.len(), config.thresholds.len());
    }

    #[test]
    fn client_reports_connection_failure() {
        // Bind-then-drop guarantees a port with no listener.
        let addr = {
            let l = ProbeServer::bind().unwrap();
            l.local_addr().unwrap()
        };
        let err = RemoteMemhist::fetch(addr, &MemhistConfig::default(), 1);
        assert!(err.is_err());
    }

    #[test]
    fn server_survives_malformed_requests() {
        use std::io::{Read, Write};
        let sim = quiet_sim();
        let program = LatencyChecker::new(0, 0, 1 << 20, 50).build(sim.config());
        let listener = ProbeServer::bind().unwrap();
        let addr = listener.local_addr().unwrap();
        let server = ProbeServer::new(quiet_sim(), program);
        let errors = np_telemetry::global().counter("probe.errors");
        let errors_before = errors.get();
        np_telemetry::set_enabled(true);
        // Two connections: garbage, then a real request.
        let handle = std::thread::spawn(move || server.serve(&listener, 2));

        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(b"this is not json\n").unwrap();
        stream.flush().unwrap();
        // Server hangs up on the bad connection without a response...
        let mut buf = String::new();
        let _ = stream.read_to_string(&mut buf);
        assert!(buf.is_empty());
        drop(stream);

        // ...but the accept loop survives and serves the next client.
        let good = RemoteMemhist::fetch(addr, &MemhistConfig::default(), 3).unwrap();
        assert!(!good.histogram.bins.is_empty());
        assert!(handle.join().unwrap().is_ok());
        assert!(
            errors.get() > errors_before,
            "malformed request not counted"
        );
    }

    #[test]
    fn request_roundtrips_as_json() {
        let req = ProbeRequest {
            seed: 7,
            thresholds: vec![4, 64],
            slices_per_step: 2,
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: ProbeRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.seed, 7);
        assert_eq!(back.thresholds, vec![4, 64]);
    }
}
