//! The Memhist remote probe (Fig. 6), hardened.
//!
//! "Server platforms do not always provide all options for a rich
//! graphical interface. Because of this, an additional headless probe was
//! developed, which transfers the measured data via TCP to the GUI
//! application." The probe lives next to the testee (here: next to the
//! simulator), performs the threshold-cycled measurement on request, and
//! ships the per-threshold counts back; the front-end assembles the
//! histogram locally — exactly the split of the paper's
//! `Probe.Measure(...)` / `Backend.EventFor(Interval)` architecture.
//!
//! Wire format: newline-delimited JSON over TCP.
//!
//! Both ends are defended through np-resilience:
//!
//! * the **server** pins read/write deadlines on every connection, bounds
//!   a request frame to [`ProbeLimits::max_frame_bytes`] (a hostile
//!   client cannot OOM it), validates the threshold ladder before
//!   touching the simulator, and consults a [`FaultInjector`] at the
//!   `"probe.accept"` / `"probe.response"` sites so the fault matrix can
//!   script drops, truncations, delays and garbage;
//! * the **client** retries per [`RetryPolicy`] with reconnect-and-
//!   backoff, bounds each attempt with stream deadlines, optionally
//!   shards the threshold ladder into per-request chunks, and degrades
//!   partially: a fetch that loses k of n chunks returns a coarser
//!   histogram flagged [`MemhistResult::degraded`] with the missing
//!   intervals enumerated, instead of failing the whole campaign.
//!   Exceedance counts compose across requests because the simulated run
//!   is deterministic per seed, so surviving thresholds still subtract
//!   into valid bins.

use super::{MemhistConfig, MemhistResult};
use np_resilience::{
    read_line_bounded, CircuitBreaker, Fault, FaultInjector, NoFaults, RetryError, RetryPolicy,
    StreamDeadlines,
};
use np_simulator::{MachineSim, Program};
use np_stats::histogram::LatencyHistogram;
use serde::{Deserialize, Serialize};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// A measurement request from the front-end.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbeRequest {
    /// Seed for the simulated run.
    pub seed: u64,
    /// Threshold ladder to cycle.
    pub thresholds: Vec<u64>,
    /// Timeslices per threshold step.
    pub slices_per_step: u32,
}

/// The probe's answer: raw per-threshold exceedance estimates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbeResponse {
    /// Echo of the thresholds measured.
    pub thresholds: Vec<u64>,
    /// Scaled exceedance counts, one per threshold.
    pub counts: Vec<i64>,
    /// Slices each threshold was active.
    pub coverage: Vec<u64>,
    /// Total slices observed.
    pub total_slices: u64,
}

/// Server-side hardening knobs.
#[derive(Debug, Clone)]
pub struct ProbeLimits {
    /// Largest request frame accepted, newline included. Larger frames
    /// fail with `InvalidData` after reading at most this many bytes.
    pub max_frame_bytes: usize,
    /// Largest threshold ladder a request may carry.
    pub max_thresholds: usize,
    /// Read/write deadlines pinned on every accepted connection.
    pub io: StreamDeadlines,
}

impl Default for ProbeLimits {
    fn default() -> Self {
        ProbeLimits {
            max_frame_bytes: 64 * 1024,
            max_thresholds: 1024,
            io: StreamDeadlines::symmetric(Duration::from_secs(5)),
        }
    }
}

/// The headless probe: owns the simulator and testee program.
pub struct ProbeServer {
    sim: MachineSim,
    program: Program,
    limits: ProbeLimits,
    faults: Arc<dyn FaultInjector>,
}

impl ProbeServer {
    /// Creates a probe for one testee with default limits and no faults.
    pub fn new(sim: MachineSim, program: Program) -> Self {
        ProbeServer {
            sim,
            program,
            limits: ProbeLimits::default(),
            faults: Arc::new(NoFaults),
        }
    }

    /// Overrides the hardening limits.
    pub fn with_limits(mut self, limits: ProbeLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Plugs in a fault injector (tests, chaos drills).
    pub fn with_faults(mut self, faults: Arc<dyn FaultInjector>) -> Self {
        self.faults = faults;
        self
    }

    /// Binds an ephemeral localhost port; returns the listener so the
    /// caller learns the address before serving.
    pub fn bind() -> std::io::Result<TcpListener> {
        TcpListener::bind("127.0.0.1:0")
    }

    /// Serves exactly `n` connections on `listener`, then returns.
    ///
    /// Per-connection failures (malformed JSON, oversized frames, timed-
    /// out or mid-request-dropped connections) are recorded in the
    /// `probe.errors` counter and do **not** kill the accept loop — a
    /// probe next to a long campaign must survive a misbehaving client.
    /// Only listener-level failures propagate.
    pub fn serve(&self, listener: &TcpListener, n: usize) -> std::io::Result<()> {
        for _ in 0..n {
            let (stream, _) = listener.accept()?;
            match self.faults.next("probe.accept") {
                Some(Fault::RefuseAccept) | Some(Fault::DropConnection) => {
                    np_telemetry::counter!("probe.faults.refused").inc();
                    drop(stream);
                    continue;
                }
                Some(Fault::Delay(d)) => std::thread::sleep(d),
                _ => {}
            }
            if self.handle(stream).is_err() {
                np_telemetry::counter!("probe.errors").inc();
            }
        }
        Ok(())
    }

    fn handle(&self, stream: TcpStream) -> std::io::Result<()> {
        let _span = np_telemetry::span!("probe.request", "probe");
        self.limits.io.apply(&stream)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let line = read_line_bounded(&mut reader, self.limits.max_frame_bytes)?;
        np_telemetry::counter!("probe.rx_bytes").add(line.len() as u64);
        let req: ProbeRequest = serde_json::from_str(line.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        self.validate(&req)?;

        let mut pebs =
            np_counters::pebs::CyclingPebs::new(req.thresholds.clone(), req.slices_per_step);
        self.sim
            .run_observed(&self.program, req.seed, &mut pebs)
            .map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("invalid probe program: {e}"),
                )
            })?;

        let resp = ProbeResponse {
            thresholds: req.thresholds,
            counts: pebs.estimated_exceed_counts(),
            coverage: pebs.coverage().to_vec(),
            total_slices: pebs.total_slices(),
        };
        let mut out = serde_json::to_string(&resp)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        out.push('\n');
        let mut payload = out.into_bytes();
        match self.faults.next("probe.response") {
            Some(Fault::DropConnection) | Some(Fault::RefuseAccept) => {
                np_telemetry::counter!("probe.faults.dropped").inc();
                return Ok(());
            }
            Some(Fault::TruncatePayload { keep }) => {
                np_telemetry::counter!("probe.faults.truncated").inc();
                payload.truncate(keep);
            }
            Some(Fault::GarbageBytes { len, seed }) => {
                np_telemetry::counter!("probe.faults.garbage").inc();
                payload = Fault::garbage(len, seed);
            }
            Some(Fault::Delay(d)) => {
                np_telemetry::counter!("probe.faults.delayed").inc();
                std::thread::sleep(d);
            }
            None => {}
        }
        let mut stream = stream;
        stream.write_all(&payload)?;
        stream.flush()?;
        np_telemetry::counter!("probe.tx_bytes").add(payload.len() as u64);
        np_telemetry::counter!("probe.requests").inc();
        Ok(())
    }

    /// Rejects requests the measurement layer would panic on — the server
    /// must stay up no matter what arrives on the wire.
    fn validate(&self, req: &ProbeRequest) -> std::io::Result<()> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        if req.thresholds.is_empty() {
            return Err(bad("request carries no thresholds".into()));
        }
        if req.thresholds.len() > self.limits.max_thresholds {
            return Err(bad(format!(
                "request carries {} thresholds (limit {})",
                req.thresholds.len(),
                self.limits.max_thresholds
            )));
        }
        if req.thresholds.windows(2).any(|w| w[0] >= w[1]) {
            return Err(bad("thresholds must strictly ascend".into()));
        }
        Ok(())
    }
}

/// Client-side fetch policy: how hard to try, how long to wait, and how
/// finely to shard the ladder.
#[derive(Debug, Clone)]
pub struct FetchPolicy {
    /// Reconnect-with-backoff schedule per chunk.
    pub retry: RetryPolicy,
    /// Read/write deadlines pinned on every connection (the read deadline
    /// doubles as the connect timeout).
    pub io: StreamDeadlines,
    /// Thresholds per request; `0` sends the whole ladder in one request.
    /// Sharding trades extra (deterministic, same-seed) probe runs for
    /// partial-result degradation when the link is unreliable.
    pub chunk_thresholds: usize,
    /// Largest response frame accepted.
    pub max_frame_bytes: usize,
}

impl Default for FetchPolicy {
    fn default() -> Self {
        FetchPolicy {
            retry: RetryPolicy::new(3),
            io: StreamDeadlines::symmetric(Duration::from_secs(5)),
            chunk_thresholds: 0,
            max_frame_bytes: 1024 * 1024,
        }
    }
}

/// Why a resilient fetch failed outright (partial losses degrade instead).
#[derive(Debug)]
pub enum ProbeError {
    /// The circuit breaker rejected every chunk.
    CircuitOpen,
    /// Every chunk exhausted its retry policy; no usable data came back.
    Exhausted {
        /// Chunks attempted.
        chunks: usize,
        /// The last chunk's terminal error.
        last: String,
    },
    /// The address did not resolve or the response was structurally
    /// unusable even though transport succeeded.
    BadResponse(String),
}

impl std::fmt::Display for ProbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeError::CircuitOpen => write!(f, "probe circuit open: fetch rejected"),
            ProbeError::Exhausted { chunks, last } => {
                write!(f, "all {chunks} probe chunks failed; last error: {last}")
            }
            ProbeError::BadResponse(msg) => write!(f, "unusable probe response: {msg}"),
        }
    }
}

impl std::error::Error for ProbeError {}

/// Front-end client: requests a measurement and assembles the histogram.
pub struct RemoteMemhist;

impl RemoteMemhist {
    /// Fetches one measurement from the probe at `addr` — the legacy
    /// single-shot path: one request, no retries, unbounded waits.
    pub fn fetch(
        addr: impl ToSocketAddrs,
        config: &MemhistConfig,
        seed: u64,
    ) -> std::io::Result<MemhistResult> {
        let _span = np_telemetry::span!("probe.fetch", "probe");
        let addr = resolve(addr)?;
        let req = ProbeRequest {
            seed,
            thresholds: config.thresholds.clone(),
            slices_per_step: config.slices_per_step,
        };
        let resp = roundtrip(&addr, &req, StreamDeadlines::unbounded(), 1024 * 1024)?;
        let histogram = LatencyHistogram::from_threshold_counts(&resp.thresholds, &resp.counts)
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad threshold response")
            })?;
        Ok(MemhistResult::complete(
            histogram,
            resp.coverage,
            resp.total_slices,
        ))
    }

    /// Fetches with retry, deadlines, optional chunking and an optional
    /// circuit breaker — the production path.
    ///
    /// Chunks that exhaust the retry policy are *dropped from the ladder*
    /// rather than failing the fetch: the result is assembled from the
    /// surviving thresholds (exceedance counts compose across same-seed
    /// runs), flagged [`MemhistResult::degraded`], and the lost intervals
    /// are enumerated in [`MemhistResult::missing_intervals`]. Only a
    /// fetch that loses *every* chunk errors.
    pub fn fetch_resilient(
        addr: impl ToSocketAddrs,
        config: &MemhistConfig,
        seed: u64,
        policy: &FetchPolicy,
        breaker: Option<&CircuitBreaker>,
    ) -> Result<MemhistResult, ProbeError> {
        let _span = np_telemetry::span!("probe.fetch_resilient", "probe");
        let addr = resolve(&addr).map_err(|e| ProbeError::BadResponse(e.to_string()))?;
        let chunk = if policy.chunk_thresholds == 0 {
            config.thresholds.len().max(1)
        } else {
            policy.chunk_thresholds
        };
        let chunks: Vec<&[u64]> = config.thresholds.chunks(chunk).collect();
        np_telemetry::counter!("probe.fetch.chunks").add(chunks.len() as u64);

        let mut surviving: Vec<(u64, i64, u64)> = Vec::new(); // (threshold, count, coverage)
        let mut total_slices = 0u64;
        let mut lost: Vec<u64> = Vec::new();
        let mut rejected = 0usize;
        let mut last_err = String::new();
        for thresholds in &chunks {
            if let Some(b) = breaker {
                if !b.allow() {
                    rejected += 1;
                    lost.extend_from_slice(thresholds);
                    continue;
                }
            }
            let req = ProbeRequest {
                seed,
                thresholds: thresholds.to_vec(),
                slices_per_step: config.slices_per_step,
            };
            let outcome = policy.retry.run(
                |attempt| {
                    let io = tighten(policy.io, attempt.deadline);
                    roundtrip(&addr, &req, io, policy.max_frame_bytes).and_then(|resp| {
                        if resp.thresholds == req.thresholds
                            && resp.counts.len() == req.thresholds.len()
                            && resp.coverage.len() == req.thresholds.len()
                        {
                            Ok(resp)
                        } else {
                            Err(std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                "response does not match the request's ladder",
                            ))
                        }
                    })
                },
                // Everything on this path is transient: connection drops,
                // timeouts, truncated/garbage frames — a fresh connection
                // may well succeed.
                |_| true,
            );
            match outcome {
                Ok(resp) => {
                    if let Some(b) = breaker {
                        b.record_success();
                    }
                    for ((&t, &c), &cov) in
                        resp.thresholds.iter().zip(&resp.counts).zip(&resp.coverage)
                    {
                        surviving.push((t, c, cov));
                    }
                    total_slices = total_slices.max(resp.total_slices);
                }
                Err(e) => {
                    if let Some(b) = breaker {
                        b.record_failure();
                    }
                    np_telemetry::counter!("probe.fetch.chunks_lost").inc();
                    if let RetryError::DeadlineExceeded { .. } = &e {
                        np_telemetry::counter!("probe.fetch.deadline_exceeded").inc();
                    }
                    last_err = e.to_string();
                    lost.extend_from_slice(thresholds);
                }
            }
        }

        if surviving.is_empty() {
            return Err(if rejected == chunks.len() {
                ProbeError::CircuitOpen
            } else {
                ProbeError::Exhausted {
                    chunks: chunks.len(),
                    last: last_err,
                }
            });
        }

        let thresholds: Vec<u64> = surviving.iter().map(|&(t, _, _)| t).collect();
        let counts: Vec<i64> = surviving.iter().map(|&(_, c, _)| c).collect();
        let coverage: Vec<u64> = surviving.iter().map(|&(_, _, cov)| cov).collect();
        let histogram = LatencyHistogram::from_threshold_counts(&thresholds, &counts)
            .ok_or_else(|| ProbeError::BadResponse("surviving ladder unusable".into()))?;
        let missing_intervals = missing_intervals(&config.thresholds, &lost);
        let mut result = MemhistResult::complete(histogram, coverage, total_slices);
        if !missing_intervals.is_empty() {
            np_telemetry::counter!("probe.fetch.degraded").inc();
            result.degraded = true;
            result.missing_intervals = missing_intervals;
        }
        Ok(result)
    }
}

/// The `[lo, hi)` ladder intervals whose lower threshold was lost.
fn missing_intervals(ladder: &[u64], lost: &[u64]) -> Vec<(u64, u64)> {
    ladder
        .iter()
        .enumerate()
        .filter(|(_, t)| lost.contains(t))
        .map(|(i, &t)| (t, ladder.get(i + 1).copied().unwrap_or(u64::MAX)))
        .collect()
}

fn resolve(addr: impl ToSocketAddrs) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "address resolved to nothing",
        )
    })
}

/// Shrinks per-direction stream deadlines so they never outlive the
/// attempt's own deadline.
fn tighten(io: StreamDeadlines, deadline: Option<std::time::Instant>) -> StreamDeadlines {
    let Some(d) = deadline else { return io };
    let rem = d
        .saturating_duration_since(std::time::Instant::now())
        .max(Duration::from_millis(1));
    StreamDeadlines {
        read: Some(io.read.map_or(rem, |t| t.min(rem))),
        write: Some(io.write.map_or(rem, |t| t.min(rem))),
    }
}

/// One connect → request → response exchange under the given deadlines.
fn roundtrip(
    addr: &SocketAddr,
    req: &ProbeRequest,
    io: StreamDeadlines,
    max_frame_bytes: usize,
) -> std::io::Result<ProbeResponse> {
    let stream = match io.read {
        Some(t) => TcpStream::connect_timeout(addr, t)?,
        None => TcpStream::connect(addr)?,
    };
    io.apply(&stream)?;
    let mut out = serde_json::to_string(req)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    out.push('\n');
    let mut writer = stream.try_clone()?;
    writer.write_all(out.as_bytes())?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let line = read_line_bounded(&mut reader, max_frame_bytes)?;
    serde_json::from_str(line.trim())
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memhist::Memhist;
    use np_resilience::ScriptedFaults;
    use np_simulator::MachineConfig;
    use np_workloads::mlc::LatencyChecker;
    use np_workloads::Workload;

    fn quiet_sim() -> MachineSim {
        let mut cfg = MachineConfig::two_socket_small();
        cfg.noise.timer_interval = 0;
        cfg.noise.dram_jitter = 0.0;
        cfg.timeslice_cycles = 5_000;
        MachineSim::new(cfg)
    }

    fn fast_policy() -> FetchPolicy {
        FetchPolicy {
            retry: RetryPolicy::immediate(3),
            io: StreamDeadlines::symmetric(Duration::from_secs(2)),
            ..FetchPolicy::default()
        }
    }

    #[test]
    fn remote_measurement_matches_local() {
        let sim = quiet_sim();
        let program = LatencyChecker::new(0, 0, 4 << 20, 1500).build(sim.config());
        let config = MemhistConfig::default();

        // Local reference.
        let local = Memhist::new(config.clone()).measure(&sim, &program, 5);

        // Remote probe in a background thread.
        let listener = ProbeServer::bind().unwrap();
        let addr = listener.local_addr().unwrap();
        let server = ProbeServer::new(quiet_sim(), program);
        let handle = std::thread::spawn(move || server.serve(&listener, 1));

        let remote = RemoteMemhist::fetch(addr, &config, 5).unwrap();
        handle.join().unwrap().unwrap();

        // Same deterministic run ⇒ identical bins.
        assert_eq!(remote.histogram.bins.len(), local.histogram.bins.len());
        for (r, l) in remote.histogram.bins.iter().zip(&local.histogram.bins) {
            assert_eq!(r.count, l.count, "bin [{}, {})", r.lo, r.hi);
        }
        assert_eq!(remote.total_slices, local.total_slices);
        assert!(!remote.degraded);
        assert!(remote.missing_intervals.is_empty());
    }

    #[test]
    fn serves_multiple_sequential_requests() {
        let sim = quiet_sim();
        let program = LatencyChecker::new(0, 0, 2 << 20, 400).build(sim.config());
        let config = MemhistConfig::default();

        let listener = ProbeServer::bind().unwrap();
        let addr = listener.local_addr().unwrap();
        let server = ProbeServer::new(quiet_sim(), program);
        let handle = std::thread::spawn(move || server.serve(&listener, 2));

        let a = RemoteMemhist::fetch(addr, &config, 1).unwrap();
        let b = RemoteMemhist::fetch(addr, &config, 2).unwrap();
        handle.join().unwrap().unwrap();
        // Different seeds may differ, but both are well-formed.
        assert_eq!(a.histogram.bins.len(), config.thresholds.len());
        assert_eq!(b.histogram.bins.len(), config.thresholds.len());
    }

    #[test]
    fn client_reports_connection_failure() {
        // Bind-then-drop guarantees a port with no listener.
        let addr = {
            let l = ProbeServer::bind().unwrap();
            l.local_addr().unwrap()
        };
        let err = RemoteMemhist::fetch(addr, &MemhistConfig::default(), 1);
        assert!(err.is_err());
    }

    #[test]
    fn server_survives_malformed_requests() {
        use std::io::{Read, Write};
        let sim = quiet_sim();
        let program = LatencyChecker::new(0, 0, 1 << 20, 50).build(sim.config());
        let listener = ProbeServer::bind().unwrap();
        let addr = listener.local_addr().unwrap();
        let server = ProbeServer::new(quiet_sim(), program);
        let errors = np_telemetry::global().counter("probe.errors");
        let errors_before = errors.get();
        np_telemetry::set_enabled(true);
        // Two connections: garbage, then a real request.
        let handle = std::thread::spawn(move || server.serve(&listener, 2));

        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(b"this is not json\n").unwrap();
        stream.flush().unwrap();
        // Server hangs up on the bad connection without a response...
        let mut buf = String::new();
        let _ = stream.read_to_string(&mut buf);
        assert!(buf.is_empty());
        drop(stream);

        // ...but the accept loop survives and serves the next client.
        let good = RemoteMemhist::fetch(addr, &MemhistConfig::default(), 3).unwrap();
        assert!(!good.histogram.bins.is_empty());
        assert!(handle.join().unwrap().is_ok());
        assert!(
            errors.get() > errors_before,
            "malformed request not counted"
        );
    }

    #[test]
    fn oversized_request_is_bounded_and_survived() {
        use std::io::{Read, Write};
        let sim = quiet_sim();
        let program = LatencyChecker::new(0, 0, 1 << 20, 50).build(sim.config());
        let listener = ProbeServer::bind().unwrap();
        let addr = listener.local_addr().unwrap();
        let server = ProbeServer::new(quiet_sim(), program).with_limits(ProbeLimits {
            max_frame_bytes: 4096,
            ..ProbeLimits::default()
        });
        let handle = std::thread::spawn(move || server.serve(&listener, 2));

        // A newline-free flood far beyond the frame limit: the server must
        // cut the connection after max_frame_bytes, not buffer it all.
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let flood = vec![b'a'; 1 << 20];
        // The server may hang up mid-write; that is success, not failure.
        let _ = stream.write_all(&flood);
        let _ = stream.flush();
        let mut buf = String::new();
        let _ = stream.read_to_string(&mut buf);
        assert!(buf.is_empty(), "oversized request must get no response");
        drop(stream);

        // The accept loop survives and serves a well-formed client.
        let good = RemoteMemhist::fetch(addr, &MemhistConfig::default(), 3).unwrap();
        assert!(!good.histogram.bins.is_empty());
        assert!(handle.join().unwrap().is_ok());
    }

    #[test]
    fn invalid_ladders_are_rejected_not_panicked() {
        use std::io::Read;
        use std::io::Write as _;
        let sim = quiet_sim();
        let program = LatencyChecker::new(0, 0, 1 << 20, 50).build(sim.config());
        let listener = ProbeServer::bind().unwrap();
        let addr = listener.local_addr().unwrap();
        let server = ProbeServer::new(quiet_sim(), program);
        let handle = std::thread::spawn(move || server.serve(&listener, 3));

        // Empty ladder and a descending ladder would both panic
        // CyclingPebs::new if they reached it.
        for bad in [
            r#"{"seed":1,"thresholds":[],"slices_per_step":1}"#,
            r#"{"seed":1,"thresholds":[64,4],"slices_per_step":1}"#,
        ] {
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            writeln!(stream, "{bad}").unwrap();
            let mut buf = String::new();
            let _ = stream.read_to_string(&mut buf);
            assert!(buf.is_empty(), "invalid ladder must get no response");
        }

        let good = RemoteMemhist::fetch(addr, &MemhistConfig::default(), 3).unwrap();
        assert!(!good.histogram.bins.is_empty());
        assert!(handle.join().unwrap().is_ok());
    }

    #[test]
    fn resilient_fetch_equals_legacy_on_a_clean_link() {
        let sim = quiet_sim();
        let program = LatencyChecker::new(0, 0, 2 << 20, 600).build(sim.config());
        let config = MemhistConfig::default();
        let listener = ProbeServer::bind().unwrap();
        let addr = listener.local_addr().unwrap();
        let server = ProbeServer::new(quiet_sim(), program);
        let handle = std::thread::spawn(move || server.serve(&listener, 2));

        let legacy = RemoteMemhist::fetch(addr, &config, 4).unwrap();
        let resilient =
            RemoteMemhist::fetch_resilient(addr, &config, 4, &fast_policy(), None).unwrap();
        handle.join().unwrap().unwrap();
        assert!(!resilient.degraded);
        for (r, l) in resilient.histogram.bins.iter().zip(&legacy.histogram.bins) {
            assert_eq!(r.count, l.count);
        }
    }

    #[test]
    fn chunked_fetch_composes_to_the_same_histogram() {
        let sim = quiet_sim();
        let program = LatencyChecker::new(0, 0, 2 << 20, 600).build(sim.config());
        let config = MemhistConfig::default();
        let listener = ProbeServer::bind().unwrap();
        let addr = listener.local_addr().unwrap();
        let server = ProbeServer::new(quiet_sim(), program);
        let n_chunks = config.thresholds.len().div_ceil(4);
        let handle = std::thread::spawn(move || server.serve(&listener, n_chunks + 1));

        let whole = RemoteMemhist::fetch(addr, &config, 4).unwrap();
        let chunked = RemoteMemhist::fetch_resilient(
            addr,
            &config,
            4,
            &FetchPolicy {
                chunk_thresholds: 4,
                ..fast_policy()
            },
            None,
        )
        .unwrap();
        handle.join().unwrap().unwrap();
        assert!(!chunked.degraded);
        assert_eq!(chunked.histogram.bins.len(), whole.histogram.bins.len());
        // Chunked requests cycle each sub-ladder on its own schedule, so
        // the scaled estimates differ slightly from the whole-ladder run;
        // the assembled histograms must still agree in aggregate.
        let tc = chunked.histogram.total_count() as f64;
        let tw = whole.histogram.total_count() as f64;
        assert!(
            (tc - tw).abs() / tw < 0.35,
            "chunked total {tc} vs whole total {tw}"
        );
    }

    #[test]
    fn fetch_recovers_from_a_dropped_connection() {
        let sim = quiet_sim();
        let program = LatencyChecker::new(0, 0, 2 << 20, 400).build(sim.config());
        let config = MemhistConfig::default();
        let listener = ProbeServer::bind().unwrap();
        let addr = listener.local_addr().unwrap();
        let faults =
            Arc::new(ScriptedFaults::new().inject("probe.response", Fault::DropConnection));
        let server = ProbeServer::new(quiet_sim(), program).with_faults(faults);
        // Connection 1 is dropped mid-response, connection 2 succeeds.
        let handle = std::thread::spawn(move || server.serve(&listener, 2));

        let result =
            RemoteMemhist::fetch_resilient(addr, &config, 4, &fast_policy(), None).unwrap();
        handle.join().unwrap().unwrap();
        assert!(!result.degraded, "retry must recover, not degrade");
        assert_eq!(result.histogram.bins.len(), config.thresholds.len());
    }

    #[test]
    fn lost_chunks_degrade_with_enumerated_intervals() {
        let sim = quiet_sim();
        let program = LatencyChecker::new(0, 0, 2 << 20, 400).build(sim.config());
        let config = MemhistConfig {
            thresholds: vec![1, 64, 256, 420],
            slices_per_step: 1,
        };
        let listener = ProbeServer::bind().unwrap();
        let addr = listener.local_addr().unwrap();
        // Chunk 1 ([1]) is dropped on both attempts; chunks 2–4 are clean.
        let faults =
            Arc::new(ScriptedFaults::new().inject_n("probe.response", Fault::DropConnection, 2));
        let server = ProbeServer::new(quiet_sim(), program).with_faults(faults);
        let handle = std::thread::spawn(move || server.serve(&listener, 5));

        let policy = FetchPolicy {
            retry: RetryPolicy::immediate(2),
            chunk_thresholds: 1,
            ..fast_policy()
        };
        let result = RemoteMemhist::fetch_resilient(addr, &config, 4, &policy, None).unwrap();
        handle.join().unwrap().unwrap();
        assert!(result.degraded);
        assert_eq!(result.missing_intervals, vec![(1, 64)]);
        // The surviving ladder still subtracts into valid bins.
        assert_eq!(result.histogram.bins.len(), 3);
        assert_eq!(result.histogram.bins[0].lo, 64);
    }

    #[test]
    fn request_roundtrips_as_json() {
        let req = ProbeRequest {
            seed: 7,
            thresholds: vec![4, 64],
            slices_per_step: 2,
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: ProbeRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.seed, 7);
        assert_eq!(back.thresholds, vec![4, 64]);
    }
}
