//! Memhist — latency analysis (§IV-B).
//!
//! "Memhist was developed to better characterize NUMA workloads by
//! summarizing latency penalties of memory load operations in a
//! histogram." The measurement mechanics follow the paper exactly:
//!
//! * only one PEBS load-latency event at a time → thresholds are
//!   **time-cycled** (the paper cycles at 100 Hz, i.e. 10 ms slices);
//! * each threshold counts loads *at or above* it; interval counts are the
//!   **difference of two threshold measurements** and may come out
//!   negative under jitter — "an error that cannot be avoided";
//! * "Intel does not guarantee measurements of under three cycles to be
//!   correct" → sub-3-cycle bins are flagged uncertain (grey in Fig. 10);
//! * two display modes: event occurrences (Fig. 10a) and event costs —
//!   occurrences × latency (Fig. 10b);
//! * a [`probe`] submodule provides the remote TCP probe of Fig. 6.

pub mod probe;

use np_counters::pebs::{CyclingPebs, PebsCollector};
use np_simulator::{MachineSim, Program};
pub use np_stats::histogram::HistogramMode;
use np_stats::histogram::LatencyHistogram;

/// Memhist configuration.
#[derive(Debug, Clone)]
pub struct MemhistConfig {
    /// The threshold ladder, ascending. The default spans L1 to multi-hop
    /// remote DRAM.
    pub thresholds: Vec<u64>,
    /// Timeslices spent per threshold before rotating. With the
    /// simulator's default 10 µs slices, 1 slice ≈ the paper's 100 Hz
    /// scaled to simulated time.
    pub slices_per_step: u32,
}

impl Default for MemhistConfig {
    fn default() -> Self {
        MemhistConfig {
            thresholds: vec![
                1, 4, 8, 16, 32, 48, 64, 96, 128, 192, 256, 320, 420, 560, 760,
            ],
            slices_per_step: 1,
        }
    }
}

/// A measured latency histogram with its acquisition diagnostics.
#[derive(Debug, Clone)]
pub struct MemhistResult {
    /// The assembled histogram.
    pub histogram: LatencyHistogram,
    /// Slices each threshold was active (coverage diagnostic).
    pub coverage: Vec<u64>,
    /// Total timeslices observed.
    pub total_slices: u64,
    /// True when part of the threshold ladder was lost in acquisition
    /// (e.g. a remote fetch dropped chunks past its retry budget) and the
    /// histogram is assembled from the surviving thresholds only.
    pub degraded: bool,
    /// The `[lo, hi)` ladder intervals lost to degradation, in ascending
    /// order; empty for a complete measurement.
    pub missing_intervals: Vec<(u64, u64)>,
}

impl MemhistResult {
    /// A complete (non-degraded) result.
    pub fn complete(histogram: LatencyHistogram, coverage: Vec<u64>, total_slices: u64) -> Self {
        MemhistResult {
            histogram,
            coverage,
            total_slices,
            degraded: false,
            missing_intervals: Vec::new(),
        }
    }

    /// Bins whose subtraction went negative.
    pub fn negative_bins(&self) -> usize {
        self.histogram.negative_bins()
    }

    /// Renders the histogram in the requested mode (Fig. 10 as ASCII).
    pub fn render(&self, mode: HistogramMode) -> String {
        // Truncate dominant cache bars like the paper truncates L2
        // ("L2 results truncated to approximately half their height").
        let max = self
            .histogram
            .bins
            .iter()
            .map(|b| match mode {
                HistogramMode::Occurrences => b.count.max(0),
                HistogramMode::Costs => b.cost_cycles,
            })
            .max()
            .unwrap_or(0);
        let second = self
            .histogram
            .bins
            .iter()
            .map(|b| match mode {
                HistogramMode::Occurrences => b.count.max(0),
                HistogramMode::Costs => b.cost_cycles,
            })
            .filter(|&v| v < max)
            .max()
            .unwrap_or(max);
        let cap = if max > 4 * second && second > 0 {
            Some(2 * second)
        } else {
            None
        };
        let mut out = self.histogram.render_ascii(mode, 48, cap);
        if self.degraded {
            let lost: Vec<String> = self
                .missing_intervals
                .iter()
                .map(|&(lo, hi)| {
                    if hi == u64::MAX {
                        format!("[{lo}, inf)")
                    } else {
                        format!("[{lo}, {hi})")
                    }
                })
                .collect();
            out.push_str(&format!(
                "\nDEGRADED: {} interval(s) lost in acquisition: {}\n",
                lost.len(),
                lost.join(", ")
            ));
        }
        out
    }
}

/// The Memhist tool.
///
/// ```
/// use np_core::memhist::{HistogramMode, Memhist};
/// use np_simulator::{MachineConfig, MachineSim};
/// use np_workloads::mlc::LatencyChecker;
/// use np_workloads::Workload;
///
/// let sim = MachineSim::new(MachineConfig::two_socket_small());
/// let chase = LatencyChecker::new(0, 0, 4 << 20, 1000).build(sim.config());
///
/// let result = Memhist::with_defaults().measure(&sim, &chase, 1);
/// // The DRAM chase produces a peak in the local-memory latency realm.
/// let peaks = result.histogram.peaks(HistogramMode::Occurrences);
/// assert!(peaks.iter().any(|&i| result.histogram.bins[i].lo >= 128));
/// ```
pub struct Memhist {
    config: MemhistConfig,
}

impl Memhist {
    /// Creates the tool with `config`.
    pub fn new(config: MemhistConfig) -> Self {
        assert!(!config.thresholds.is_empty());
        Memhist { config }
    }

    /// Creates the tool with the default threshold ladder.
    pub fn with_defaults() -> Self {
        Self::new(MemhistConfig::default())
    }

    /// Measures `program` on `sim`: runs once with threshold cycling and
    /// assembles the histogram by pairwise subtraction of the scaled
    /// exceedance estimates.
    pub fn measure(&self, sim: &MachineSim, program: &Program, seed: u64) -> MemhistResult {
        let mut pebs =
            CyclingPebs::new(self.config.thresholds.clone(), self.config.slices_per_step);
        // An invalid program contributes no samples; the histogram
        // assembles from zero counts.
        let _ = sim.run_observed(program, seed, &mut pebs);
        let counts = pebs.estimated_exceed_counts();
        let histogram = LatencyHistogram::from_threshold_counts(&self.config.thresholds, &counts)
            .expect("thresholds validated in constructor");
        MemhistResult::complete(histogram, pebs.coverage().to_vec(), pebs.total_slices())
    }

    /// Ground-truth histogram: observes *every* load in one run (no
    /// threshold cycling, no scaling). Used for verification and the
    /// cycling-error ablation (X2).
    pub fn measure_exact(&self, sim: &MachineSim, program: &Program, seed: u64) -> MemhistResult {
        struct AllLoads {
            thresholds: Vec<u64>,
            exceed: Vec<i64>,
        }
        impl np_simulator::SimObserver for AllLoads {
            fn on_load_sample(&mut self, s: &np_simulator::LoadSample) {
                for (i, &t) in self.thresholds.iter().enumerate() {
                    if s.latency >= t {
                        self.exceed[i] += 1;
                    }
                }
            }
        }
        let mut obs = AllLoads {
            thresholds: self.config.thresholds.clone(),
            exceed: vec![0; self.config.thresholds.len()],
        };
        // An invalid program contributes no samples; the histogram
        // assembles from zero counts.
        let _ = sim.run_observed(program, seed, &mut obs);
        let histogram =
            LatencyHistogram::from_threshold_counts(&self.config.thresholds, &obs.exceed)
                .expect("thresholds validated in constructor");
        MemhistResult::complete(histogram, vec![], 0)
    }

    /// One dedicated PEBS run for `threshold`: the exact exceedance count
    /// the hardware would report with that single event programmed for the
    /// whole run. Pure in `(program, seed)`, like the simulator itself.
    fn ladder_count(&self, sim: &MachineSim, program: &Program, seed: u64, threshold: u64) -> i64 {
        // Max period: exceedances are counted in full, but almost no
        // samples are recorded — the ladder only needs the counter.
        let mut pebs = PebsCollector::new(threshold, u32::MAX);
        // An invalid program contributes no samples; the histogram
        // assembles from zero counts.
        let _ = sim.run_observed(program, seed, &mut pebs);
        pebs.exceed_count as i64
    }

    fn ladder_result(&self, counts: &[i64]) -> MemhistResult {
        let histogram = LatencyHistogram::from_threshold_counts(&self.config.thresholds, counts)
            .expect("thresholds validated in constructor");
        MemhistResult::complete(histogram, vec![], 0)
    }

    /// Ladder measurement: one dedicated, identically-seeded run per
    /// threshold instead of time cycling. Every run observes the same
    /// simulated execution, so each exceedance count is exact and the
    /// assembled histogram is bit-identical to [`Memhist::measure_exact`]
    /// — at the cost of `thresholds.len()` runs, which is precisely the
    /// trade [`Memhist::measure_ladder_pool`] parallelises away.
    pub fn measure_ladder(&self, sim: &MachineSim, program: &Program, seed: u64) -> MemhistResult {
        let counts: Vec<i64> = self
            .config
            .thresholds
            .iter()
            .map(|&t| self.ladder_count(sim, program, seed, t))
            .collect();
        self.ladder_result(&counts)
    }

    /// [`Memhist::measure_ladder`] with the per-threshold runs fanned
    /// across `pool`. Each run is an independent pure simulation and the
    /// pool merges counts in threshold order, so the result is
    /// bit-identical to the sequential ladder for any thread count.
    pub fn measure_ladder_pool(
        &self,
        sim: &MachineSim,
        program: &Program,
        seed: u64,
        pool: &np_parallel::Pool,
    ) -> MemhistResult {
        let counts = pool.map(&self.config.thresholds, |&t| {
            self.ladder_count(sim, program, seed, t)
        });
        self.ladder_result(&counts)
    }

    /// Measures with full visibility into *which level served each load*
    /// and annotates every bin with its dominant source — the "annotated
    /// peaks" of Fig. 10 (`L2`, `L3`, `local memory`, `remote memory`),
    /// produced from the simulator's ground truth rather than guessed from
    /// positions.
    pub fn measure_annotated(
        &self,
        sim: &MachineSim,
        program: &Program,
        seed: u64,
    ) -> AnnotatedHistogram {
        use np_simulator::{LoadSample, ServedBy, SimObserver};
        struct PerLevel {
            thresholds: Vec<u64>,
            exceed: Vec<i64>,
            // Per bin, counts per level: [L1, L2, L3, local, remote, hitm].
            levels: Vec<[u64; 6]>,
        }
        impl PerLevel {
            fn bin_of(&self, latency: u64) -> Option<usize> {
                if latency < self.thresholds[0] {
                    return None;
                }
                Some(self.thresholds.partition_point(|&t| t <= latency) - 1)
            }
        }
        impl SimObserver for PerLevel {
            fn on_load_sample(&mut self, s: &LoadSample) {
                for (i, &t) in self.thresholds.iter().enumerate() {
                    if s.latency >= t {
                        self.exceed[i] += 1;
                    }
                }
                if let Some(bin) = self.bin_of(s.latency) {
                    let lvl = match s.served {
                        ServedBy::L1 => 0,
                        ServedBy::L2 => 1,
                        ServedBy::L3 => 2,
                        ServedBy::LocalDram => 3,
                        ServedBy::RemoteDram { .. } => 4,
                        ServedBy::Hitm { .. } => 5,
                    };
                    self.levels[bin][lvl] += 1;
                }
            }
        }
        let mut obs = PerLevel {
            thresholds: self.config.thresholds.clone(),
            exceed: vec![0; self.config.thresholds.len()],
            levels: vec![[0; 6]; self.config.thresholds.len()],
        };
        // An invalid program contributes no samples; the histogram
        // assembles from zero counts.
        let _ = sim.run_observed(program, seed, &mut obs);
        let histogram =
            LatencyHistogram::from_threshold_counts(&self.config.thresholds, &obs.exceed)
                .expect("thresholds validated in constructor");
        AnnotatedHistogram {
            histogram,
            levels: obs.levels,
        }
    }

    /// Verifies measured peak positions against an `mlc`-style latency
    /// matrix (§V-B: "The annotated peaks were verified using the Intel
    /// Memory Latency Checker"): returns the measured peak bins that
    /// contain at least one ground-truth latency, and the ground-truth
    /// latencies not covered by any peak.
    pub fn verify_peaks(
        &self,
        result: &MemhistResult,
        mode: HistogramMode,
        ground_truth_latencies: &[f64],
    ) -> PeakVerification {
        let peaks = result.histogram.peaks(mode);
        let mut matched = Vec::new();
        let mut unmatched = Vec::new();
        for &lat in ground_truth_latencies {
            let hit = peaks.iter().any(|&i| {
                let b = &result.histogram.bins[i];
                // Tolerate one-bin smearing: the queueing component of the
                // use latency pushes samples into the neighbouring bin.
                let lo = if i > 0 {
                    result.histogram.bins[i - 1].lo
                } else {
                    b.lo
                };
                let hi = if i + 1 < result.histogram.bins.len() {
                    result.histogram.bins[i + 1].hi
                } else {
                    b.hi
                };
                (lat as u64) >= lo && ((lat as u64) < hi || hi == u64::MAX)
            });
            if hit {
                matched.push(lat);
            } else {
                unmatched.push(lat);
            }
        }
        PeakVerification {
            peak_bins: peaks,
            matched,
            unmatched,
        }
    }
}

/// A histogram whose bins carry serving-level annotations.
#[derive(Debug, Clone)]
pub struct AnnotatedHistogram {
    /// The assembled histogram (exact counts, no cycling error).
    pub histogram: LatencyHistogram,
    /// Per-bin counts by level: `[L1, L2, L3, local DRAM, remote DRAM,
    /// cache-to-cache]`.
    pub levels: Vec<[u64; 6]>,
}

impl AnnotatedHistogram {
    const LABELS: [&'static str; 6] = [
        "L1",
        "L2",
        "L3",
        "local memory",
        "remote memory",
        "cache-to-cache",
    ];

    /// The dominant serving level of a bin, if it holds any samples.
    pub fn dominant_level(&self, bin: usize) -> Option<&'static str> {
        let lv = self.levels.get(bin)?;
        let (idx, &max) = lv.iter().enumerate().max_by_key(|&(_, &v)| v)?;
        if max == 0 {
            None
        } else {
            Some(Self::LABELS[idx])
        }
    }

    /// Renders the histogram with Fig. 10-style peak annotations.
    pub fn render(&self, mode: HistogramMode, width: usize) -> String {
        let base = self.histogram.render_ascii(mode, width, None);
        base.lines()
            .enumerate()
            .map(|(i, line)| match self.dominant_level(i) {
                Some(label) => format!("{line}   <- {label}\n"),
                None => format!("{line}\n"),
            })
            .collect()
    }
}

/// Result of verifying Memhist peaks against `mlc` ground truth.
#[derive(Debug, Clone)]
pub struct PeakVerification {
    /// Indices of the histogram's peak bins.
    pub peak_bins: Vec<usize>,
    /// Ground-truth latencies covered by a peak (± one bin).
    pub matched: Vec<f64>,
    /// Ground-truth latencies no peak covers.
    pub unmatched: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_simulator::{MachineConfig, MachineSim};
    use np_workloads::mlc::LatencyChecker;
    use np_workloads::Workload;

    fn quiet() -> MachineSim {
        let mut cfg = MachineConfig::two_socket_small();
        cfg.noise.timer_interval = 0;
        cfg.noise.dram_jitter = 0.0;
        cfg.timeslice_cycles = 5_000;
        MachineSim::new(cfg)
    }

    #[test]
    fn local_chase_peaks_near_local_dram() {
        let sim = quiet();
        let w = LatencyChecker::new(0, 0, 8 << 20, 3000);
        let p = w.build(sim.config());
        let m = Memhist::with_defaults();
        let r = m.measure(&sim, &p, 1);
        let peaks = r.histogram.peaks(HistogramMode::Occurrences);
        assert!(!peaks.is_empty());
        // The dominant peak bin must contain ~265 cycles (DRAM + walk).
        let dominant = *peaks
            .iter()
            .max_by_key(|&&i| r.histogram.bins[i].count)
            .unwrap();
        let b = &r.histogram.bins[dominant];
        assert!(
            b.lo <= 265 && 265 < b.hi,
            "dominant peak [{}, {})",
            b.lo,
            b.hi
        );
    }

    #[test]
    fn remote_injection_adds_high_latency_mass() {
        let sim = quiet();
        let m = Memhist::with_defaults();
        let local = m.measure(
            &sim,
            &LatencyChecker::new(0, 0, 8 << 20, 2000).build(sim.config()),
            1,
        );
        let remote = m.measure(
            &sim,
            &LatencyChecker::remote_injector(8 << 20, 2000).build(sim.config()),
            1,
        );
        let mass_above = |r: &MemhistResult, cy: u64| -> i64 {
            r.histogram
                .bins
                .iter()
                .filter(|b| b.lo >= cy)
                .map(|b| b.count.max(0))
                .sum()
        };
        // Remote ~375: far more mass above 320 in the remote measurement.
        assert!(
            mass_above(&remote, 320) > 10 * mass_above(&local, 320).max(1),
            "remote {} vs local {}",
            mass_above(&remote, 320),
            mass_above(&local, 320)
        );
    }

    #[test]
    fn cost_mode_amplifies_expensive_bins() {
        let sim = quiet();
        let m = Memhist::with_defaults();
        // A mixed workload: a hot line (L1 hits) plus a DRAM pointer chase.
        let mut b = np_simulator::ProgramBuilder::new(&sim.config().topology, 4096);
        let hot = b.alloc(4096, np_simulator::AllocPolicy::Bind(0));
        let cold = b.alloc(8 << 20, np_simulator::AllocPolicy::Bind(0));
        let t = b.add_thread(0);
        for i in 0..2000u64 {
            b.load(t, hot);
            b.load_dependent(t, cold + (i * 769 % 2048) * 4096);
        }
        let r = m.measure_exact(&sim, &b.build(), 1);
        let h = &r.histogram;
        // Find the cheapest and the most expensive populated bins.
        let cheap = h
            .bins
            .iter()
            .find(|b| b.count > 0 && b.lo < 16)
            .expect("cache bin");
        let costly = h
            .bins
            .iter()
            .rev()
            .find(|b| b.count > 0 && b.lo >= 128)
            .expect("dram bin");
        // Costs re-weight towards the expensive bin.
        let occ_ratio = costly.count as f64 / cheap.count as f64;
        let cost_ratio = costly.cost_cycles as f64 / cheap.cost_cycles.max(1) as f64;
        assert!(
            cost_ratio > occ_ratio,
            "cost must amplify: {occ_ratio} -> {cost_ratio}"
        );
    }

    #[test]
    fn exact_measurement_conserves_samples() {
        let sim = quiet();
        let m = Memhist::with_defaults();
        let w = LatencyChecker::new(0, 0, 2 << 20, 500);
        let r = m.measure_exact(&sim, &w.build(sim.config()), 1);
        assert_eq!(r.negative_bins(), 0, "exact mode cannot go negative");
        // Total = loads at/above the lowest threshold (1 cycle = all).
        assert_eq!(r.histogram.total_count(), 500);
    }

    #[test]
    fn cycling_approximates_exact_for_steady_workloads() {
        let sim = quiet();
        let m = Memhist::with_defaults();
        let p = LatencyChecker::new(0, 0, 8 << 20, 4000).build(sim.config());
        let cycled = m.measure(&sim, &p, 1);
        let exact = m.measure_exact(&sim, &p, 1);
        let t_cycled = cycled.histogram.total_count() as f64;
        let t_exact = exact.histogram.total_count() as f64;
        assert!(
            (t_cycled - t_exact).abs() / t_exact < 0.35,
            "cycled {t_cycled} vs exact {t_exact}"
        );
        assert!(
            cycled.coverage.iter().all(|&c| c > 0),
            "all thresholds visited"
        );
    }

    #[test]
    fn ladder_is_bit_identical_to_exact() {
        let sim = quiet();
        let m = Memhist::with_defaults();
        let p = LatencyChecker::new(0, 0, 4 << 20, 1200).build(sim.config());
        let exact = m.measure_exact(&sim, &p, 3);
        let ladder = m.measure_ladder(&sim, &p, 3);
        assert_eq!(exact.histogram.bins.len(), ladder.histogram.bins.len());
        for (a, b) in exact.histogram.bins.iter().zip(&ladder.histogram.bins) {
            assert_eq!(a.count, b.count, "bin [{}, {})", a.lo, a.hi);
            assert_eq!(a.cost_cycles, b.cost_cycles);
        }
    }

    #[test]
    fn pooled_ladder_matches_sequential_at_any_thread_count() {
        let sim = quiet();
        let m = Memhist::with_defaults();
        let p = LatencyChecker::new(0, 0, 4 << 20, 1000).build(sim.config());
        let seq = m.measure_ladder(&sim, &p, 5);
        for threads in [1, 2, 8] {
            let pool = np_parallel::Pool::new(threads);
            let par = m.measure_ladder_pool(&sim, &p, 5, &pool);
            for (a, b) in seq.histogram.bins.iter().zip(&par.histogram.bins) {
                assert_eq!(a.count, b.count, "{threads} threads [{}, {})", a.lo, a.hi);
            }
        }
    }

    #[test]
    fn verify_peaks_against_ground_truth() {
        let sim = quiet();
        let m = Memhist::with_defaults();
        let r = m.measure(
            &sim,
            &LatencyChecker::new(0, 0, 8 << 20, 3000).build(sim.config()),
            2,
        );
        let v = m.verify_peaks(&r, HistogramMode::Occurrences, &[265.0]);
        assert_eq!(v.matched, vec![265.0], "peaks {:?}", v.peak_bins);
        let miss = m.verify_peaks(&r, HistogramMode::Occurrences, &[5000.0]);
        assert_eq!(miss.unmatched, vec![5000.0]);
    }

    #[test]
    fn annotated_histogram_labels_the_levels() {
        let sim = quiet();
        let m = Memhist::with_defaults();
        // Mixed workload: hot line (L1), pointer chase to local DRAM.
        let mut b = np_simulator::ProgramBuilder::new(&sim.config().topology, 4096);
        let hot = b.alloc(4096, np_simulator::AllocPolicy::Bind(0));
        let cold = b.alloc(8 << 20, np_simulator::AllocPolicy::Bind(0));
        let t = b.add_thread(0);
        for i in 0..1500u64 {
            b.load(t, hot);
            b.load_dependent(t, cold + (i * 769 % 2048) * 4096);
        }
        let a = m.measure_annotated(&sim, &b.build(), 1);
        // The low-latency bins are L1-dominated, the ~265-cycle bins are
        // local-memory-dominated.
        let l1_bin = a
            .histogram
            .bins
            .iter()
            .position(|bin| bin.lo <= 4 && 4 < bin.hi)
            .unwrap();
        assert_eq!(a.dominant_level(l1_bin), Some("L1"));
        let dram_bin = a
            .histogram
            .bins
            .iter()
            .position(|bin| bin.lo <= 265 && 265 < bin.hi)
            .unwrap();
        assert_eq!(a.dominant_level(dram_bin), Some("local memory"));
        // Rendering carries the arrows.
        let text = a.render(HistogramMode::Occurrences, 32);
        assert!(text.contains("<- L1"));
        assert!(text.contains("<- local memory"));
    }

    #[test]
    fn annotated_histogram_flags_remote_peak() {
        let sim = quiet();
        let m = Memhist::with_defaults();
        let p = LatencyChecker::remote_injector(8 << 20, 1200).build(sim.config());
        let a = m.measure_annotated(&sim, &p, 2);
        let remote_bin = a
            .histogram
            .bins
            .iter()
            .position(|bin| bin.lo <= 375 && 375 < bin.hi)
            .unwrap();
        assert_eq!(a.dominant_level(remote_bin), Some("remote memory"));
    }

    #[test]
    fn uncertain_bins_flagged() {
        let m = Memhist::with_defaults();
        let sim = quiet();
        let r = m.measure_exact(
            &sim,
            &LatencyChecker::new(0, 0, 1 << 20, 100).build(sim.config()),
            1,
        );
        assert!(r.histogram.bins[0].uncertain); // the [1, 4) bin
        assert!(!r.histogram.bins[3].uncertain);
    }

    /// A jittery machine for the negative-interval tests: timer noise and
    /// DRAM jitter make threshold exceedance estimates non-monotonic, so
    /// the §IV-B subtraction goes negative — "an error that cannot be
    /// avoided".
    fn jittery() -> MachineSim {
        let mut cfg = MachineConfig::two_socket_small();
        cfg.noise.timer_interval = 3_000;
        cfg.noise.dram_jitter = 0.25;
        cfg.timeslice_cycles = 5_000;
        MachineSim::new(cfg)
    }

    #[test]
    fn negative_subtraction_is_costless_and_marked() {
        // Hand-built exceedance counts where jitter made the 2-cycle
        // threshold count *lower* than the 4-cycle one: the [2, 4) bin
        // subtracts to -5.
        let thresholds = [1, 2, 4, 8];
        let counts = [100, 90, 95, 10];
        let h = LatencyHistogram::from_threshold_counts(&thresholds, &counts).unwrap();
        assert_eq!(h.bins[1].count, -5);
        // Negative bins carry no cost (occurrences × latency is
        // meaningless for a measurement artifact)...
        assert_eq!(h.bins[1].cost_cycles, 0);
        assert_eq!(h.negative_bins(), 1);
        // ...and are clamped out of the total rather than subtracting
        // real mass: 10 + 0 + 85 + 10.
        assert_eq!(h.total_count(), 105);
        // Sub-3-cycle bins are uncertain per the paper, independent of
        // sign; bins at or above 3 cycles are not.
        assert!(h.bins[0].uncertain && h.bins[1].uncertain);
        assert!(!h.bins[2].uncertain && !h.bins[3].uncertain);
        // Rendering: '!' marks the negative bin, whose bar clamps to zero
        // length; uncertain bins use the grey glyph.
        let r = MemhistResult::complete(h, vec![], 0);
        let text = r.render(HistogramMode::Occurrences);
        let neg_line = text.lines().nth(1).unwrap();
        assert!(
            neg_line.contains('!') && neg_line.contains("-5"),
            "{neg_line}"
        );
        assert!(
            !neg_line.contains('█') && !neg_line.contains('░'),
            "{neg_line}"
        );
        assert!(text.lines().next().unwrap().contains('░'), "{text}");
    }

    #[test]
    fn jittered_cycling_goes_negative_but_stays_renderable() {
        let sim = jittery();
        let m = Memhist::with_defaults();
        let p = LatencyChecker::new(0, 0, 8 << 20, 3000).build(sim.config());
        let r = m.measure(&sim, &p, 1);
        assert!(r.negative_bins() > 0, "jitter should produce negatives");
        for b in &r.histogram.bins {
            if b.count <= 0 {
                assert_eq!(b.cost_cycles, 0, "bin [{}, {})", b.lo, b.hi);
            }
            assert_eq!(b.uncertain, b.lo < 3);
        }
        // The rendering clamps rather than panics, and flags each
        // negative bin.
        let text = r.render(HistogramMode::Occurrences);
        assert_eq!(text.matches('!').count(), r.negative_bins(), "{text}");
    }

    #[test]
    fn negative_intervals_survive_a_delayed_probe_fetch() {
        use np_resilience::{Fault, RetryPolicy, ScriptedFaults, StreamDeadlines};
        use std::sync::Arc;
        use std::time::Duration;

        let config = MemhistConfig::default();
        let m = Memhist::new(config.clone());
        let p = LatencyChecker::new(0, 0, 8 << 20, 3000).build(jittery().config());
        let local = m.measure(&jittery(), &p, 1);
        assert!(local.negative_bins() > 0);

        // The same measurement through the probe, with the response
        // delayed (within the read deadline) by a scripted fault.
        let faults = Arc::new(
            ScriptedFaults::new().inject("probe.response", Fault::Delay(Duration::from_millis(50))),
        );
        let listener = probe::ProbeServer::bind().unwrap();
        let addr = listener.local_addr().unwrap();
        let server = probe::ProbeServer::new(jittery(), p).with_faults(faults);
        let handle = std::thread::spawn(move || server.serve(&listener, 1));
        let policy = probe::FetchPolicy {
            retry: RetryPolicy::immediate(3),
            io: StreamDeadlines::symmetric(Duration::from_secs(2)),
            ..probe::FetchPolicy::default()
        };
        let remote = probe::RemoteMemhist::fetch_resilient(addr, &config, 1, &policy, None)
            .expect("delayed fetch succeeds");
        handle.join().unwrap().unwrap();

        // Determinism: the delayed transport must not change the data —
        // negative intervals, costs and uncertainty flags included.
        assert!(!remote.degraded);
        assert_eq!(remote.negative_bins(), local.negative_bins());
        for (rb, lb) in remote.histogram.bins.iter().zip(&local.histogram.bins) {
            assert_eq!(rb.count, lb.count, "bin [{}, {})", rb.lo, rb.hi);
            assert_eq!(rb.cost_cycles, lb.cost_cycles);
            assert_eq!(rb.uncertain, lb.uncertain);
        }
    }

    #[test]
    fn render_produces_labelled_bars() {
        let sim = quiet();
        let m = Memhist::with_defaults();
        let r = m.measure(
            &sim,
            &LatencyChecker::new(0, 0, 4 << 20, 1500).build(sim.config()),
            1,
        );
        let text = r.render(HistogramMode::Occurrences);
        assert!(text.lines().count() == m.config.thresholds.len());
        assert!(text.contains("inf"));
    }
}
