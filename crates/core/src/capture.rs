//! Deterministic time-series capture of a measurement campaign.
//!
//! The live sampling path (`np top`) feeds the **global** sampler from
//! whatever thread happens to run a timeslice — good enough for a
//! redraw loop, useless for reproducible artifacts. This module is the
//! deterministic twin: every campaign repetition gets its **own**
//! [`Sampler`] fed by a [`NodeSeriesObserver`] hooked into the simulator's
//! timeslice callback (timestamps are simulated cycles, never wall
//! time), and the per-repetition samplers merge in submission order
//! after the pool joins. The merged capture is a pure function of
//! `(machine, program, events, seed, repetitions, capacity)` — byte-
//! identical across runs and across pool thread counts, which is
//! exactly what the integration tests assert.
//!
//! Two serialized documents come out of a sampled campaign:
//!
//! * [`Capture`] — phase-attributed per-node series, delta-encoded
//!   parallel vectors (the in-tree serde shim has no tuples). This is
//!   what `np run --sample` writes and `np report` reads.
//! * [`Timeline`] — the pool's per-chunk worker profile for the same
//!   campaign. Wall-clock timestamps, so it is deliberately **not**
//!   part of the deterministic capture; it answers the bench-parallel
//!   question ("where does the 2-thread wall time go?") instead.

use np_parallel::ChunkProfile;
use np_simulator::{Counters, SimObserver, Topology, LIVE_NODE_EVENTS};
use np_telemetry::timeseries::Sampler;
use serde::{Deserialize, Serialize};

/// Schema tag written into every capture document.
pub const CAPTURE_SCHEMA: &str = "np-capture/1";

/// Schema tag written into every timeline document.
pub const TIMELINE_SCHEMA: &str = "np-timeline/1";

/// A [`SimObserver`] that turns the engine's per-timeslice counter
/// snapshots into per-node delta series: one series per
/// `(node, NUMA indicator event)` pair from [`LIVE_NODE_EVENTS`],
/// timestamped in simulated cycles and attributed to the phase active
/// on the running thread.
pub struct NodeSeriesObserver {
    topology: Topology,
    sampler: Sampler,
    /// Previous cumulative total per `(node, event)` slot, row-major.
    last: Vec<u64>,
}

impl NodeSeriesObserver {
    /// An observer for `topology` recording into a fresh sampler with
    /// `capacity` bins per series.
    pub fn new(topology: Topology, capacity: usize) -> Self {
        let slots = topology.nodes * LIVE_NODE_EVENTS.len();
        NodeSeriesObserver {
            topology,
            sampler: Sampler::new(capacity),
            last: vec![0; slots],
        }
    }

    /// Consumes the observer, yielding the recorded series.
    pub fn into_sampler(self) -> Sampler {
        self.sampler
    }
}

impl SimObserver for NodeSeriesObserver {
    fn on_timeslice(&mut self, now: u64, counters: &Counters, _footprint_bytes: u64) {
        for node in 0..self.topology.nodes {
            for (ei, &(short, event)) in LIVE_NODE_EVENTS.iter().enumerate() {
                let total: u64 = (0..self.topology.cores_per_node)
                    .map(|i| counters.get(self.topology.first_core_of_node(node) + i, event))
                    .sum();
                let slot = node * LIVE_NODE_EVENTS.len() + ei;
                let delta = total.saturating_sub(self.last[slot]);
                self.last[slot] = total;
                self.sampler
                    .record(&format!("node{node}.{short}"), now, delta);
            }
        }
    }
}

/// One series of a [`Capture`]: parallel vectors, time delta-encoded
/// (`t[i] = t0 + dt[0..=i]`), phases as indices into `Capture::phases`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeriesDoc {
    /// Series name (`rep<R>.node<N>.<event>` for campaign captures).
    pub name: String,
    /// Raw points folded per bin (doubles on each downsample pass).
    pub stride: u64,
    /// Timestamp of the first bin.
    pub t0: u64,
    /// Per-bin time deltas; `dt[0]` is always 0.
    pub dt: Vec<u64>,
    /// Per-bin phase-table index.
    pub phase: Vec<u64>,
    /// Per-bin folded point count.
    pub count: Vec<u64>,
    /// Per-bin value sum.
    pub sum: Vec<u64>,
    /// Per-bin minimum value.
    pub min: Vec<u64>,
    /// Per-bin maximum value.
    pub max: Vec<u64>,
}

impl SeriesDoc {
    /// Reconstructs absolute bin timestamps from the delta encoding.
    pub fn timestamps(&self) -> Vec<u64> {
        let mut t = self.t0;
        self.dt
            .iter()
            .map(|&dt| {
                t += dt;
                t
            })
            .collect()
    }
}

/// The deterministic time-series export of one sampled campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capture {
    /// [`CAPTURE_SCHEMA`].
    pub schema: String,
    /// Machine topology description the campaign ran on.
    pub machine: String,
    /// Workload / program label.
    pub workload: String,
    /// Base seed of the campaign.
    pub seed: u64,
    /// Repetitions merged into the capture.
    pub repetitions: u64,
    /// Interned phase labels; series bins index into this table.
    pub phases: Vec<String>,
    /// All series, sorted by name.
    pub series: Vec<SeriesDoc>,
}

impl Capture {
    /// Builds the document from a merged sampler. Series come out in the
    /// sampler's sorted-name order, so equal samplers serialize to equal
    /// bytes.
    pub fn from_sampler(
        machine: &str,
        workload: &str,
        seed: u64,
        repetitions: usize,
        sampler: &Sampler,
    ) -> Capture {
        let series = sampler
            .iter()
            .map(|(name, s)| {
                let mut prev = s.bins.first().map_or(0, |b| b.t);
                SeriesDoc {
                    name: name.to_string(),
                    stride: s.stride,
                    t0: prev,
                    dt: s
                        .bins
                        .iter()
                        .map(|b| {
                            let dt = b.t.saturating_sub(prev);
                            prev = b.t;
                            dt
                        })
                        .collect(),
                    phase: s.bins.iter().map(|b| b.phase as u64).collect(),
                    count: s.bins.iter().map(|b| b.count).collect(),
                    sum: s.bins.iter().map(|b| b.sum).collect(),
                    min: s.bins.iter().map(|b| b.min).collect(),
                    max: s.bins.iter().map(|b| b.max).collect(),
                }
            })
            .collect();
        Capture {
            schema: CAPTURE_SCHEMA.to_string(),
            machine: machine.to_string(),
            workload: workload.to_string(),
            seed,
            repetitions: repetitions as u64,
            phases: sampler.phases().to_vec(),
            series,
        }
    }

    /// The distinct node ids appearing in `rep*.node<N>.*` series names.
    pub fn node_ids(&self) -> Vec<usize> {
        let mut nodes: Vec<usize> = self
            .series
            .iter()
            .filter_map(|s| {
                let tail = s.name.split("node").nth(1)?;
                tail.split('.').next()?.parse().ok()
            })
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

/// The pool worker timeline of one campaign: per-chunk attribution as
/// parallel vectors, timestamps re-based to the earliest chunk start so
/// the document is self-contained.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    /// [`TIMELINE_SCHEMA`].
    pub schema: String,
    /// Pool worker count the campaign ran with.
    pub workers: u64,
    /// Chunk index (submission order).
    pub chunk: Vec<u64>,
    /// Worker that executed each chunk.
    pub worker: Vec<u64>,
    /// Queue-wait before each chunk, ns.
    pub wait_ns: Vec<u64>,
    /// Chunk start, ns since the earliest chunk start.
    pub start_ns: Vec<u64>,
    /// Chunk end, ns since the earliest chunk start.
    pub end_ns: Vec<u64>,
}

impl Timeline {
    /// Builds the document from a pool run's profile.
    pub fn from_profile(workers: usize, profile: &[ChunkProfile]) -> Timeline {
        let base = profile.iter().map(|p| p.start_ns).min().unwrap_or(0);
        Timeline {
            schema: TIMELINE_SCHEMA.to_string(),
            workers: workers as u64,
            chunk: profile.iter().map(|p| p.chunk as u64).collect(),
            worker: profile.iter().map(|p| p.worker as u64).collect(),
            wait_ns: profile.iter().map(|p| p.wait_ns).collect(),
            start_ns: profile.iter().map(|p| p.start_ns - base).collect(),
            end_ns: profile.iter().map(|p| p.end_ns - base).collect(),
        }
    }

    /// Total busy (executing) time per worker, ns.
    pub fn busy_per_worker(&self) -> Vec<u64> {
        let mut busy = vec![0u64; self.workers.max(1) as usize];
        for i in 0..self.chunk.len() {
            let w = self.worker[i] as usize;
            if let Some(slot) = busy.get_mut(w) {
                *slot += self.end_ns[i].saturating_sub(self.start_ns[i]);
            }
        }
        busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_simulator::{HwEvent, MachineConfig, MachineSim};
    use np_workloads::cache_miss::CacheMissKernel;
    use np_workloads::Workload;

    fn machine() -> MachineConfig {
        let mut cfg = MachineConfig::two_socket_small();
        cfg.timeslice_cycles = 2_000;
        cfg
    }

    #[test]
    fn observer_records_per_node_series_in_sim_time() {
        let cfg = machine();
        let sim = MachineSim::new(cfg.clone());
        let program = CacheMissKernel::row_major(32).build(&cfg);
        let mut obs = NodeSeriesObserver::new(cfg.topology.clone(), 128);
        let result = sim
            .run_observed(&program, 7, &mut obs)
            .expect("valid program");
        let sampler = obs.into_sampler();
        assert!(!sampler.is_empty(), "timeslices should have fired");
        // Every node × event pair has a series; deltas resum to the
        // machine totals up to the last timeslice boundary (the tail
        // after the final slice is uncaptured by construction).
        let local0 = sampler.get("node0.local_dram").unwrap();
        assert!(local0.total_sum() <= result.total(HwEvent::LocalDramAccess));
        for node in 0..cfg.topology.nodes {
            for (short, _) in LIVE_NODE_EVENTS {
                assert!(
                    sampler.get(&format!("node{node}.{short}")).is_some(),
                    "missing node{node}.{short}"
                );
            }
        }
        // Timestamps are simulated cycles: multiples of the slice width.
        assert!(local0.bins.iter().all(|b| b.t % 2_000 == 0));
    }

    #[test]
    fn capture_roundtrips_and_orders_series() {
        let mut sampler = Sampler::new(16);
        sampler.record_with_phase("rep0.node1.qpi", 10, 5, "measure");
        sampler.record_with_phase("rep0.node0.qpi", 20, 6, "measure");
        let cap = Capture::from_sampler("two-socket", "row-major", 42, 1, &sampler);
        assert_eq!(cap.schema, CAPTURE_SCHEMA);
        assert_eq!(cap.series[0].name, "rep0.node0.qpi");
        assert_eq!(cap.node_ids(), vec![0, 1]);
        let json = serde_json::to_string(&cap).unwrap();
        let back: Capture = serde_json::from_str(&json).unwrap();
        assert_eq!(cap, back);
    }

    #[test]
    fn timeline_rebases_and_sums_busy_time() {
        let profile = vec![
            ChunkProfile {
                chunk: 0,
                worker: 0,
                wait_ns: 5,
                start_ns: 1_000,
                end_ns: 1_400,
            },
            ChunkProfile {
                chunk: 1,
                worker: 1,
                wait_ns: 9,
                start_ns: 1_100,
                end_ns: 1_250,
            },
        ];
        let tl = Timeline::from_profile(2, &profile);
        assert_eq!(tl.start_ns, vec![0, 100]);
        assert_eq!(tl.end_ns, vec![400, 250]);
        assert_eq!(tl.busy_per_worker(), vec![400, 150]);
        let json = serde_json::to_string(&tl).unwrap();
        let back: Timeline = serde_json::from_str(&json).unwrap();
        assert_eq!(tl, back);
    }
}
