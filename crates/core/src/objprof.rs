//! Object-relative memory profiling.
//!
//! §II-D cites Wu et al.'s LEAP profiler, which "examine[s] the influence
//! of memory locality … by exposing memory access regularities using
//! object-relative memory profiling" — statistics are aggregated per
//! *allocated object*, not per code location. This module is that view
//! for the simulator: every load sample is attributed to the allocation
//! (region) containing its address, yielding per-object access counts,
//! latency distributions, serving-level mixes and remote fractions — the
//! data-centric complement to [`crate::annotate`]'s code-centric view.

use crate::report::{fmt_count, render_table};
use np_simulator::{LoadSample, MachineSim, Program, ServedBy, SimObserver};

/// Per-object (per-allocation) access statistics.
#[derive(Debug, Clone)]
pub struct ObjectStats {
    /// Object label (index of the allocation, in allocation order).
    pub object: usize,
    /// Base address of the allocation.
    pub base: u64,
    /// Padded size in bytes.
    pub bytes: u64,
    /// Loads observed.
    pub loads: u64,
    /// Sum of use latencies (cycles).
    pub latency_sum: u64,
    /// Loads served by each level: [L1, L2, L3, local DRAM, remote DRAM,
    /// cache-to-cache].
    pub by_level: [u64; 6],
}

impl ObjectStats {
    /// Mean use latency per load.
    pub fn mean_latency(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.loads as f64
        }
    }

    /// Fraction of loads served by remote DRAM or remote caches.
    pub fn remote_fraction(&self) -> f64 {
        if self.loads == 0 {
            return 0.0;
        }
        self.by_level[4] as f64 / self.loads as f64
    }

    /// Fraction of loads that left the private caches.
    pub fn uncore_fraction(&self) -> f64 {
        if self.loads == 0 {
            return 0.0;
        }
        (self.by_level[2] + self.by_level[3] + self.by_level[4] + self.by_level[5]) as f64
            / self.loads as f64
    }
}

/// The profiling observer: attributes samples to allocations by address.
pub struct ObjectProfiler {
    /// Sorted `(base, end, object index)` ranges.
    ranges: Vec<(u64, u64, usize)>,
    /// Stats, indexed like `ranges`' object indices.
    stats: Vec<ObjectStats>,
    /// Samples that hit no allocation (should be zero for well-formed
    /// programs).
    pub unattributed: u64,
}

impl ObjectProfiler {
    /// Builds a profiler for the allocations of `program`.
    pub fn new(program: &Program) -> Self {
        let mut ranges = Vec::new();
        let mut stats = Vec::new();
        for (i, (base, bytes, _policy)) in program.space.regions().enumerate() {
            ranges.push((base, base + bytes, i));
            stats.push(ObjectStats {
                object: i,
                base,
                bytes,
                loads: 0,
                latency_sum: 0,
                by_level: [0; 6],
            });
        }
        ranges.sort_by_key(|&(b, _, _)| b);
        ObjectProfiler {
            ranges,
            stats,
            unattributed: 0,
        }
    }

    fn object_of(&self, addr: u64) -> Option<usize> {
        // Binary search over sorted, disjoint ranges.
        let idx = self.ranges.partition_point(|&(base, _, _)| base <= addr);
        if idx == 0 {
            return None;
        }
        let (base, end, obj) = self.ranges[idx - 1];
        if addr >= base && addr < end {
            Some(obj)
        } else {
            None
        }
    }

    /// The collected statistics, in allocation order.
    pub fn stats(&self) -> &[ObjectStats] {
        &self.stats
    }

    /// Objects ranked by total latency cost — "which data structure hurts".
    pub fn ranked_by_cost(&self) -> Vec<&ObjectStats> {
        let mut v: Vec<&ObjectStats> = self.stats.iter().filter(|s| s.loads > 0).collect();
        v.sort_by_key(|s| std::cmp::Reverse(s.latency_sum));
        v
    }

    /// Renders the LEAP-style table.
    pub fn render(&self, names: &[&str]) -> String {
        let rows: Vec<Vec<String>> = self
            .stats
            .iter()
            .map(|s| {
                vec![
                    names
                        .get(s.object)
                        .map_or_else(|| format!("object {}", s.object), |n| n.to_string()),
                    format!("{} KiB", s.bytes >> 10),
                    fmt_count(s.loads as f64),
                    format!("{:.1}", s.mean_latency()),
                    format!("{:.1} %", 100.0 * s.uncore_fraction()),
                    format!("{:.1} %", 100.0 * s.remote_fraction()),
                ]
            })
            .collect();
        render_table(
            &[
                "object",
                "size",
                "loads",
                "mean latency",
                "beyond L2",
                "remote",
            ],
            &rows,
        )
    }
}

impl SimObserver for ObjectProfiler {
    fn on_load_sample(&mut self, s: &LoadSample) {
        match self.object_of(s.addr) {
            Some(obj) => {
                let st = &mut self.stats[obj];
                st.loads += 1;
                st.latency_sum += s.latency;
                let lvl = match s.served {
                    ServedBy::L1 => 0,
                    ServedBy::L2 => 1,
                    ServedBy::L3 => 2,
                    ServedBy::LocalDram => 3,
                    ServedBy::RemoteDram { .. } => 4,
                    ServedBy::Hitm { .. } => 5,
                };
                st.by_level[lvl] += 1;
            }
            None => self.unattributed += 1,
        }
    }
}

/// Convenience: profile one program end to end.
pub fn profile(sim: &MachineSim, program: &Program, seed: u64) -> ObjectProfiler {
    let mut p = ObjectProfiler::new(program);
    // An invalid program contributes no slices; the observer just
    // stays empty, which the caller sees as zero coverage.
    let _ = sim.run_observed(program, seed, &mut p);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_simulator::{AllocPolicy, MachineConfig, ProgramBuilder};

    fn sim() -> MachineSim {
        let mut cfg = MachineConfig::two_socket_small();
        cfg.noise.timer_interval = 0;
        cfg.noise.dram_jitter = 0.0;
        MachineSim::new(cfg)
    }

    #[test]
    fn attributes_loads_to_the_right_object() {
        let sim = sim();
        let mut b = ProgramBuilder::new(&sim.config().topology, 4096);
        let hot = b.alloc(4096, AllocPolicy::Bind(0)); // object 0
        let cold = b.alloc(8 << 20, AllocPolicy::Bind(1)); // object 1: remote!
        let t = b.add_thread(0);
        for i in 0..500u64 {
            b.load(t, hot + (i * 8) % 4096);
            if i % 5 == 0 {
                b.load_dependent(t, cold + (i * 40_961) % (8 << 20));
            }
        }
        let program = b.build();
        let prof = profile(&sim, &program, 1);
        assert_eq!(prof.unattributed, 0);

        let s0 = &prof.stats()[0];
        let s1 = &prof.stats()[1];
        assert_eq!(s0.loads, 500);
        assert_eq!(s1.loads, 100);
        // The small hot object is cache-resident and local.
        assert!(
            s0.mean_latency() < 20.0,
            "hot latency {}",
            s0.mean_latency()
        );
        assert!(s0.remote_fraction() < 0.01);
        // The big bound-remote object is expensive and remote.
        assert!(
            s1.mean_latency() > 250.0,
            "cold latency {}",
            s1.mean_latency()
        );
        assert!(
            s1.remote_fraction() > 0.9,
            "remote {}",
            s1.remote_fraction()
        );
    }

    #[test]
    fn ranking_orders_by_total_cost() {
        let sim = sim();
        let mut b = ProgramBuilder::new(&sim.config().topology, 4096);
        let a = b.alloc(1 << 20, AllocPolicy::Bind(0));
        let c = b.alloc(8 << 20, AllocPolicy::Bind(1));
        let t = b.add_thread(0);
        for i in 0..50u64 {
            b.load(t, a + i * 64);
        }
        for i in 0..200u64 {
            b.load_dependent(t, c + i * 40_960);
        }
        let program = b.build();
        let prof = profile(&sim, &program, 1);
        let ranked = prof.ranked_by_cost();
        assert_eq!(
            ranked[0].object, 1,
            "the chased remote object dominates cost"
        );
    }

    #[test]
    fn render_uses_names() {
        let sim = sim();
        let mut b = ProgramBuilder::new(&sim.config().topology, 4096);
        let a = b.alloc(4096, AllocPolicy::Bind(0));
        let t = b.add_thread(0);
        b.load(t, a);
        let program = b.build();
        let prof = profile(&sim, &program, 1);
        let text = prof.render(&["input image"]);
        assert!(text.contains("input image"));
        assert!(text.contains("mean latency"));
    }

    #[test]
    fn out_of_range_addresses_counted_unattributed() {
        let mut b = ProgramBuilder::new(&sim().config().topology, 4096);
        b.alloc(4096, AllocPolicy::Bind(0));
        let t = b.add_thread(0);
        b.exec(t, 1);
        let program = b.build();
        let mut prof = ObjectProfiler::new(&program);
        // Feed a synthetic sample beyond all allocations.
        prof.on_load_sample(&LoadSample {
            core: 0,
            addr: 0xFFFF_0000,
            latency: 4,
            served: ServedBy::L1,
            time: 0,
        });
        assert_eq!(prof.unattributed, 1);
        // And one below the first allocation (address 0 is unmapped).
        prof.on_load_sample(&LoadSample {
            core: 0,
            addr: 0,
            latency: 4,
            served: ServedBy::L1,
            time: 0,
        });
        assert_eq!(prof.unattributed, 2);
    }
}
