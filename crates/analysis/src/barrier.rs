//! Barrier-matching / deadlock analysis.
//!
//! The engine releases a barrier when every *unfinished* thread waits on
//! the same id; a thread whose remaining ops contain no barrier eventually
//! finishes and drops out of the condition. Because non-barrier ops always
//! terminate, the engine's barrier behaviour is fully determined by each
//! thread's *sequence of barrier ids* — so an abstract lockstep simulation
//! over those sequences is both sound and complete: it reports a deadlock
//! exactly when `MachineSim::run` would panic with
//! "program deadlocked on a barrier".

use crate::cfg::ProgramCfg;

/// A statically detected barrier deadlock: the stuck frontier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// `(thread index, barrier id it waits on)` for every thread blocked
    /// at the point of the mismatch.
    pub stuck: Vec<(usize, u32)>,
    /// Number of barrier releases that succeeded before the mismatch.
    pub releases_before: usize,
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "barrier deadlock after {} release(s): ",
            self.releases_before
        )?;
        for (i, (thread, id)) in self.stuck.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "thread {thread} waits on barrier {id}")?;
        }
        Ok(())
    }
}

/// Checks barrier consistency. On success returns the global release
/// sequence (the barrier ids, in the order every participating thread
/// passes them); on mismatch returns the stuck frontier.
pub fn check_barriers(cfg: &ProgramCfg) -> Result<Vec<u32>, DeadlockReport> {
    let mut pos: Vec<usize> = vec![0; cfg.threads.len()];
    let mut releases = Vec::new();
    loop {
        // Threads with barriers still ahead of them; others have finished
        // (or will finish) and no longer gate releases.
        let active: Vec<usize> = (0..cfg.threads.len())
            .filter(|&t| pos[t] < cfg.threads[t].barrier_seq.len())
            .collect();
        if active.is_empty() {
            return Ok(releases);
        }
        let first_id = cfg.threads[active[0]].barrier_seq[pos[active[0]]].1;
        if active
            .iter()
            .all(|&t| cfg.threads[t].barrier_seq[pos[t]].1 == first_id)
        {
            releases.push(first_id);
            for &t in &active {
                pos[t] += 1;
            }
        } else {
            return Err(DeadlockReport {
                stuck: active
                    .iter()
                    .map(|&t| (t, cfg.threads[t].barrier_seq[pos[t]].1))
                    .collect(),
                releases_before: releases.len(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_simulator::program::ProgramBuilder;
    use np_simulator::topology::Topology;

    fn build(seqs: &[&[u32]]) -> ProgramCfg {
        let t = Topology::fully_interconnected(2, 4, 1 << 30);
        let mut b = ProgramBuilder::new(&t, 4096);
        for (i, seq) in seqs.iter().enumerate() {
            let th = b.add_thread(i);
            for &id in *seq {
                b.barrier(th, id);
            }
        }
        ProgramCfg::build(&b.build())
    }

    #[test]
    fn matched_sequences_release_in_order() {
        let cfg = build(&[&[1, 2, 3], &[1, 2, 3]]);
        assert_eq!(check_barriers(&cfg).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn prefix_threads_drop_out() {
        // Thread 1 stops synchronising after barrier 1; thread 0 then
        // passes 2 alone — exactly what the engine does once thread 1
        // finishes.
        let cfg = build(&[&[1, 2], &[1]]);
        assert_eq!(check_barriers(&cfg).unwrap(), vec![1, 2]);
    }

    #[test]
    fn permuted_ids_deadlock() {
        let cfg = build(&[&[1, 2], &[2, 1]]);
        let dl = check_barriers(&cfg).unwrap_err();
        assert_eq!(dl.releases_before, 0);
        assert_eq!(dl.stuck, vec![(0, 1), (1, 2)]);
        assert!(dl.to_string().contains("thread 0 waits on barrier 1"));
    }

    #[test]
    fn mismatch_after_common_prefix() {
        let cfg = build(&[&[5, 6, 7], &[5, 6, 9]]);
        let dl = check_barriers(&cfg).unwrap_err();
        assert_eq!(dl.releases_before, 2);
        assert_eq!(dl.stuck, vec![(0, 7), (1, 9)]);
    }

    #[test]
    fn no_barriers_is_trivially_consistent() {
        let cfg = build(&[&[], &[]]);
        assert_eq!(check_barriers(&cfg).unwrap(), Vec::<u32>::new());
    }
}
