//! The shared token-blanking lexer behind `np lint` and `np audit`.
//!
//! Both scanners work on *blanked* source: comments, string literals and
//! char literals become spaces (newlines survive, so line numbers stay
//! aligned), and `#[cfg(test)]` modules are marked exempt. Extracting the
//! state machine here means the two passes can never disagree about what
//! counts as code — a prose `.unwrap()` that lint ignores is invisible to
//! every audit rule too, byte for byte.

/// One source file, lexed once and shared by every rule.
#[derive(Debug, Clone)]
pub struct Lexed {
    /// Original lines (comments intact — allow markers live here).
    pub raw_lines: Vec<String>,
    /// Blanked lines (code only; same line count and column widths).
    pub code_lines: Vec<String>,
    /// Per line: true when the line sits inside a `#[cfg(test)]` module.
    pub in_test: Vec<bool>,
}

impl Lexed {
    /// Lexes `source`: blanks non-code and marks test modules.
    pub fn new(source: &str) -> Lexed {
        let blanked = blank_non_code(source);
        let in_test = test_module_lines(&blanked);
        Lexed {
            raw_lines: source.lines().map(str::to_string).collect(),
            code_lines: blanked.lines().map(str::to_string).collect(),
            in_test,
        }
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.code_lines.len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.code_lines.is_empty()
    }

    /// The blanked line at `idx`, or "" past the end.
    pub fn code(&self, idx: usize) -> &str {
        self.code_lines.get(idx).map_or("", |s| s.as_str())
    }

    /// The raw line at `idx`, or "" past the end.
    pub fn raw(&self, idx: usize) -> &str {
        self.raw_lines.get(idx).map_or("", |s| s.as_str())
    }

    /// Whether line `idx` is test code (exempt from every rule).
    pub fn is_test(&self, idx: usize) -> bool {
        self.in_test.get(idx).copied().unwrap_or(false)
    }
}

/// Blanks comments, string literals, and char literals so token scans only
/// see code. Handles nested block comments, escapes, and raw strings
/// (`r"…"`, `r#"…"#`, …). Every non-code byte becomes a space; newlines
/// survive so line numbers stay aligned.
pub fn blank_non_code(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut i = 0;
    let n = b.len();
    while i < n {
        let c = b[i];
        if c == b'\n' {
            out[i] = b'\n';
            i += 1;
        } else if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            // Line comment: blank to end of line.
            while i < n && b[i] != b'\n' {
                i += 1;
            }
        } else if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            // Block comment, possibly nested.
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'\n' {
                    out[i] = b'\n';
                }
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    if i + 1 < n && b[i + 1] == b'\n' {
                        out[i + 1] = b'\n';
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if c == b'r' && i + 1 < n && (b[i + 1] == b'"' || b[i + 1] == b'#') {
            // Possible raw string r"…" / r#"…"#.
            let mut j = i + 1;
            let mut hashes = 0;
            while j < n && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == b'"' {
                out[i] = b'r'; // keep the sigil so identifiers stay intact
                i = j + 1;
                'raw: while i < n {
                    if b[i] == b'\n' {
                        out[i] = b'\n';
                    }
                    if b[i] == b'"' {
                        let mut k = i + 1;
                        let mut seen = 0;
                        while k < n && seen < hashes && b[k] == b'#' {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            i = k;
                            break 'raw;
                        }
                    }
                    i += 1;
                }
            } else {
                out[i] = c;
                i += 1;
            }
        } else if c == b'"' {
            // Regular string literal with escapes.
            i += 1;
            while i < n {
                if b[i] == b'\n' {
                    out[i] = b'\n';
                    i += 1;
                } else if b[i] == b'\\' {
                    i += 2;
                } else if b[i] == b'"' {
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
        } else if c == b'\'' {
            // Char literal vs lifetime: 'x' or '\n' is a literal; 'a in
            // `&'a str` is a lifetime and keeps only the quote blanked.
            if i + 1 < n && b[i + 1] == b'\\' {
                i += 2;
                while i < n && b[i] != b'\'' {
                    i += 1;
                }
                i += 1;
            } else if i + 2 < n && b[i + 2] == b'\'' {
                i += 3;
            } else {
                i += 1;
            }
        } else {
            out[i] = c;
            i += 1;
        }
    }
    // Blanking never produces non-UTF8: multi-byte characters only occur
    // inside comments and literals, which become ASCII spaces.
    String::from_utf8(out).unwrap_or_default()
}

/// Marks lines inside `#[cfg(test)] mod … { … }` blocks. Returns one bool
/// per line (true = test code, exempt from rules).
pub fn test_module_lines(blanked: &str) -> Vec<bool> {
    let lines: Vec<&str> = blanked.lines().collect();
    let mut in_test = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].contains("#[cfg(test)]") {
            // Find the module opening within the next few lines.
            let mut j = i;
            while j < lines.len() && !lines[j].contains('{') {
                j += 1;
            }
            if j < lines.len() {
                let mut depth: i64 = 0;
                let mut k = j;
                loop {
                    for ch in lines[k].chars() {
                        match ch {
                            '{' => depth += 1,
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    in_test[k] = true;
                    if depth <= 0 || k + 1 == lines.len() {
                        break;
                    }
                    k += 1;
                }
                for flag in in_test.iter_mut().take(j + 1).skip(i) {
                    *flag = true;
                }
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    in_test
}

/// Whether `raw_line` carries an allow marker for `rule` under `tool`
/// ("lint" or "audit"): `// <tool>:allow(<rule>): why`.
pub fn marker_allows(raw_line: &str, tool: &str, rule: &str) -> bool {
    let needle = format!("{tool}:allow(");
    raw_line
        .find(&needle)
        .map(|p| raw_line[p + needle.len()..].starts_with(rule))
        .unwrap_or(false)
}

/// Per-line brace depth *at line start*, relative to the first line given
/// (starting depth 0). Used by rules that need enclosing-scope context —
/// "is this `wait` inside a `loop`", "where does this fn body end".
pub fn brace_depths(code_lines: &[&str]) -> Vec<i64> {
    let mut depths = Vec::with_capacity(code_lines.len());
    let mut depth: i64 = 0;
    for line in code_lines {
        depths.push(depth);
        for ch in line.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
    }
    depths
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanking_preserves_line_structure() {
        let src = "let a = \"x.unwrap()\"; // .expect(\nlet b = 1;\n";
        let blanked = blank_non_code(src);
        assert_eq!(blanked.lines().count(), src.lines().count());
        assert!(!blanked.contains("unwrap"));
        assert!(!blanked.contains("expect"));
        assert!(blanked.contains("let b = 1;"));
    }

    #[test]
    fn nested_comments_and_raw_strings_blank() {
        let src = "/* a /* b */ c */ code\nr#\"panic!\"# more\n";
        let blanked = blank_non_code(src);
        assert!(blanked.contains("code"));
        assert!(blanked.contains("more"));
        assert!(!blanked.contains("panic"));
    }

    #[test]
    fn lexed_marks_test_modules() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let lx = Lexed::new(src);
        assert!(!lx.is_test(0));
        assert!(lx.is_test(1) && lx.is_test(2) && lx.is_test(3) && lx.is_test(4));
        assert_eq!(lx.len(), 5);
        assert!(!lx.is_empty());
    }

    #[test]
    fn markers_are_tool_and_rule_scoped() {
        let line = "x.unwrap() // audit:allow(no-panic-reachable): startup";
        assert!(marker_allows(line, "audit", "no-panic-reachable"));
        assert!(!marker_allows(line, "lint", "no-panic-reachable"));
        assert!(!marker_allows(line, "audit", "lock-order"));
    }

    #[test]
    fn brace_depths_track_scope() {
        let lines = ["fn f() {", "    if x {", "        y();", "    }", "}"];
        assert_eq!(brace_depths(&lines), vec![0, 1, 2, 2, 1]);
    }
}
