//! Happens-before data-race detection over barrier supersteps.
//!
//! Barriers are the IR's only synchronisation, and the engine releases
//! them in global lockstep: every unfinished thread participates in every
//! release. That makes "number of barriers passed" a globally comparable
//! superstep index — an access in a thread's superstep `k` happens-before
//! everything in superstep `k + 1` of *any* thread, and is unordered
//! against other threads' accesses inside the same superstep. Accesses
//! after a thread's last barrier stay unordered against everything that
//! follows (interval `[k, ∞)`), because nothing synchronises with that
//! thread again.
//!
//! Two accesses race when they come from different threads, target the
//! same byte, at least one is a store, and their superstep intervals
//! overlap. The simulator itself schedules deterministically, so a
//! "race" here is not engine nondeterminism — it is the paper-level
//! diagnosis that the program's outcome depends on relative thread timing
//! on a real machine.

use crate::cfg::ProgramCfg;
use np_simulator::program::{Op, Program};

/// A pair of unordered conflicting access ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceFinding {
    /// First thread (lower index).
    pub thread_a: usize,
    /// Second thread.
    pub thread_b: usize,
    /// Whether thread A's conflicting accesses include a store.
    pub a_writes: bool,
    /// Whether thread B's conflicting accesses include a store.
    pub b_writes: bool,
    /// Overlapping byte range `[lo, hi)`.
    pub addr_lo: u64,
    /// Exclusive end of the overlap.
    pub addr_hi: u64,
    /// Superstep in which the threads are unordered (A's interval start).
    pub superstep: usize,
}

impl std::fmt::Display for RaceFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match (self.a_writes, self.b_writes) {
            (true, true) => "write/write",
            _ => "read/write",
        };
        write!(
            f,
            "{kind} race: threads {} and {} touch [{:#x}, {:#x}) in superstep {} without an ordering barrier",
            self.thread_a, self.thread_b, self.addr_lo, self.addr_hi, self.superstep
        )
    }
}

/// Merged, sorted byte ranges of one thread's loads/stores per superstep.
#[derive(Debug, Default, Clone)]
struct StepAccesses {
    loads: Vec<(u64, u64)>,
    stores: Vec<(u64, u64)>,
}

/// Sorts and merges touching/overlapping `[lo, hi)` ranges in place.
fn normalize(ranges: &mut Vec<(u64, u64)>) {
    ranges.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(ranges.len().min(64));
    for &(lo, hi) in ranges.iter() {
        match out.last_mut() {
            Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
            _ => out.push((lo, hi)),
        }
    }
    *ranges = out;
}

/// First overlap between two normalized range lists, if any.
fn first_overlap(a: &[(u64, u64)], b: &[(u64, u64)]) -> Option<(u64, u64)> {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            return Some((lo, hi));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    None
}

/// Detects cross-thread conflicting accesses not ordered by a barrier.
/// One finding is reported per `(thread pair, superstep, direction)`.
pub fn find_races(program: &Program, cfg: &ProgramCfg) -> Vec<RaceFinding> {
    // Bucket every access by (thread, supersteps passed before it).
    let per_thread: Vec<Vec<StepAccesses>> = program
        .threads
        .iter()
        .enumerate()
        .map(|(ti, t)| {
            let n_barriers = cfg.threads[ti].barrier_seq.len();
            let mut steps = vec![StepAccesses::default(); n_barriers + 1];
            let mut step = 0usize;
            for op in &t.ops {
                match op {
                    Op::Barrier(_) => step += 1,
                    Op::Load { addr, .. } => steps[step].loads.push((*addr, *addr + 1)),
                    Op::Store { addr } => steps[step].stores.push((*addr, *addr + 1)),
                    _ => {}
                }
            }
            for s in &mut steps {
                normalize(&mut s.loads);
                normalize(&mut s.stores);
            }
            steps
        })
        .collect();

    let mut findings = Vec::new();
    for a in 0..per_thread.len() {
        for b in (a + 1)..per_thread.len() {
            let (sa, sb) = (&per_thread[a], &per_thread[b]);
            for (ka, stepa) in sa.iter().enumerate() {
                if stepa.loads.is_empty() && stepa.stores.is_empty() {
                    continue;
                }
                // A's interval is [ka, ka+1), open-ended after the last
                // barrier; same for B. Enumerate B's overlapping steps.
                let a_final = ka + 1 == sa.len();
                for (kb, stepb) in sb.iter().enumerate() {
                    let b_final = kb + 1 == sb.len();
                    let overlaps = ka == kb || (a_final && kb >= ka) || (b_final && ka >= kb);
                    if !overlaps {
                        continue;
                    }
                    // store/store, then store/load in both directions.
                    let checks = [
                        (&stepa.stores, &stepb.stores, true, true),
                        (&stepa.stores, &stepb.loads, true, false),
                        (&stepa.loads, &stepb.stores, false, true),
                    ];
                    for (ra, rb, aw, bw) in checks {
                        if let Some((lo, hi)) = first_overlap(ra, rb) {
                            findings.push(RaceFinding {
                                thread_a: a,
                                thread_b: b,
                                a_writes: aw,
                                b_writes: bw,
                                addr_lo: lo,
                                addr_hi: hi,
                                superstep: ka.max(kb),
                            });
                        }
                    }
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_simulator::program::ProgramBuilder;
    use np_simulator::topology::Topology;
    use np_simulator::AllocPolicy;

    fn topo() -> Topology {
        Topology::fully_interconnected(2, 4, 1 << 30)
    }

    #[test]
    fn unsynchronised_store_store_is_flagged() {
        let t = topo();
        let mut b = ProgramBuilder::new(&t, 4096);
        let buf = b.alloc(4096, AllocPolicy::FirstTouch);
        let t0 = b.add_thread(0);
        let t1 = b.add_thread(1);
        b.store(t0, buf + 8);
        b.store(t1, buf + 8);
        let p = b.build();
        let races = find_races(&p, &ProgramCfg::build(&p));
        assert_eq!(races.len(), 1);
        assert!(races[0].a_writes && races[0].b_writes);
        assert_eq!((races[0].addr_lo, races[0].addr_hi), (buf + 8, buf + 9));
    }

    #[test]
    fn barrier_orders_producer_consumer() {
        let t = topo();
        let mut b = ProgramBuilder::new(&t, 4096);
        let buf = b.alloc(4096, AllocPolicy::FirstTouch);
        let t0 = b.add_thread(0);
        let t1 = b.add_thread(1);
        b.store(t0, buf);
        b.barrier(t0, 1);
        b.barrier(t1, 1);
        b.load(t1, buf);
        let p = b.build();
        assert!(find_races(&p, &ProgramCfg::build(&p)).is_empty());
    }

    #[test]
    fn same_superstep_read_write_races() {
        let t = topo();
        let mut b = ProgramBuilder::new(&t, 4096);
        let buf = b.alloc(4096, AllocPolicy::FirstTouch);
        let t0 = b.add_thread(0);
        let t1 = b.add_thread(1);
        b.barrier(t0, 1);
        b.store(t0, buf);
        b.barrier(t1, 1);
        b.load(t1, buf);
        let p = b.build();
        let races = find_races(&p, &ProgramCfg::build(&p));
        assert_eq!(races.len(), 1);
        assert!(!(races[0].a_writes && races[0].b_writes));
    }

    #[test]
    fn disjoint_partitions_do_not_race() {
        let t = topo();
        let mut b = ProgramBuilder::new(&t, 4096);
        let buf = b.alloc(8192, AllocPolicy::FirstTouch);
        let t0 = b.add_thread(0);
        let t1 = b.add_thread(1);
        for i in 0..64 {
            b.store(t0, buf + i);
            b.store(t1, buf + 4096 + i);
        }
        let p = b.build();
        assert!(find_races(&p, &ProgramCfg::build(&p)).is_empty());
    }

    #[test]
    fn post_final_barrier_accesses_stay_unordered() {
        // Thread 0 keeps writing after its last barrier; thread 1 reads the
        // same byte two supersteps later — still unordered against t0.
        let t = topo();
        let mut b = ProgramBuilder::new(&t, 4096);
        let buf = b.alloc(4096, AllocPolicy::FirstTouch);
        let t0 = b.add_thread(0);
        let t1 = b.add_thread(1);
        b.barrier(t0, 1);
        b.store(t0, buf);
        b.barrier(t1, 1);
        b.barrier(t1, 2);
        b.load(t1, buf);
        let p = b.build();
        let races = find_races(&p, &ProgramCfg::build(&p));
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].superstep, 2);
    }

    #[test]
    fn reads_never_race_with_reads() {
        let t = topo();
        let mut b = ProgramBuilder::new(&t, 4096);
        let buf = b.alloc(4096, AllocPolicy::FirstTouch);
        let t0 = b.add_thread(0);
        let t1 = b.add_thread(1);
        b.load(t0, buf);
        b.load(t1, buf);
        let p = b.build();
        assert!(find_races(&p, &ProgramCfg::build(&p)).is_empty());
    }
}
