//! The per-file item/fn indexer.
//!
//! A lightweight structural pass over blanked source (see
//! [`crate::lexer`]): for every file it records the `fn` items — name,
//! line span, enclosing-crate, call targets, `// audit:hot` annotation —
//! plus the raw material the rules consume (lock-acquisition sites,
//! condvar operations, atomic accesses, unsafe blocks, panic tokens).
//! Everything is token-level and approximate by design: the index
//! over-approximates calls (any `name(` or `.name(` is a potential call)
//! and under-approximates types (a receiver is just the dotted identifier
//! path before the method). The rules are written to stay useful under
//! that approximation, and the whole pass is deterministic: files are
//! indexed in sorted order and every collection is insertion-ordered.

use crate::lexer::{brace_depths, Lexed};

/// One `fn` item: where it lives and what it mentions.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name (the token after `fn`).
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub start_line: usize,
    /// 0-based line of the body's closing brace (inclusive).
    pub end_line: usize,
    /// Whether the item sits inside a `#[cfg(test)]` module.
    pub is_test: bool,
    /// Whether a `// audit:hot` marker annotates the fn (on the `fn` line
    /// or in the contiguous comment/attribute block above it).
    pub hot: bool,
    /// Call targets: the identifier before every `(` in the body, in
    /// source order, deduplicated. `Type::method(` records `method`.
    pub calls: Vec<String>,
}

/// One source file's index.
#[derive(Debug, Clone)]
pub struct FileIndex {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Crate key: `"crates/<name>"` or `"src"` for the binary crate.
    pub crate_key: String,
    /// The lexed source (shared with the rules).
    pub lexed: Lexed,
    /// Brace depth at the start of each line.
    pub depths: Vec<i64>,
    /// Functions, in source order.
    pub fns: Vec<FnItem>,
}

/// The whole workspace, indexed.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceIndex {
    /// Files in sorted-path order.
    pub files: Vec<FileIndex>,
}

impl WorkspaceIndex {
    /// Indexes `(path, source)` pairs. The caller supplies them in the
    /// order they should be scanned (sorted, for determinism).
    pub fn build(sources: &[(String, String)]) -> WorkspaceIndex {
        WorkspaceIndex {
            files: sources
                .iter()
                .map(|(p, s)| index_file(p, s))
                .collect::<Vec<_>>(),
        }
    }

    /// Total fns indexed (excluding none).
    pub fn fn_count(&self) -> usize {
        self.files.iter().map(|f| f.fns.len()).sum()
    }

    /// The fn (if any) whose body covers `line` in file `fi`. Nested fns
    /// resolve to the innermost enclosing item.
    pub fn enclosing_fn(&self, fi: usize, line: usize) -> Option<&FnItem> {
        self.files[fi]
            .fns
            .iter()
            .filter(|f| f.start_line <= line && line <= f.end_line)
            .max_by_key(|f| f.start_line)
    }
}

/// Derives the crate key from a workspace-relative path.
fn crate_key_of(path: &str) -> String {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") => match parts.next() {
            Some(name) => format!("crates/{name}"),
            None => "crates".to_string(),
        },
        Some(first) => first.to_string(),
        None => String::new(),
    }
}

/// Rust keywords and control tokens that look like calls but are not.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "move", "in", "as", "else",
    "impl", "where", "unsafe", "pub", "mod", "use", "struct", "enum", "trait", "type", "const",
    "static", "ref", "mut", "dyn", "box", "await", "async", "crate", "self", "Self", "super",
];

/// Extracts call-target names from one blanked line: the identifier
/// immediately before each `(`, unless it is a keyword, a macro (`name!`),
/// or a definition (`fn name(`).
pub fn calls_on_line(code: &str) -> Vec<String> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'(' {
            continue;
        }
        // Walk back over the identifier.
        let mut j = i;
        while j > 0 {
            let c = bytes[j - 1];
            if c.is_ascii_alphanumeric() || c == b'_' {
                j -= 1;
            } else {
                break;
            }
        }
        if j == i {
            continue; // no identifier directly before the paren
        }
        // Macros (`name!(`) never reach here: `!` stops the walk-back and
        // leaves j == i. Skip `fn name(` definitions.
        let name = &code[j..i];
        if name.as_bytes()[0].is_ascii_digit() {
            continue;
        }
        let before = code[..j].trim_end();
        if before.ends_with("fn") || before.ends_with('!') {
            continue;
        }
        if NOT_CALLS.contains(&name) {
            continue;
        }
        if !out.iter().any(|n| n == name) {
            out.push(name.to_string());
        }
    }
    out
}

/// Indexes one file.
pub fn index_file(path: &str, source: &str) -> FileIndex {
    let lexed = Lexed::new(source);
    let line_refs: Vec<&str> = lexed.code_lines.iter().map(|s| s.as_str()).collect();
    let depths = brace_depths(&line_refs);
    let mut fns = Vec::new();

    for (idx, code) in lexed.code_lines.iter().enumerate() {
        let Some(name) = fn_name_on_line(code) else {
            continue;
        };
        // Find the body's opening brace: first line at/after the header
        // with a `{` before any terminating `;` (trait method decls end
        // with `;` and carry no body).
        let mut open = None;
        for (k, line) in lexed.code_lines.iter().enumerate().skip(idx) {
            let brace = line.find('{');
            let semi = line.find(';');
            match (brace, semi) {
                (Some(b), Some(s)) if s < b => break,
                (Some(_), _) => {
                    open = Some(k);
                    break;
                }
                (None, Some(_)) => break,
                (None, None) => {}
            }
            if k > idx + 8 {
                break; // runaway header; treat as declaration
            }
        }
        let Some(open) = open else { continue };
        // The body ends at the `}` that returns the depth to the opening
        // line's starting depth — walked char by char so one-line bodies
        // (`fn f() { 1 }`) close on their own line.
        let base = depths[open];
        let mut end = lexed.code_lines.len().saturating_sub(1);
        let mut depth = base;
        let mut entered = false;
        'body: for (k, line) in lexed.code_lines.iter().enumerate().skip(open) {
            for ch in line.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth -= 1;
                        if entered && depth <= base {
                            end = k;
                            break 'body;
                        }
                    }
                    _ => {}
                }
            }
        }
        // The `audit:hot` marker attaches to the fn directly below it: walk
        // up over the fn's comment/attribute block only, so a marker never
        // leaks onto the next item.
        let mut hot = lexed.raw(idx).contains("audit:hot");
        let mut k = idx;
        while !hot && k > 0 {
            k -= 1;
            let raw = lexed.raw(k).trim_start();
            if raw.starts_with("//") || raw.starts_with("#[") || raw.is_empty() {
                hot = raw.contains("audit:hot");
                if raw.is_empty() {
                    break;
                }
            } else {
                break;
            }
        }
        let mut calls = Vec::new();
        for line in lexed.code_lines.iter().take(end + 1).skip(open) {
            for c in calls_on_line(line) {
                if c != name && !calls.contains(&c) {
                    calls.push(c);
                }
            }
        }
        fns.push(FnItem {
            name: name.to_string(),
            start_line: idx,
            end_line: end,
            is_test: lexed.is_test(idx),
            hot,
            calls,
        });
    }

    FileIndex {
        path: path.to_string(),
        crate_key: crate_key_of(path),
        lexed,
        depths,
        fns,
    }
}

/// The fn name on a definition line, if the line starts one.
fn fn_name_on_line(code: &str) -> Option<&str> {
    let mut rest = code;
    loop {
        let pos = rest.find("fn ")?;
        // `fn` must be its own token (not the tail of `use_fn `).
        let ok_before = pos == 0
            || !rest.as_bytes()[pos - 1].is_ascii_alphanumeric()
                && rest.as_bytes()[pos - 1] != b'_';
        if !ok_before {
            rest = &rest[pos + 3..];
            continue;
        }
        let after = rest[pos + 3..].trim_start();
        let end = after
            .find(|c: char| !c.is_alphanumeric() && c != '_')
            .unwrap_or(after.len());
        if end == 0 {
            return None;
        }
        // A definition is followed by generics or the parameter list.
        let tail = after[end..].trim_start();
        if tail.starts_with('(') || tail.starts_with('<') {
            return Some(&after[..end]);
        }
        return None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_fn_spans_and_calls() {
        let src = concat!(
            "pub fn alpha(x: u32) -> u32 {\n",
            "    beta(x);\n",
            "    let v = Vec::with_capacity(4);\n",
            "    gamma(v.len())\n",
            "}\n",
            "\n",
            "fn beta(x: u32) {}\n",
        );
        let fi = index_file("crates/demo/src/lib.rs", src);
        assert_eq!(fi.crate_key, "crates/demo");
        assert_eq!(fi.fns.len(), 2);
        let a = &fi.fns[0];
        assert_eq!(a.name, "alpha");
        assert_eq!((a.start_line, a.end_line), (0, 4));
        assert!(a.calls.iter().any(|c| c == "beta"));
        assert!(a.calls.iter().any(|c| c == "with_capacity"));
        assert!(a.calls.iter().any(|c| c == "gamma"));
        assert!(a.calls.iter().any(|c| c == "len"));
        assert_eq!(fi.fns[1].name, "beta");
    }

    #[test]
    fn trait_declarations_without_bodies_are_skipped() {
        let src =
            "trait T {\n    fn decl(&self) -> u32;\n    fn with_body(&self) -> u32 { 1 }\n}\n";
        let fi = index_file("src/lib.rs", src);
        assert_eq!(fi.fns.len(), 1);
        assert_eq!(fi.fns[0].name, "with_body");
    }

    #[test]
    fn hot_marker_attaches_to_the_next_fn() {
        let src = concat!(
            "// audit:hot — inner simulator loop\n",
            "fn hot_one() { work(); }\n",
            "fn cold_one() { work(); }\n",
        );
        let fi = index_file("src/lib.rs", src);
        assert!(fi.fns[0].hot);
        assert!(!fi.fns[1].hot);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let calls = calls_on_line("    if cond(x) { format!(\"{}\", y); matches!(z, 1) }");
        assert_eq!(calls, vec!["cond".to_string()]);
    }

    #[test]
    fn test_mod_fns_are_marked() {
        let src = concat!(
            "fn prod() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { prod(); }\n",
            "}\n",
        );
        let fi = index_file("src/lib.rs", src);
        assert!(!fi.fns[0].is_test);
        assert!(fi.fns[1].is_test);
    }

    #[test]
    fn enclosing_fn_resolves_innermost() {
        let src = concat!(
            "fn outer() {\n",
            "    fn inner() {\n",
            "        work();\n",
            "    }\n",
            "    inner();\n",
            "}\n",
        );
        let ws = WorkspaceIndex::build(&[("src/lib.rs".to_string(), src.to_string())]);
        assert_eq!(ws.fn_count(), 2);
        assert_eq!(
            ws.enclosing_fn(0, 2).map(|f| f.name.as_str()),
            Some("inner")
        );
        assert_eq!(
            ws.enclosing_fn(0, 4).map(|f| f.name.as_str()),
            Some("outer")
        );
    }
}
