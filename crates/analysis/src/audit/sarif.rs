//! SARIF 2.1.0 serialisation of an [`AuditReport`].
//!
//! Hand-written like the rest of the workspace's JSON (no serde in the
//! tree): one `run`, the six rules declared up front, one `result` per
//! finding. Suppressed findings are emitted with an `external`
//! suppression object so SARIF viewers show the gate exactly as the CLI
//! applies it. Output is deterministic: findings arrive pre-sorted from
//! the report and field order is fixed by construction.

use super::rules::RULES;
use super::AuditReport;
use crate::lint::escape_json;
use std::fmt::Write as _;

/// SARIF schema/version pinned by the report.
const SARIF_VERSION: &str = "2.1.0";
const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Renders `report` as a SARIF 2.1.0 log.
pub fn to_sarif(report: &AuditReport) -> String {
    let mut out = String::with_capacity(4096);
    let _ = write!(
        out,
        "{{\"$schema\":\"{SARIF_SCHEMA}\",\"version\":\"{SARIF_VERSION}\",\"runs\":[{{\
         \"tool\":{{\"driver\":{{\"name\":\"np-audit\",\"rules\":["
    );
    for (i, (id, desc)) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            escape_json(id),
            escape_json(desc)
        );
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"region\":{{\"startLine\":{}}}}}}}]",
            escape_json(f.rule),
            escape_json(&f.message),
            escape_json(&f.path),
            f.line
        );
        if f.suppressed {
            out.push_str(",\"suppressions\":[{\"kind\":\"external\"}]");
        }
        out.push('}');
    }
    out.push_str("]}]}");
    out
}

#[cfg(test)]
mod tests {
    use super::super::AuditFinding;
    use super::*;

    #[test]
    fn sarif_declares_rules_and_marks_suppressions() {
        let report = AuditReport {
            findings: vec![
                AuditFinding {
                    rule: "lock-order",
                    path: "crates/a/src/lib.rs".to_string(),
                    line: 3,
                    message: "cycle \"a\" <-> \"b\"".to_string(),
                    suppressed: false,
                },
                AuditFinding {
                    rule: "unsafe-safety",
                    path: "crates/b/src/lib.rs".to_string(),
                    line: 9,
                    message: "unsafe without SAFETY".to_string(),
                    suppressed: true,
                },
            ],
            ..AuditReport::default()
        };
        let sarif = to_sarif(&report);
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("\"name\":\"np-audit\""));
        for (id, _) in RULES {
            assert!(
                sarif.contains(&format!("\"id\":\"{id}\"")),
                "rule {id} declared"
            );
        }
        assert!(
            sarif.contains("cycle \\\"a\\\" <-> \\\"b\\\""),
            "messages escaped"
        );
        assert!(sarif.contains("\"startLine\":3"));
        assert_eq!(sarif.matches("\"suppressions\"").count(), 1);
    }
}
