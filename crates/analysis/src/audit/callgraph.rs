//! The approximate workspace call/symbol graph.
//!
//! Nodes are indexed fns; edges come from name matching under a
//! crate-aware resolution policy. Precise call resolution needs type
//! information a token scan cannot have, so the graph deliberately
//! over-approximates — good enough for reachability ("can a panic in this
//! fn fire under the probe's accept loop?") where a false edge costs a
//! review and a missed edge costs a crashed campaign. The policy:
//!
//! 1. a call resolves to every same-crate fn of that name;
//! 2. plus every fn of that name in a crate the *file* references by its
//!    `np_<name>` path (so `pool.run(…)` in a file importing
//!    `np_parallel` reaches `np-parallel`'s `run`);
//! 3. a name with no candidate yet resolves globally **only** when it is
//!    unique across the workspace;
//! 4. names with more than [`MAX_FANOUT`] candidates resolve to none —
//!    ubiquitous names (`new`, `len`, `get`) would otherwise connect
//!    everything to everything and drown the rules in noise.

use super::index::WorkspaceIndex;
use std::collections::{BTreeMap, VecDeque};

/// A fn's global id: (file index, fn index within the file).
pub type FnId = (usize, usize);

/// Resolution cap: a callee name matching more fns than this is treated
/// as unresolvable (too ambiguous to be signal).
pub const MAX_FANOUT: usize = 8;

/// The call graph over a [`WorkspaceIndex`].
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Out-edges per fn, deduplicated, in deterministic order.
    pub edges: BTreeMap<FnId, Vec<FnId>>,
    /// Total edges (for report summaries).
    pub edge_count: usize,
}

impl CallGraph {
    /// Builds the graph for `ws`.
    pub fn build(ws: &WorkspaceIndex) -> CallGraph {
        // Name -> defining fns, in (file, fn) order.
        let mut defs: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        for (fi, file) in ws.files.iter().enumerate() {
            for (ki, f) in file.fns.iter().enumerate() {
                defs.entry(f.name.as_str()).or_default().push((fi, ki));
            }
        }
        // Which crates does each file reference (by `np_<x>` mention)?
        // Crate keys look like `crates/parallel`; the path mention is
        // `np_parallel`. Build mention -> crate_key from the files seen.
        let mut crate_of_mention: BTreeMap<String, &str> = BTreeMap::new();
        for file in &ws.files {
            if let Some(name) = file.crate_key.strip_prefix("crates/") {
                crate_of_mention.insert(format!("np_{}", name.replace('-', "_")), &file.crate_key);
            }
        }

        let mut edges: BTreeMap<FnId, Vec<FnId>> = BTreeMap::new();
        let mut edge_count = 0usize;
        for (fi, file) in ws.files.iter().enumerate() {
            // Crates this file references in code.
            let referenced: Vec<&str> = crate_of_mention
                .iter()
                .filter(|(mention, key)| {
                    **key != file.crate_key
                        && file.lexed.code_lines.iter().any(|l| l.contains(&**mention))
                })
                .map(|(_, key)| *key)
                .collect();
            for (ki, f) in file.fns.iter().enumerate() {
                let mut outs: Vec<FnId> = Vec::new();
                for call in &f.calls {
                    let Some(cands) = defs.get(call.as_str()) else {
                        continue;
                    };
                    let scoped: Vec<FnId> = cands
                        .iter()
                        .copied()
                        .filter(|&(cfi, _)| {
                            let ck = ws.files[cfi].crate_key.as_str();
                            ck == file.crate_key || referenced.contains(&ck)
                        })
                        .collect();
                    let resolved: &[FnId] = if !scoped.is_empty() {
                        &scoped
                    } else if cands.len() == 1 {
                        cands
                    } else {
                        &[]
                    };
                    if resolved.len() > MAX_FANOUT {
                        continue;
                    }
                    for &id in resolved {
                        if id != (fi, ki) && !outs.contains(&id) {
                            outs.push(id);
                            edge_count += 1;
                        }
                    }
                }
                if !outs.is_empty() {
                    edges.insert((fi, ki), outs);
                }
            }
        }
        CallGraph { edges, edge_count }
    }

    /// BFS from `roots`, bounded at `max_depth` hops. Returns, per reached
    /// fn, the depth and the root it was first reached from (smallest
    /// root / shortest path — deterministic because roots and edges are
    /// visited in sorted order).
    pub fn reachable(&self, roots: &[FnId], max_depth: usize) -> BTreeMap<FnId, (usize, FnId)> {
        let mut seen: BTreeMap<FnId, (usize, FnId)> = BTreeMap::new();
        let mut queue: VecDeque<(FnId, usize, FnId)> = VecDeque::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(e) = seen.entry(r) {
                e.insert((0, r));
                queue.push_back((r, 0, r));
            }
        }
        while let Some((id, depth, root)) = queue.pop_front() {
            if depth >= max_depth {
                continue;
            }
            if let Some(outs) = self.edges.get(&id) {
                for &next in outs {
                    if let std::collections::btree_map::Entry::Vacant(e) = seen.entry(next) {
                        e.insert((depth + 1, root));
                        queue.push_back((next, depth + 1, root));
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> WorkspaceIndex {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        WorkspaceIndex::build(&owned)
    }

    #[test]
    fn same_crate_calls_resolve() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn top() { helper(); }\nfn helper() { leaf(); }\nfn leaf() {}\n",
        )]);
        let g = CallGraph::build(&w);
        let reach = g.reachable(&[(0, 0)], 4);
        assert_eq!(reach.len(), 3);
        assert_eq!(reach[&(0, 2)].0, 2, "leaf is two hops down");
    }

    #[test]
    fn cross_crate_needs_a_reference_or_uniqueness() {
        // `shared_unique` is unique -> resolves globally. `run` exists in
        // two crates and crate b is not referenced -> unresolved.
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "fn top() { shared_unique(); run(); }\nfn run() {}\n",
            ),
            (
                "crates/b/src/lib.rs",
                "fn shared_unique() {}\nfn run() {}\n",
            ),
        ]);
        let g = CallGraph::build(&w);
        let outs = &g.edges[&(0, 0)];
        assert!(outs.contains(&(1, 0)), "unique name resolves globally");
        assert!(outs.contains(&(0, 1)), "same-crate run resolves");
        assert!(!outs.contains(&(1, 1)), "foreign run is not referenced");
    }

    #[test]
    fn np_path_mention_links_crates() {
        let w = ws(&[
            (
                "crates/counters/src/acq.rs",
                "fn measure(pool: &np_parallel::Pool) { pool.run(8); }\n",
            ),
            ("crates/parallel/src/pool.rs", "pub fn run(n: usize) {}\n"),
            ("crates/serve/src/lib.rs", "pub fn run(n: usize) {}\n"),
        ]);
        let g = CallGraph::build(&w);
        let outs = &g.edges[&(0, 0)];
        assert!(
            outs.contains(&(1, 0)),
            "np_parallel mention links the crate"
        );
        assert!(!outs.contains(&(2, 0)), "serve's run stays unlinked");
    }

    #[test]
    fn depth_bound_caps_traversal() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn f0() { f1(); }\nfn f1() { f2(); }\nfn f2() { f3(); }\nfn f3() {}\n",
        )]);
        let g = CallGraph::build(&w);
        assert_eq!(g.reachable(&[(0, 0)], 2).len(), 3, "f3 is beyond depth 2");
        assert_eq!(g.reachable(&[(0, 0)], 8).len(), 4);
    }
}
