//! The six audit rules.
//!
//! Each rule is a pure function of the [`WorkspaceIndex`] (and, for
//! reachability, the [`CallGraph`]) pushing [`AuditFinding`]s. The rules
//! target the invariants the bench harness and the measurement stack
//! rely on: no lock-order inversions, condvar discipline (the wakeup-
//! storm shape), explicit atomics orderings, allocation/locking-free hot
//! paths, justified unsafe, and panic-free call trees under the probe /
//! serve / acquisition entry points.

use super::callgraph::{CallGraph, FnId};
use super::index::{FileIndex, FnItem, WorkspaceIndex};
use super::AuditFinding;
use std::collections::{BTreeMap, BTreeSet};

/// Rule identifiers with their one-line SARIF descriptions.
pub const RULES: &[(&str, &str)] = &[
    (
        "lock-order",
        "Lock-acquisition-order cycle: two lock labels are acquired in opposite orders somewhere in the workspace (deadlock risk).",
    ),
    (
        "condvar-discipline",
        "Condvar wait outside a predicate loop, or notify without holding the guarded lock (lost/spurious wakeup risk).",
    ),
    (
        "atomics-ordering",
        "Relaxed ordering outside crates/telemetry, or an Acquire/Release one-sided pairing on an atomic.",
    ),
    (
        "hot-path-hygiene",
        "Allocation, locking or IO inside a fn annotated `// audit:hot` (chunk execution and simulator inner loops).",
    ),
    (
        "unsafe-safety",
        "`unsafe` without a `// SAFETY:` justification in the preceding lines; all sites land in the committed inventory.",
    ),
    (
        "no-panic-reachable",
        "unwrap/expect/panic reachable from a server/probe/acquisition entry point through the approximate call graph.",
    ),
];

/// Panic tokens (shared shape with `lint`'s `no-panic`).
pub const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Files whose fns are panic-reachability roots, by exact path…
pub const ENTRY_FILES: &[&str] = &[
    "crates/core/src/memhist/probe.rs",
    "crates/resilience/src/io.rs",
    "crates/counters/src/acquisition.rs",
    "crates/counters/src/pebs.rs",
];

/// …and by prefix (the whole serve crate answers live traffic).
pub const ENTRY_PREFIXES: &[&str] = &["crates/serve/src/"];

/// Call-graph traversal bound for `no-panic-reachable`: beyond a few hops
/// the name-matched graph accumulates too many false edges to stay
/// signal.
pub const REACH_DEPTH: usize = 4;

fn is_entry_file(path: &str) -> bool {
    ENTRY_FILES.contains(&path) || ENTRY_PREFIXES.iter().any(|p| path.starts_with(p))
}

/// Extracts the dotted receiver path ending right before byte `dot` (the
/// `.` of `.lock(`): `self.state.lock()` → `self.state`.
fn receiver_before(code: &str, dot: usize) -> String {
    let bytes = code.as_bytes();
    let mut j = dot;
    while j > 0 {
        let c = bytes[j - 1];
        if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' || c == b':' {
            j -= 1;
        } else {
            break;
        }
    }
    let recv = code[j..dot].trim_matches('.');
    if recv.is_empty() {
        "<expr>".to_string()
    } else {
        recv.to_string()
    }
}

/// Lock-acquisition sites on one blanked line: `(column, label)` per
/// `.lock()` (always) and `.read()` / `.write()` (only when the file
/// mentions `RwLock` — bare `.read(buf)` is IO, not locking).
fn lock_sites_on_line(code: &str, rwlock_file: bool) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut pats: Vec<&str> = vec![".lock()"];
    if rwlock_file {
        pats.push(".read()");
        pats.push(".write()");
    }
    for pat in pats {
        let mut from = 0;
        while let Some(p) = code[from..].find(pat) {
            let at = from + p;
            out.push((at, receiver_before(code, at)));
            from = at + pat.len();
        }
    }
    out.sort();
    out
}

/// Whether a blanked line acquires a mutex (used by the notify check and
/// hot-path hygiene): covers guard-returning helpers the workspace uses
/// for poison recovery.
fn line_acquires_lock(code: &str, rwlock_file: bool) -> bool {
    code.contains(".lock(")
        || code.contains(".locked(")
        || code.contains("lock_unpoisoned(")
        || (rwlock_file && (code.contains(".read()") || code.contains(".write()")))
}

/// One lock-order edge witness.
#[derive(Debug, Clone)]
struct EdgeWitness {
    path: String,
    line: usize,
    via: String,
}

/// Rule 1: build the workspace lock-order graph and report cycles.
///
/// An edge `A → B` means somewhere a guard of `A` is still plausibly held
/// when `B` is acquired: either both acquisitions are in one fn with the
/// earlier one `let`-bound (temporary guards drop at the semicolon), or
/// the fn holds `A` and calls — one hop — a fn that acquires `B`. Labels
/// are receiver paths (`self.state`, `shard`); identical labels never
/// form an edge, because a re-acquisition loop (one shard at a time) is
/// indistinguishable from nesting at token level.
pub fn lock_order(ws: &WorkspaceIndex, graph: &CallGraph, findings: &mut Vec<AuditFinding>) {
    // label -> label -> first witness
    let mut edges: BTreeMap<String, BTreeMap<String, EdgeWitness>> = BTreeMap::new();
    let mut add = |a: &str, b: &str, w: EdgeWitness| {
        if a != b {
            edges
                .entry(a.to_string())
                .or_default()
                .entry(b.to_string())
                .or_insert(w);
        }
    };

    // Per fn: ordered (line, label, let_bound) acquisition events and the
    // labels acquired anywhere in the fn (for the one-hop extension).
    let mut fn_acquisitions: BTreeMap<FnId, Vec<(usize, String, bool)>> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        let rwlock_file = file.lexed.code_lines.iter().any(|l| l.contains("RwLock"));
        for (ki, f) in file.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let mut events = Vec::new();
            for line in f.start_line..=f.end_line.min(file.lexed.len().saturating_sub(1)) {
                let code = file.lexed.code(line);
                for (_, label) in lock_sites_on_line(code, rwlock_file) {
                    let let_bound = code.trim_start().starts_with("let ");
                    // Crate-qualified label: `self.inner` in two different
                    // crates is two different mutexes, and aliasing them
                    // fabricates cycles that cannot deadlock.
                    events.push((line, format!("{}::{label}", file.crate_key), let_bound));
                }
            }
            if !events.is_empty() {
                fn_acquisitions.insert((fi, ki), events);
            }
        }
    }

    for (&(fi, ki), events) in &fn_acquisitions {
        let file = &ws.files[fi];
        let f = &file.fns[ki];
        // Within-fn ordered pairs: earlier must be let-bound (held).
        for (i, (_, a, let_bound)) in events.iter().enumerate() {
            if !let_bound {
                continue;
            }
            for (line_b, b, _) in events.iter().skip(i + 1) {
                add(
                    a,
                    b,
                    EdgeWitness {
                        path: file.path.clone(),
                        line: line_b + 1,
                        via: f.name.clone(),
                    },
                );
            }
            // One-hop extension: any lock acquired by a callee while `a`
            // is held (callee labels are their own receivers).
            if let Some(outs) = graph.edges.get(&(fi, ki)) {
                for callee in outs {
                    if let Some(callee_events) = fn_acquisitions.get(callee) {
                        let (cfi, cki) = *callee;
                        for (cline, b, _) in callee_events {
                            add(
                                a,
                                b,
                                EdgeWitness {
                                    path: ws.files[cfi].path.clone(),
                                    line: cline + 1,
                                    via: format!("{} -> {}", f.name, ws.files[cfi].fns[cki].name),
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    // Cycle detection: report each strongly-connected component of size
    // >= 2 once, anchored at its lexicographically smallest witness.
    for scc in sccs(&edges) {
        if scc.len() < 2 {
            continue;
        }
        let mut witnesses: Vec<&EdgeWitness> = Vec::new();
        for a in &scc {
            if let Some(outs) = edges.get(a) {
                for (b, w) in outs {
                    if scc.contains(b) {
                        witnesses.push(w);
                    }
                }
            }
        }
        witnesses.sort_by(|x, y| (&x.path, x.line).cmp(&(&y.path, y.line)));
        let Some(first) = witnesses.first() else {
            continue;
        };
        let sites: Vec<String> = witnesses
            .iter()
            .map(|w| format!("{}:{} ({})", w.path, w.line, w.via))
            .collect();
        findings.push(AuditFinding {
            rule: "lock-order",
            path: first.path.clone(),
            line: first.line,
            message: format!(
                "lock-order cycle between {{{}}}; acquisition sites: {}",
                scc.join(", "),
                sites.join(", ")
            ),
            suppressed: false,
        });
    }
}

/// Strongly-connected components over a string-labelled graph
/// (iterative Kosaraju; deterministic: nodes visited in sorted order).
/// Each returned component is sorted.
fn sccs(edges: &BTreeMap<String, BTreeMap<String, EdgeWitness>>) -> Vec<Vec<String>> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (a, outs) in edges {
        nodes.insert(a);
        for b in outs.keys() {
            nodes.insert(b);
        }
    }
    let succ = |n: &str| -> Vec<&str> {
        edges
            .get(n)
            .map(|m| m.keys().map(String::as_str).collect())
            .unwrap_or_default()
    };
    // Pass 1: finish order.
    let mut finished: Vec<&str> = Vec::new();
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    for &start in &nodes {
        if visited.contains(start) {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        visited.insert(start);
        while let Some((n, i)) = stack.pop() {
            let outs = succ(n);
            if i < outs.len() {
                stack.push((n, i + 1));
                let next = outs[i];
                if !visited.contains(next) {
                    visited.insert(next);
                    stack.push((next, 0));
                }
            } else {
                finished.push(n);
            }
        }
    }
    // Reverse graph.
    let mut rev: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, outs) in edges {
        for b in outs.keys() {
            rev.entry(b).or_default().push(a);
        }
    }
    // Pass 2: assign components in reverse finish order.
    let mut comp: BTreeMap<&str, usize> = BTreeMap::new();
    let mut comps: Vec<Vec<String>> = Vec::new();
    for &n in finished.iter().rev() {
        if comp.contains_key(n) {
            continue;
        }
        let id = comps.len();
        let mut members = Vec::new();
        let mut stack = vec![n];
        comp.insert(n, id);
        while let Some(m) = stack.pop() {
            members.push(m.to_string());
            for &p in rev.get(m).map(|v| v.as_slice()).unwrap_or(&[]) {
                if !comp.contains_key(p) {
                    comp.insert(p, id);
                    stack.push(p);
                }
            }
        }
        members.sort();
        comps.push(members);
    }
    comps
}

/// Rule 2: condvar discipline.
pub fn condvar(ws: &WorkspaceIndex, findings: &mut Vec<AuditFinding>) {
    for file in &ws.files {
        let rwlock_file = file.lexed.code_lines.iter().any(|l| l.contains("RwLock"));
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            let body_end = f.end_line.min(file.lexed.len().saturating_sub(1));
            // Guard-passing: a helper that takes a `MutexGuard` parameter
            // can only be called with the lock held — its signature is the
            // proof of acquisition.
            let takes_guard = (f.start_line..=body_end.min(f.start_line + 3))
                .take_while(|&k| {
                    k == f.start_line || !file.lexed.code(k.saturating_sub(1)).contains('{')
                })
                .any(|k| file.lexed.code(k).contains("MutexGuard"));
            for line in f.start_line..=body_end {
                let code = file.lexed.code(line);
                // `wait_while` / `wait_timeout_while` ARE the predicate
                // loop; bare `wait` / `wait_timeout` need an enclosing
                // loop re-checking the predicate. A condvar wait always
                // takes the guard as an argument — argument-less `.wait()`
                // is `Barrier::wait`, which is not a condvar at all.
                let bare_wait = ((code.contains(".wait(") && !code.contains(".wait()"))
                    || code.contains(".wait_timeout("))
                    && !code.contains("_while(");
                if bare_wait && !inside_loop(file, f, line) {
                    findings.push(AuditFinding {
                        rule: "condvar-discipline",
                        path: file.path.clone(),
                        line: line + 1,
                        message: format!(
                            "condvar wait in `{}` outside a predicate loop; spurious wakeups make \
                             a bare wait return early — re-check the predicate in a loop/while",
                            f.name
                        ),
                        suppressed: false,
                    });
                }
                if code.contains(".notify_one(") || code.contains(".notify_all(") {
                    let guarded = takes_guard
                        || (f.start_line..=line)
                            .any(|k| line_acquires_lock(file.lexed.code(k), rwlock_file));
                    if !guarded {
                        findings.push(AuditFinding {
                            rule: "condvar-discipline",
                            path: file.path.clone(),
                            line: line + 1,
                            message: format!(
                                "notify in `{}` without acquiring the guarded mutex first; a \
                                 waiter can miss the wakeup between its predicate check and its \
                                 wait",
                                f.name
                            ),
                            suppressed: false,
                        });
                    }
                }
            }
        }
    }
}

/// Whether `line` (inside `f`'s body) sits under a `loop`/`while` header
/// at a strictly shallower brace depth within the fn.
fn inside_loop(file: &FileIndex, f: &FnItem, line: usize) -> bool {
    let d = file.depths[line];
    let mut k = line;
    while k > f.start_line {
        k -= 1;
        if file.depths[k] < d {
            let code = file.lexed.code(k);
            if code.contains("loop") || contains_word(code, "while") {
                return true;
            }
            // Keep walking: an `if` or `match` at a shallower depth may
            // itself sit inside the loop.
        }
    }
    false
}

/// Word-boundary containment (so `while` does not match `meanwhile`).
fn contains_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(p) = code[from..].find(word) {
        let at = from + p;
        let before_ok =
            at == 0 || (!bytes[at - 1].is_ascii_alphanumeric() && bytes[at - 1] != b'_');
        let end = at + word.len();
        let after_ok =
            end >= bytes.len() || (!bytes[end].is_ascii_alphanumeric() && bytes[end] != b'_');
        if before_ok && after_ok {
            return true;
        }
        from = at + word.len();
    }
    false
}

/// Rule 3: atomics orderings.
pub fn atomics(ws: &WorkspaceIndex, findings: &mut Vec<AuditFinding>) {
    // (a) Relaxed stays a telemetry-internal liberty (generalises lint's
    // rule to the audit's gate).
    for file in &ws.files {
        if file.path.starts_with("crates/telemetry/") {
            continue;
        }
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            for line in f.start_line..=f.end_line.min(file.lexed.len().saturating_sub(1)) {
                if file.lexed.code(line).contains("Ordering::Relaxed") {
                    findings.push(AuditFinding {
                        rule: "atomics-ordering",
                        path: file.path.clone(),
                        line: line + 1,
                        message: "Ordering::Relaxed outside crates/telemetry; use SeqCst or move \
                                  the atomic behind the telemetry facade"
                            .to_string(),
                        suppressed: false,
                    });
                }
            }
        }
    }

    // (b) Unpaired Acquire/Release on the same atomic label.
    #[derive(Default, Debug)]
    struct Sides {
        acquire: Option<(String, usize)>,
        release: Option<(String, usize)>,
        seqcst_or_acqrel: bool,
    }
    let mut by_label: BTreeMap<String, Sides> = BTreeMap::new();
    for file in &ws.files {
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            for line in f.start_line..=f.end_line.min(file.lexed.len().saturating_sub(1)) {
                let code = file.lexed.code(line);
                if !code.contains("Ordering::") {
                    continue;
                }
                let Some(label) = atomic_receiver(code) else {
                    continue;
                };
                let entry = by_label.entry(label).or_default();
                if code.contains("Ordering::Acquire") && entry.acquire.is_none() {
                    entry.acquire = Some((file.path.clone(), line + 1));
                }
                if code.contains("Ordering::Release") && entry.release.is_none() {
                    entry.release = Some((file.path.clone(), line + 1));
                }
                if code.contains("Ordering::SeqCst") || code.contains("Ordering::AcqRel") {
                    entry.seqcst_or_acqrel = true;
                }
            }
        }
    }
    for (label, sides) in &by_label {
        if sides.seqcst_or_acqrel {
            continue; // a stronger ordering on the label satisfies both sides
        }
        match (&sides.acquire, &sides.release) {
            (Some((path, line)), None) => findings.push(AuditFinding {
                rule: "atomics-ordering",
                path: path.clone(),
                line: *line,
                message: format!(
                    "Acquire on atomic `{label}` with no Release store anywhere in the \
                     workspace; the load synchronises with nothing"
                ),
                suppressed: false,
            }),
            (None, Some((path, line))) => findings.push(AuditFinding {
                rule: "atomics-ordering",
                path: path.clone(),
                line: *line,
                message: format!(
                    "Release on atomic `{label}` with no Acquire load anywhere in the \
                     workspace; the store publishes to nobody"
                ),
                suppressed: false,
            }),
            _ => {}
        }
    }
}

/// The atomic receiver on a line mentioning an explicit ordering:
/// the receiver of `.load(` / `.store(` / `.swap(` / `.fetch_*` /
/// `.compare_exchange*`, normalised to its final path segment.
fn atomic_receiver(code: &str) -> Option<String> {
    for pat in [
        ".load(",
        ".store(",
        ".swap(",
        ".fetch_add(",
        ".fetch_sub(",
        ".fetch_or(",
        ".fetch_and(",
        ".fetch_xor(",
        ".compare_exchange(",
        ".compare_exchange_weak(",
    ] {
        if let Some(at) = code.find(pat) {
            let recv = receiver_before(code, at);
            let last = recv.rsplit(['.', ':']).next().unwrap_or(&recv);
            return Some(last.to_string());
        }
    }
    None
}

/// Rule 4: hot-path hygiene inside `// audit:hot` fns.
pub fn hot_path(ws: &WorkspaceIndex, findings: &mut Vec<AuditFinding>) {
    const ALLOC: &[&str] = &[
        "vec![",
        "with_capacity(",
        "Box::new(",
        "String::from(",
        ".to_string(",
        ".to_vec(",
        ".to_owned(",
        "format!",
        ".collect(",
    ];
    const IO: &[&str] = &[
        "std::fs::",
        "File::open(",
        "File::create(",
        "TcpStream::",
        "TcpListener::",
        "println!",
        "eprintln!",
        ".flush(",
        "thread::sleep(",
        "read_to_string(",
    ];
    for file in &ws.files {
        let rwlock_file = file.lexed.code_lines.iter().any(|l| l.contains("RwLock"));
        for f in &file.fns {
            if !f.hot || f.is_test {
                continue;
            }
            for line in f.start_line..=f.end_line.min(file.lexed.len().saturating_sub(1)) {
                let code = file.lexed.code(line);
                let kind = if let Some(tok) = ALLOC.iter().find(|t| code.contains(**t)) {
                    Some(("allocates", *tok))
                } else if line_acquires_lock(code, rwlock_file) || code.contains(".wait(") {
                    Some(("locks/blocks", ".lock()"))
                } else {
                    IO.iter()
                        .find(|t| code.contains(**t))
                        .map(|t| ("does IO", *t))
                };
                if let Some((verb, tok)) = kind {
                    findings.push(AuditFinding {
                        rule: "hot-path-hygiene",
                        path: file.path.clone(),
                        line: line + 1,
                        message: format!(
                            "`{}` is marked audit:hot but {verb} here (`{tok}`); hoist it out \
                             of the inner loop or drop the marker",
                            f.name
                        ),
                        suppressed: false,
                    });
                }
            }
        }
    }
}

/// One unsafe site for the committed inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the `unsafe` token.
    pub line: usize,
    /// The trimmed code line.
    pub context: String,
    /// The `// SAFETY:` justification, or `None` when missing.
    pub justification: Option<String>,
}

/// Rule 5: every `unsafe` needs a `// SAFETY:` justification within the
/// three preceding lines (or on the line itself). Returns the full site
/// inventory — justified or not — for the committed inventory file.
pub fn unsafe_safety(ws: &WorkspaceIndex, findings: &mut Vec<AuditFinding>) -> Vec<UnsafeSite> {
    let mut sites = Vec::new();
    for file in &ws.files {
        for (idx, code) in file.lexed.code_lines.iter().enumerate() {
            if !contains_word(code, "unsafe") || file.lexed.is_test(idx) {
                continue;
            }
            let justification = (idx.saturating_sub(3)..=idx)
                .rev()
                .filter_map(|k| {
                    let raw = file.lexed.raw(k);
                    raw.find("SAFETY:")
                        .map(|p| raw[p + "SAFETY:".len()..].trim().to_string())
                })
                .next();
            if justification.is_none() {
                findings.push(AuditFinding {
                    rule: "unsafe-safety",
                    path: file.path.clone(),
                    line: idx + 1,
                    message: "unsafe without a `// SAFETY:` justification in the three preceding \
                              lines; say why the invariants hold"
                        .to_string(),
                    suppressed: false,
                });
            }
            sites.push(UnsafeSite {
                path: file.path.clone(),
                line: idx + 1,
                context: file.lexed.raw(idx).trim().to_string(),
                justification,
            });
        }
    }
    sites
}

/// Rule 6: panic tokens reachable from server/probe/acquisition entry
/// points through the call graph, outside the entry files themselves
/// (lint's `no-panic` covers those directly).
pub fn panic_reachable(ws: &WorkspaceIndex, graph: &CallGraph, findings: &mut Vec<AuditFinding>) {
    let mut roots: Vec<FnId> = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if !is_entry_file(&file.path) {
            continue;
        }
        for (ki, f) in file.fns.iter().enumerate() {
            if !f.is_test {
                roots.push((fi, ki));
            }
        }
    }
    let reached = graph.reachable(&roots, REACH_DEPTH);
    let mut seen: BTreeSet<(String, usize, &str)> = BTreeSet::new();
    for (&(fi, ki), &(depth, root)) in &reached {
        if depth == 0 {
            continue; // the entry files are lint's no-panic scope
        }
        let file = &ws.files[fi];
        if is_entry_file(&file.path) {
            continue;
        }
        let f = &file.fns[ki];
        if f.is_test {
            continue;
        }
        let (rfi, rki) = root;
        let root_name = &ws.files[rfi].fns[rki].name;
        let root_path = &ws.files[rfi].path;
        for line in f.start_line..=f.end_line.min(file.lexed.len().saturating_sub(1)) {
            if file.lexed.is_test(line) {
                continue;
            }
            let code = file.lexed.code(line);
            for tok in PANIC_TOKENS {
                if code.contains(tok) && seen.insert((file.path.clone(), line, tok)) {
                    findings.push(AuditFinding {
                        rule: "no-panic-reachable",
                        path: file.path.clone(),
                        line: line + 1,
                        message: format!(
                            "`{tok}` in `{}` is reachable in {depth} call(s) from entry \
                             `{root_name}` ({root_path}); a panic here aborts the serving/\
                             measurement path — return a typed error instead",
                            f.name
                        ),
                        suppressed: false,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_extraction() {
        let code = "        let g = self.state.lock().unwrap();";
        let at = code.find(".lock()").unwrap();
        assert_eq!(receiver_before(code, at), "self.state");
        assert_eq!(receiver_before(".lock()", 0), "<expr>");
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("while x {", "while"));
        assert!(!contains_word("meanwhile(x)", "while"));
        assert!(contains_word("unsafe {", "unsafe"));
        assert!(!contains_word("unsafely()", "unsafe"));
    }

    #[test]
    fn scc_finds_two_cycles() {
        let w = |p: &str| EdgeWitness {
            path: p.to_string(),
            line: 1,
            via: "f".to_string(),
        };
        let mut edges: BTreeMap<String, BTreeMap<String, EdgeWitness>> = BTreeMap::new();
        for (a, b) in [("a", "b"), ("b", "a"), ("c", "d"), ("d", "c"), ("a", "c")] {
            edges
                .entry(a.to_string())
                .or_default()
                .insert(b.to_string(), w("x.rs"));
        }
        let comps: Vec<Vec<String>> = sccs(&edges).into_iter().filter(|c| c.len() >= 2).collect();
        assert_eq!(comps.len(), 2);
        assert!(comps.contains(&vec!["a".to_string(), "b".to_string()]));
        assert!(comps.contains(&vec!["c".to_string(), "d".to_string()]));
    }
}
