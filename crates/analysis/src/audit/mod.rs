//! # np audit — workspace concurrency & determinism static analysis
//!
//! The promotion of `np lint`'s token scanner into a real (still
//! dependency-free) analysis subsystem. The pipeline:
//!
//! ```text
//! lexer (shared with lint) -> per-file fn index -> approximate call graph
//!   -> six rules -> inline allows -> baseline suppressions -> JSON/SARIF
//! ```
//!
//! - [`index`] — per-file `fn` items (spans, calls, `audit:hot` marks).
//! - [`callgraph`] — crate-aware name-matched call edges + bounded BFS.
//! - [`rules`] — lock-order cycles, condvar discipline, atomics
//!   orderings, hot-path hygiene, unsafe inventory, panic reachability.
//! - [`baseline`] — the committed suppression file gating only *new*
//!   findings; stale entries surface as warnings.
//! - [`sarif`] — SARIF 2.1.0 output for CI annotation.
//!
//! Everything is deterministic: files scan in sorted order, every map is
//! a `BTreeMap`, and two runs over the same tree produce byte-identical
//! JSON (pinned by a test). Findings can be waived inline with
//! `// audit:allow(<rule>)` on the offending line, or centrally in
//! `audit-baseline.json` with a reason.

pub mod baseline;
pub mod callgraph;
pub mod index;
pub mod rules;
pub mod sarif;

pub use baseline::{Baseline, Suppression, BASELINE_VERSION};
pub use callgraph::CallGraph;
pub use index::WorkspaceIndex;
pub use rules::UnsafeSite;

use crate::lexer::marker_allows;
use crate::lint::escape_json;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// Rule id (one of [`rules::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation with the evidence inline.
    pub message: String,
    /// Whether a baseline entry suppresses this finding.
    pub suppressed: bool,
}

/// The full audit result.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// All findings, sorted by `(path, line, rule, message)`; suppressed
    /// ones stay in the list (they appear in SARIF with a suppression).
    pub findings: Vec<AuditFinding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Fns indexed.
    pub fns_indexed: usize,
    /// Call-graph edges resolved.
    pub call_edges: usize,
    /// Baseline entries that matched nothing (warnings, not failures).
    pub stale_suppressions: Vec<String>,
    /// Every `unsafe` site, justified or not (the committed inventory).
    pub unsafe_sites: Vec<UnsafeSite>,
}

impl AuditReport {
    /// Findings the gate counts (not suppressed).
    pub fn unsuppressed(&self) -> impl Iterator<Item = &AuditFinding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// Number of gating findings.
    pub fn unsuppressed_count(&self) -> usize {
        self.unsuppressed().count()
    }

    /// Whether the gate passes (stale suppressions only warn).
    pub fn is_clean(&self) -> bool {
        self.unsuppressed_count() == 0
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "np-audit: {} files, {} fns, {} call edges",
            self.files_scanned, self.fns_indexed, self.call_edges
        );
        for f in &self.findings {
            let mark = if f.suppressed { " (baseline)" } else { "" };
            let _ = writeln!(
                out,
                "  [{}] {}:{} {}{mark}",
                f.rule, f.path, f.line, f.message
            );
        }
        for s in &self.stale_suppressions {
            let _ = writeln!(out, "  warning: {s}");
        }
        let unsafe_unjustified = self
            .unsafe_sites
            .iter()
            .filter(|s| s.justification.is_none())
            .count();
        let _ = writeln!(
            out,
            "  unsafe sites: {} ({} unjustified)",
            self.unsafe_sites.len(),
            unsafe_unjustified
        );
        let n = self.unsuppressed_count();
        if n == 0 {
            let _ = writeln!(out, "audit clean ({} suppressed)", self.findings.len() - n);
        } else {
            let _ = writeln!(out, "audit FAILED: {n} unsuppressed finding(s)");
        }
        out
    }

    /// Deterministic JSON (schema `np-audit/1`).
    pub fn to_json(&self) -> String {
        let suppressed = self.findings.len() - self.unsuppressed_count();
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"version\":\"np-audit/1\",\"files_scanned\":{},\"fns_indexed\":{},\
             \"call_edges\":{},\"unsuppressed\":{},\"suppressed\":{suppressed},\"findings\":[",
            self.files_scanned,
            self.fns_indexed,
            self.call_edges,
            self.unsuppressed_count()
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\",\
                 \"suppressed\":{}}}",
                escape_json(f.rule),
                escape_json(&f.path),
                f.line,
                escape_json(&f.message),
                f.suppressed
            );
        }
        out.push_str("],\"stale_suppressions\":[");
        for (i, s) in self.stale_suppressions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", escape_json(s));
        }
        out.push_str("],\"unsafe_sites\":[");
        for (i, s) in self.unsafe_sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"path\":\"{}\",\"line\":{},\"justified\":{}}}",
                escape_json(&s.path),
                s.line,
                s.justification.is_some()
            );
        }
        out.push_str("]}");
        out
    }

    /// SARIF 2.1.0 output (see [`sarif`]).
    pub fn to_sarif(&self) -> String {
        sarif::to_sarif(self)
    }

    /// The committed unsafe-inventory markdown (`UNSAFE_INVENTORY.md`).
    pub fn inventory_markdown(&self) -> String {
        let mut out = String::from(
            "# Unsafe inventory\n\n\
             Generated by `np audit --inventory`; CI regenerates and diffs this\n\
             file, so every new `unsafe` block must land here together with its\n\
             `// SAFETY:` justification.\n\n",
        );
        if self.unsafe_sites.is_empty() {
            out.push_str("No `unsafe` code in the workspace.\n");
            return out;
        }
        out.push_str("| Site | Context | Justification |\n|---|---|---|\n");
        for s in &self.unsafe_sites {
            let just = s.justification.as_deref().unwrap_or("**MISSING**");
            let clean = |t: &str| t.replace('|', "\\|").replace('`', "'");
            let _ = writeln!(
                out,
                "| {}:{} | `{}` | {} |",
                s.path,
                s.line,
                clean(&s.context),
                clean(just)
            );
        }
        out
    }
}

/// Audits in-memory `(path, source)` pairs (the callers: the workspace
/// walk below, fixtures in tests, seeded temp trees in the CLI tests).
pub fn audit_sources(sources: &[(String, String)], baseline: &Baseline) -> AuditReport {
    let ws = WorkspaceIndex::build(sources);
    let graph = CallGraph::build(&ws);

    let mut findings = Vec::new();
    rules::lock_order(&ws, &graph, &mut findings);
    rules::condvar(&ws, &mut findings);
    rules::atomics(&ws, &mut findings);
    rules::hot_path(&ws, &mut findings);
    let unsafe_sites = rules::unsafe_safety(&ws, &mut findings);
    rules::panic_reachable(&ws, &graph, &mut findings);

    // Inline waivers: `// audit:allow(<rule>)` on the offending line.
    let by_path: BTreeMap<&str, usize> = ws
        .files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.path.as_str(), i))
        .collect();
    findings.retain(|f| {
        by_path
            .get(f.path.as_str())
            .map(|&fi| &ws.files[fi])
            .filter(|file| f.line >= 1 && f.line <= file.lexed.len())
            .is_none_or(|file| !marker_allows(file.lexed.raw(f.line - 1), "audit", f.rule))
    });

    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    findings.dedup();

    let mut report = AuditReport {
        findings,
        files_scanned: ws.files.len(),
        fns_indexed: ws.fn_count(),
        call_edges: graph.edge_count,
        stale_suppressions: Vec::new(),
        unsafe_sites,
    };
    report.stale_suppressions = baseline.apply(&mut report.findings);
    report
}

/// Audits the workspace rooted at `root`: the same file set as
/// `np lint` — `src/` and `crates/*/src/`, vendored shims excluded,
/// sorted paths.
pub fn audit_workspace(root: &Path, baseline: &Baseline) -> std::io::Result<AuditReport> {
    let sources = crate::lint::workspace_sources(root)?;
    Ok(audit_sources(&sources, baseline))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(files: &[(&str, &str)]) -> Vec<(String, String)> {
        files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect()
    }

    #[test]
    fn clean_sources_audit_clean() {
        let report = audit_sources(
            &src(&[(
                "crates/a/src/lib.rs",
                "pub fn add(a: u32, b: u32) -> u32 { a + b }\n",
            )]),
            &Baseline::empty(),
        );
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.files_scanned, 1);
        assert_eq!(report.fns_indexed, 1);
    }

    #[test]
    fn inline_allow_waives_a_finding() {
        let bad = "fn f(cv: &std::sync::Condvar, g: std::sync::MutexGuard<u32>) {\n    \
                   let _g = cv.wait(g);\n}\n";
        let allowed = "fn f(cv: &std::sync::Condvar, g: std::sync::MutexGuard<u32>) {\n    \
                       let _g = cv.wait(g); // audit:allow(condvar-discipline)\n}\n";
        let r1 = audit_sources(&src(&[("crates/a/src/lib.rs", bad)]), &Baseline::empty());
        assert_eq!(r1.unsuppressed_count(), 1, "{}", r1.render());
        let r2 = audit_sources(
            &src(&[("crates/a/src/lib.rs", allowed)]),
            &Baseline::empty(),
        );
        assert!(r2.is_clean(), "{}", r2.render());
    }

    #[test]
    fn json_is_deterministic_and_versioned() {
        let files = src(&[(
            "crates/a/src/lib.rs",
            "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n",
        )]);
        let a = audit_sources(&files, &Baseline::empty());
        let b = audit_sources(&files, &Baseline::empty());
        assert_eq!(a.to_json(), b.to_json(), "byte-identical across runs");
        assert!(a.to_json().starts_with("{\"version\":\"np-audit/1\""));
        assert_eq!(a.unsafe_sites.len(), 1);
        assert!(a.inventory_markdown().contains("**MISSING**"));
    }

    #[test]
    fn baseline_suppression_gates_only_new_findings() {
        let files = src(&[(
            "crates/a/src/lib.rs",
            "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n",
        )]);
        let baseline = Baseline::parse(
            r#"{"version": "np-audit-baseline/1", "suppressions": [
                {"rule": "unsafe-safety", "path": "crates/a/src/lib.rs",
                 "contains": "", "reason": "fixture"}]}"#,
        )
        .unwrap();
        let report = audit_sources(&files, &baseline);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.findings.len(), 1, "finding kept, marked suppressed");
        assert!(report.findings[0].suppressed);
        assert!(report.render().contains("(baseline)"));
    }
}
