//! The committed baseline-suppression file.
//!
//! `np audit` gates on **new** findings only: legacy findings a PR cannot
//! reasonably fix are recorded in `audit-baseline.json` (schema
//! `np-audit-baseline/1`) and matched by `{rule, path, contains}`. A
//! suppression that matches nothing is *stale* and reported as a warning
//! so the file shrinks as debt is paid down — it never silently grows
//! meaning. The parser is a minimal hand-rolled JSON reader (the
//! workspace is dependency-free); it accepts exactly the flat shape the
//! schema defines and rejects anything else with a position-carrying
//! error.

use super::AuditFinding;

/// The baseline schema version this build reads.
pub const BASELINE_VERSION: &str = "np-audit-baseline/1";

/// One suppression entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Suppression {
    /// Rule id the suppression applies to (must match exactly).
    pub rule: String,
    /// Workspace-relative path (must match exactly).
    pub path: String,
    /// Substring the finding message must contain (empty = any message).
    pub contains: String,
    /// Why the finding is tolerated — for humans, never matched.
    pub reason: String,
}

impl Suppression {
    /// Whether this entry suppresses `f`.
    pub fn matches(&self, f: &AuditFinding) -> bool {
        self.rule == f.rule
            && self.path == f.path
            && (self.contains.is_empty() || f.message.contains(&self.contains))
    }
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Suppressions in file order.
    pub entries: Vec<Suppression>,
}

impl Baseline {
    /// The empty baseline (used when no file is given).
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Parses the `np-audit-baseline/1` JSON document.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let top = json::parse(text)?;
        let obj = top
            .as_obj()
            .ok_or("baseline: top level must be an object")?;
        let version = obj
            .iter()
            .find(|(k, _)| k == "version")
            .and_then(|(_, v)| v.as_str())
            .ok_or("baseline: missing string field `version`")?;
        if version != BASELINE_VERSION {
            return Err(format!(
                "baseline: unsupported version `{version}` (this build reads {BASELINE_VERSION})"
            ));
        }
        let list = obj
            .iter()
            .find(|(k, _)| k == "suppressions")
            .and_then(|(_, v)| v.as_arr())
            .ok_or("baseline: missing array field `suppressions`")?;
        let mut entries = Vec::with_capacity(list.len());
        for (i, item) in list.iter().enumerate() {
            let fields = item
                .as_obj()
                .ok_or_else(|| format!("baseline: suppression #{i} is not an object"))?;
            let mut s = Suppression::default();
            for (k, v) in fields {
                let val = v
                    .as_str()
                    .ok_or_else(|| format!("baseline: suppression #{i} field `{k}` not a string"))?
                    .to_string();
                match k.as_str() {
                    "rule" => s.rule = val,
                    "path" => s.path = val,
                    "contains" => s.contains = val,
                    "reason" => s.reason = val,
                    other => {
                        return Err(format!(
                            "baseline: suppression #{i} unknown field `{other}`"
                        ))
                    }
                }
            }
            if s.rule.is_empty() || s.path.is_empty() {
                return Err(format!(
                    "baseline: suppression #{i} needs non-empty `rule` and `path`"
                ));
            }
            entries.push(s);
        }
        Ok(Baseline { entries })
    }

    /// Marks matched findings suppressed and returns a description of each
    /// stale (never-matched) entry, in file order.
    pub fn apply(&self, findings: &mut [AuditFinding]) -> Vec<String> {
        let mut used = vec![false; self.entries.len()];
        for f in findings.iter_mut() {
            for (i, s) in self.entries.iter().enumerate() {
                if s.matches(f) {
                    f.suppressed = true;
                    used[i] = true;
                }
            }
        }
        self.entries
            .iter()
            .zip(&used)
            .filter(|(_, &u)| !u)
            .map(|(s, _)| {
                format!(
                    "stale suppression: rule={} path={} contains={:?} ({})",
                    s.rule, s.path, s.contains, s.reason
                )
            })
            .collect()
    }
}

/// The minimal JSON subset reader the baseline needs: objects, arrays,
/// strings (with escapes), and skip-parsing for numbers/bools/null.
mod json {
    pub enum Val {
        Str(String),
        Arr(Vec<Val>),
        Obj(Vec<(String, Val)>),
        Other,
    }

    impl Val {
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Val::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_arr(&self) -> Option<&[Val]> {
            match self {
                Val::Arr(v) => Some(v),
                _ => None,
            }
        }
        pub fn as_obj(&self) -> Option<&[(String, Val)]> {
            match self {
                Val::Obj(v) => Some(v),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Val, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let val = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("baseline: trailing content at byte {pos}"));
        }
        Ok(val)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && b[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Val, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Val::Str(string(b, pos)?)),
            Some(_) => {
                // number / true / false / null — skipped, shape-checked only
                while *pos < b.len() && !b",]}\t\n\r ".contains(&b[*pos]) {
                    *pos += 1;
                }
                Ok(Val::Other)
            }
            None => Err("baseline: unexpected end of input".to_string()),
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Val, String> {
        *pos += 1; // consume `{`
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Val::Obj(out));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("baseline: expected `:` at byte {pos}"));
            }
            *pos += 1;
            out.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Val::Obj(out));
                }
                _ => return Err(format!("baseline: expected `,` or `}}` at byte {pos}")),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Val, String> {
        *pos += 1; // consume `[`
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Val::Arr(out));
        }
        loop {
            out.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Val::Arr(out));
                }
                _ => return Err(format!("baseline: expected `,` or `]` at byte {pos}")),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("baseline: expected string at byte {pos}"));
        }
        *pos += 1;
        let start = *pos;
        let mut out = Vec::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return String::from_utf8(out)
                        .map_err(|_| format!("baseline: invalid UTF-8 in string at byte {start}"));
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'n') => out.push(b'\n'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("baseline: bad \\u escape at byte {pos}"))?;
                            let c = char::from_u32(hex).unwrap_or('\u{fffd}');
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            *pos += 4;
                        }
                        _ => return Err(format!("baseline: bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                c => {
                    out.push(c);
                    *pos += 1;
                }
            }
        }
        Err(format!("baseline: unterminated string from byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, message: &str) -> AuditFinding {
        AuditFinding {
            rule,
            path: path.to_string(),
            line: 1,
            message: message.to_string(),
            suppressed: false,
        }
    }

    #[test]
    fn parses_and_applies_suppressions() {
        let text = r#"{
  "version": "np-audit-baseline/1",
  "suppressions": [
    {"rule": "no-panic-reachable", "path": "crates/x/src/lib.rs",
     "contains": "unwrap", "reason": "legacy; tracked"}
  ]
}"#;
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.entries.len(), 1);
        let mut findings = vec![
            finding(
                "no-panic-reachable",
                "crates/x/src/lib.rs",
                "`.unwrap()` here",
            ),
            finding(
                "no-panic-reachable",
                "crates/y/src/lib.rs",
                "`.unwrap()` there",
            ),
        ];
        let stale = b.apply(&mut findings);
        assert!(stale.is_empty());
        assert!(findings[0].suppressed);
        assert!(!findings[1].suppressed);
    }

    #[test]
    fn unmatched_entries_are_stale() {
        let text = r#"{"version": "np-audit-baseline/1", "suppressions": [
            {"rule": "lock-order", "path": "gone.rs", "contains": "", "reason": "was fixed"}]}"#;
        let b = Baseline::parse(text).unwrap();
        let mut findings = vec![finding("lock-order", "still.rs", "cycle")];
        let stale = b.apply(&mut findings);
        assert_eq!(stale.len(), 1);
        assert!(stale[0].contains("gone.rs"));
    }

    #[test]
    fn rejects_wrong_version_and_shape() {
        assert!(
            Baseline::parse(r#"{"version": "np-audit-baseline/9", "suppressions": []}"#)
                .unwrap_err()
                .contains("unsupported version")
        );
        assert!(Baseline::parse(r#"{"version": "np-audit-baseline/1"}"#).is_err());
        assert!(Baseline::parse(
            r#"{"version": "np-audit-baseline/1", "suppressions": [{"rule": "r"}]}"#
        )
        .unwrap_err()
        .contains("non-empty"));
        assert!(Baseline::parse("[1, 2]").is_err());
        assert!(Baseline::parse("{\"a\": \"b\"} trailing").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let text = r#"{"version": "np-audit-baseline/1", "suppressions": [
            {"rule": "condvar-discipline", "path": "a.rs",
             "contains": "say \"hi\"\nA", "reason": "x"}]}"#;
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.entries[0].contains, "say \"hi\"\nA");
    }

    #[test]
    fn empty_contains_matches_any_message() {
        let s = Suppression {
            rule: "lock-order".to_string(),
            path: "a.rs".to_string(),
            contains: String::new(),
            reason: String::new(),
        };
        assert!(s.matches(&finding("lock-order", "a.rs", "anything")));
        assert!(!s.matches(&finding("lock-order", "b.rs", "anything")));
    }
}
