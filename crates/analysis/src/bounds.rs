//! Static event-bound analysis: the static half of the paper's
//! code-to-indicator step.
//!
//! For a `(Program, MachineConfig)` pair this pass computes, per hardware
//! indicator, a **sound envelope** `[min, max]` that every dynamic count
//! from `np_simulator::engine` must fall into, for every seed. Bounds are
//! derived from program structure alone: retirement counts are exact,
//! placement-dependent events (local/remote DRAM) come from
//! `AllocPolicy` × thread pinning, dTLB bounds from per-flush-segment
//! working sets against the set-associative TLB geometry, and
//! noise-dependent events (interrupts, cycles) from a fixed-point over the
//! timer-interrupt feedback loop. Where the microarchitectural state space
//! makes a tight bound unsound (cache hit ratios, queueing), the envelope
//! is deliberately loose rather than wrong — the differential tests in
//! this crate and the workspace run the engine inside the envelope on
//! every CI pass, so any drift between this model and `engine.rs`
//! accounting fails the suite.
//!
//! Cost/occupancy constants (reserve = 150 instructions + 600 cycles per
//! page, release = 50/200, TLB-shootdown = 200 cycles, barrier release
//! = +100 cycles, prefetch degree = 2) mirror `engine.rs`.

use std::collections::{HashMap, HashSet};

use np_simulator::config::MachineConfig;
use np_simulator::event::HwEvent;
use np_simulator::program::{Op, Program};
use np_simulator::tlb::Tlb;

/// Inclusive lower / upper bound on one event's machine-wide total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventBound {
    /// Smallest total any run can produce.
    pub min: u64,
    /// Largest total any run can produce; `None` when no finite static
    /// bound exists (timer interrupts can outpace forward progress).
    pub max: Option<u64>,
}

impl EventBound {
    fn exact(v: u64) -> Self {
        EventBound {
            min: v,
            max: Some(v),
        }
    }

    fn range(min: u64, max: u64) -> Self {
        EventBound {
            min,
            max: Some(max),
        }
    }

    /// Whether an observed total falls inside the envelope.
    pub fn contains(&self, observed: u64) -> bool {
        observed >= self.min && self.max.is_none_or(|m| observed <= m)
    }
}

impl std::fmt::Display for EventBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.max {
            Some(m) if m == self.min => write!(f, "= {m}"),
            Some(m) => write!(f, "[{}, {m}]", self.min),
            None => write!(f, "[{}, ∞)", self.min),
        }
    }
}

/// Static envelopes for every bounded event, plus the wall-clock bound.
#[derive(Debug, Clone)]
pub struct StaticBounds {
    bounds: [Option<EventBound>; HwEvent::COUNT],
    /// Bound on `RunResult::cycles` (the slowest thread's clock).
    pub wall_cycles: EventBound,
}

impl StaticBounds {
    /// The envelope for `event`, if this pass derives one.
    pub fn get(&self, event: HwEvent) -> Option<EventBound> {
        self.bounds[event.index()]
    }

    /// Iterates `(event, bound)` in `HwEvent::ALL` order.
    pub fn iter(&self) -> impl Iterator<Item = (HwEvent, EventBound)> + '_ {
        HwEvent::ALL
            .iter()
            .filter_map(move |e| self.bounds[e.index()].map(|b| (*e, b)))
    }

    /// Differential check: every machine-wide total (in `HwEvent::ALL`
    /// order) and the wall clock must fall inside their envelopes. Returns
    /// one message per violation — empty means the run is inside the
    /// static envelope.
    pub fn check(&self, totals: &[u64; HwEvent::COUNT], wall_cycles: u64) -> Vec<String> {
        let mut violations = Vec::new();
        for (event, bound) in self.iter() {
            let observed = totals[event.index()];
            if !bound.contains(observed) {
                violations.push(format!(
                    "{}: observed {} outside static bound {}",
                    event.name(),
                    observed,
                    bound
                ));
            }
        }
        if !self.wall_cycles.contains(wall_cycles) {
            violations.push(format!(
                "wall cycles: observed {} outside static bound {}",
                wall_cycles, self.wall_cycles
            ));
        }
        violations
    }
}

/// Everything the two walks over the op streams accumulate.
#[derive(Debug, Default)]
struct Tally {
    loads: u64,
    stores: u64,
    branches: u64,
    exec_instructions: u64,
    reserve_pages: u64,
    releases: u64,
    barriers: u64,
    /// Cold-start + post-flush compulsory dTLB misses (lower bound).
    dtlb_min: u64,
    /// Conflict-aware dTLB miss upper bound.
    dtlb_max: u64,
    /// Accesses whose page may live on a node other than the accessor's.
    remote_candidates: u64,
    /// Accesses whose page may live on the accessor's own node.
    local_candidates: u64,
    /// First-touch-per-thread-per-line misses (L1 lower bound, prefetch
    /// off).
    distinct_lines_per_thread: u64,
    /// Distinct cache lines touched machine-wide.
    distinct_lines_machine: u64,
    /// Accesses to lines that some *other* thread stores (HITM ceiling).
    hitm_candidates: u64,
    /// Σ over lines of stores(line) × (touching threads − 1).
    invalidation_ceiling: u64,
    /// Σ per-thread serial minimum cost (barriers at +100 each).
    wall_min: u64,
    /// Σ over threads of serial maximum cost, excluding barrier releases.
    work_max: u64,
    /// Σ per-thread minimum clock at the last counter update (the engine
    /// records `Cycles` after every non-barrier op only).
    cycles_event_min: u64,
}

/// Computes sound static bounds for every run of `program` on `config`.
pub fn compute(program: &Program, config: &MachineConfig) -> StaticBounds {
    let tally = walk(program, config);
    assemble(program, config, &tally)
}

/// One event's envelope packaged as a classifier prior: the bound plus a
/// deterministic certainty score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventPrior {
    /// The static envelope for the event.
    pub bound: EventBound,
    /// How much the static pass pins the event down, in per-mille: 1000
    /// for an exact count, falling toward 0 as the envelope widens
    /// relative to its upper end, 0 when no finite upper bound exists.
    pub certainty_pm: u64,
}

impl EventBound {
    /// Where `observed` falls inside the envelope, in per-mille of the
    /// envelope width (clamped to `[0, 1000]`). `None` when the envelope
    /// is unbounded above; an exact envelope reports the midpoint.
    pub fn position_pm(&self, observed: u64) -> Option<u64> {
        let max = self.max?;
        if max <= self.min {
            return Some(500);
        }
        let clamped = observed.clamp(self.min, max);
        Some((clamped - self.min) * 1000 / (max - self.min))
    }

    /// The certainty score of [`EventPrior`]: tight envelopes are
    /// informative priors, wide or unbounded ones are not.
    pub fn certainty_pm(&self) -> u64 {
        match self.max {
            None => 0,
            Some(0) => 1000,
            Some(max) => 1000 - (max - self.min) * 1000 / max,
        }
    }
}

/// The classifier-facing view of the static envelopes.
///
/// `np-patterns` blends these priors into its verdict confidence instead
/// of re-deriving envelopes from the op stream; any other consumer that
/// wants "how sure is the static pass about event X" should use this
/// rather than [`StaticBounds::iter`].
#[derive(Debug, Clone, Default)]
pub struct Priors {
    entries: Vec<(HwEvent, EventPrior)>,
}

impl Priors {
    /// The prior for `event`, if the static pass derives one.
    pub fn get(&self, event: HwEvent) -> Option<EventPrior> {
        self.entries
            .iter()
            .find(|(e, _)| *e == event)
            .map(|(_, p)| *p)
    }

    /// Iterates `(event, prior)` in `HwEvent::ALL` order.
    pub fn iter(&self) -> impl Iterator<Item = (HwEvent, EventPrior)> + '_ {
        self.entries.iter().copied()
    }
}

/// Packages the static envelopes of `program` on `config` as priors.
pub fn priors(program: &Program, config: &MachineConfig) -> Priors {
    let bounds = compute(program, config);
    Priors {
        entries: bounds
            .iter()
            .map(|(event, bound)| {
                (
                    event,
                    EventPrior {
                        bound,
                        certainty_pm: bound.certainty_pm(),
                    },
                )
            })
            .collect(),
    }
}

/// Per-op minimum cost in cycles (barrier = minimum release bump).
fn op_min_cost(op: &Op, config: &MachineConfig) -> u64 {
    let lat = &config.latency;
    let issue = config.core.issue_cost;
    match op {
        Op::Exec(n) => *n as u64 * issue,
        Op::Branch { .. } => issue,
        Op::Reserve(bytes) => bytes.div_ceil(config.page_bytes).max(1) * 600,
        Op::Release(_) => 200,
        Op::TlbFlush => 200,
        Op::Barrier(_) => 100,
        Op::Label(_) => 0,
        Op::Store { .. } => issue,
        Op::Load { addr: _, dependent } => {
            if *dependent {
                // Best case: L1 hit with no page walk; jitter can push DRAM
                // below its base, so include its floor too.
                let dram_floor = jitter_floor(lat.local_dram, config.noise.dram_jitter);
                lat.l1_hit
                    .min(lat.l2_hit)
                    .min(lat.l3_hit)
                    .min(lat.hitm_local)
                    .min(lat.hitm_remote)
                    .min(dram_floor)
            } else {
                // L1 hit = issue; L2 hit = l2_hit; overlapped miss = issue+1.
                issue.min(lat.l2_hit).min(issue + 1)
            }
        }
    }
}

/// Per-op maximum cost in cycles, excluding barrier releases and timer
/// interrupts (both accounted globally). `mem_op_max` is the precomputed
/// worst case of one memory access.
fn op_max_cost(op: &Op, config: &MachineConfig, mem_op_max: u64) -> u64 {
    let issue = config.core.issue_cost;
    match op {
        Op::Exec(n) => *n as u64 * issue,
        Op::Branch { .. } => issue + config.latency.branch_miss_penalty,
        Op::Reserve(bytes) => bytes.div_ceil(config.page_bytes).max(1) * 600,
        Op::Release(_) => 200,
        Op::TlbFlush => 200,
        Op::Barrier(_) | Op::Label(_) => 0,
        Op::Store { .. } | Op::Load { .. } => mem_op_max,
    }
}

/// Conservative floor of a jittered DRAM latency: the engine draws a
/// factor in `[1 − 0.5·rel, 1 + rel)` and rounds, clamping at 1.
fn jitter_floor(base: u64, rel: f64) -> u64 {
    if rel <= 0.0 {
        return base;
    }
    (((base as f64) * (1.0 - 0.5 * rel)).floor() as u64)
        .saturating_sub(1)
        .max(1)
}

/// Conservative ceiling of a jittered DRAM latency.
fn jitter_ceiling(base: u64, rel: f64) -> u64 {
    if rel <= 0.0 {
        return base;
    }
    ((base as f64) * (1.0 + rel)).ceil() as u64 + 1
}

fn walk(program: &Program, config: &MachineConfig) -> Tally {
    let mut t = Tally::default();
    let line_bytes = config.l1d.line_bytes as u64;
    let page_bytes = config.page_bytes;
    let topo = &config.topology;

    // Pass 1 (global): which threads touch / store each line, and which
    // nodes may end up owning each not-yet-pinned (first-touch) page.
    let mut line_touchers: HashMap<u64, HashSet<usize>> = HashMap::new();
    let mut line_writers: HashMap<u64, HashSet<usize>> = HashMap::new();
    let mut line_stores: HashMap<u64, u64> = HashMap::new();
    let mut page_toucher_nodes: HashMap<u64, HashSet<usize>> = HashMap::new();
    for (ti, thread) in program.threads.iter().enumerate() {
        let node = topo.node_of_core(thread.core);
        for op in &thread.ops {
            let (addr, is_store) = match op {
                Op::Load { addr, .. } => (*addr, false),
                Op::Store { addr } => (*addr, true),
                _ => continue,
            };
            let line = addr / line_bytes;
            line_touchers.entry(line).or_default().insert(ti);
            if is_store {
                line_writers.entry(line).or_default().insert(ti);
                *line_stores.entry(line).or_default() += 1;
            }
            let page = addr / page_bytes;
            if program.space.node_of_page(page).is_none() {
                page_toucher_nodes.entry(page).or_default().insert(node);
            }
        }
    }
    t.distinct_lines_machine = line_touchers.len() as u64;
    for (line, stores) in &line_stores {
        let touchers = line_touchers[line].len() as u64;
        t.invalidation_ceiling = t
            .invalidation_ceiling
            .saturating_add(stores.saturating_mul(touchers.saturating_sub(1)));
    }

    // Worst case of a single memory access, for the serial max bound:
    // page walk + RFO + MSHR wait + DRAM under full IMC queueing, each
    // bounded independently of the clock.
    let total_accesses: u64 = program
        .threads
        .iter()
        .flat_map(|th| th.ops.iter())
        .filter(|op| matches!(op, Op::Load { .. } | Op::Store { .. }))
        .count() as u64;
    let lat = &config.latency;
    let prefetch_degree: u64 = if config.prefetch_enabled { 2 } else { 0 };
    let imc_queue_max = total_accesses
        .saturating_mul(1 + prefetch_degree)
        .saturating_add(1)
        .saturating_mul(lat.imc_service);
    let dram_max = jitter_ceiling(
        config.dram_latency(topo.diameter()),
        config.noise.dram_jitter,
    );
    let l_inf = lat
        .page_walk
        .saturating_add(lat.hitm_remote.max(dram_max.saturating_add(imc_queue_max)));
    let mem_op_max = config
        .core
        .issue_cost
        .saturating_add(lat.hitm_remote)
        .saturating_add(l_inf.saturating_mul(3))
        .saturating_add(lat.page_walk);

    // Pass 2 (per thread): counts, dTLB segments, candidates, cost sums.
    for thread in &program.threads {
        let node = topo.node_of_core(thread.core);
        let mut seg_pages: HashSet<u64> = HashSet::new();
        let mut seg_accesses: u64 = 0;
        let mut thread_lines: HashSet<u64> = HashSet::new();
        let mut serial_min: u64 = 0;
        let mut serial_max: u64 = 0;
        let mut last_counter_update: u64 = 0;
        let close_segment = |pages: &mut HashSet<u64>, accesses: &mut u64, t: &mut Tally| {
            let distinct = pages.len() as u64;
            t.dtlb_min += distinct;
            t.dtlb_max +=
                if Tlb::fits_without_evictions(config.core.dtlb_entries, pages.iter().copied()) {
                    distinct
                } else {
                    *accesses
                };
            pages.clear();
            *accesses = 0;
        };
        for op in &thread.ops {
            serial_min += op_min_cost(op, config);
            serial_max = serial_max.saturating_add(op_max_cost(op, config, mem_op_max));
            match op {
                Op::Load { addr, .. } | Op::Store { addr } => {
                    if matches!(op, Op::Store { .. }) {
                        t.stores += 1;
                    } else {
                        t.loads += 1;
                    }
                    seg_pages.insert(addr / page_bytes);
                    seg_accesses += 1;
                    let line = addr / line_bytes;
                    thread_lines.insert(line);
                    let page = addr / page_bytes;
                    match program.space.node_of_page(page) {
                        Some(home) => {
                            if home == node {
                                t.local_candidates += 1;
                            } else {
                                t.remote_candidates += 1;
                            }
                        }
                        None => {
                            // First-touch: any toucher node may win the
                            // race to place the page. The accessor itself
                            // is always a candidate, so the access is never
                            // definitely remote.
                            t.local_candidates += 1;
                            let touchers = &page_toucher_nodes[&page];
                            if touchers.iter().any(|&n| n != node) {
                                t.remote_candidates += 1;
                            }
                        }
                    }
                }
                Op::TlbFlush => close_segment(&mut seg_pages, &mut seg_accesses, &mut t),
                Op::Exec(n) => t.exec_instructions += *n as u64,
                Op::Branch { .. } => t.branches += 1,
                Op::Barrier(_) => t.barriers += 1,
                Op::Reserve(bytes) => {
                    t.reserve_pages += bytes.div_ceil(page_bytes).max(1);
                }
                Op::Release(_) => t.releases += 1,
                Op::Label(_) => {}
            }
            if !matches!(op, Op::Barrier(_)) {
                last_counter_update = serial_min;
            }
        }
        close_segment(&mut seg_pages, &mut seg_accesses, &mut t);
        t.distinct_lines_per_thread += thread_lines.len() as u64;
        t.wall_min = t.wall_min.max(serial_min);
        t.work_max = t.work_max.saturating_add(serial_max);
        t.cycles_event_min += last_counter_update;
    }

    // HITM ceiling: accesses to lines some other thread stores.
    for (ti, thread) in program.threads.iter().enumerate() {
        for op in &thread.ops {
            let addr = match op {
                Op::Load { addr, .. } | Op::Store { addr } => *addr,
                _ => continue,
            };
            if let Some(writers) = line_writers.get(&(addr / line_bytes)) {
                if writers.iter().any(|&w| w != ti) {
                    t.hitm_candidates += 1;
                }
            }
        }
    }
    t
}

fn assemble(program: &Program, config: &MachineConfig, t: &Tally) -> StaticBounds {
    let accesses = t.loads + t.stores;
    let threads = program.threads.len() as u64;
    let total_barriers: u64 = t.barriers;
    let base_instructions =
        accesses + t.exec_instructions + t.branches + 150 * t.reserve_pages + 50 * t.releases;

    // Timer-interrupt fixed point: the machine-wide max clock M satisfies
    // M ≤ work_max + 100·barriers + threads·ic·(M/interval + 1), because
    // every clock advance is one op's cost, one interrupt, or a barrier
    // release chaining to another thread's clock. Solvable only when one
    // interval outlasts one interrupt per thread.
    let noise = &config.noise;
    let base_wall_max = t
        .work_max
        .saturating_add(100u64.saturating_mul(total_barriers));
    let (wall_max, interrupts_max): (Option<u64>, Option<u64>) = if noise.timer_interval == 0 {
        (Some(base_wall_max), Some(0))
    } else {
        let drain = threads.saturating_mul(noise.interrupt_cycles);
        if noise.timer_interval > drain {
            let numer = (base_wall_max.saturating_add(drain)) as f64 * noise.timer_interval as f64;
            let denom = (noise.timer_interval - drain) as f64;
            // Padded for float slop; only an upper bound is needed.
            let m = ((numer / denom) * 1.001) as u64 + 1_000;
            let per_thread_fires = m / noise.timer_interval + 1;
            (Some(m), Some(threads.saturating_mul(per_thread_fires)))
        } else {
            (None, None)
        }
    };
    let cycles_max = wall_max.map(|m| m.saturating_mul(threads));

    let mut bounds: [Option<EventBound>; HwEvent::COUNT] = [None; HwEvent::COUNT];
    let mut set = |e: HwEvent, b: EventBound| bounds[e.index()] = Some(b);

    set(
        HwEvent::Instructions,
        EventBound {
            min: base_instructions,
            max: interrupts_max.map(|i| {
                base_instructions.saturating_add(i.saturating_mul(noise.interrupt_instructions))
            }),
        },
    );
    set(
        HwEvent::Cycles,
        EventBound {
            min: t.cycles_event_min,
            max: cycles_max,
        },
    );
    set(
        HwEvent::StallCycles,
        EventBound {
            min: 0,
            max: cycles_max,
        },
    );
    set(
        HwEvent::MemStallCycles,
        EventBound {
            min: 0,
            max: cycles_max,
        },
    );
    set(
        HwEvent::TimerInterrupt,
        EventBound {
            min: 0,
            max: interrupts_max,
        },
    );

    // Retirement counts are exact: the engine bumps them unconditionally
    // per op, independent of microarchitectural state.
    set(HwEvent::LoadRetired, EventBound::exact(t.loads));
    set(HwEvent::StoreRetired, EventBound::exact(t.stores));
    set(HwEvent::BranchRetired, EventBound::exact(t.branches));
    set(HwEvent::BranchMiss, EventBound::range(0, t.branches));
    set(HwEvent::PipelineFlush, EventBound::range(0, t.branches));
    set(
        HwEvent::SpecJumpsRetired,
        EventBound::range(
            t.branches,
            t.branches.saturating_mul(config.core.spec_window.max(1)),
        ),
    );

    // Exactly one of hit/miss per access; compulsory misses bound from
    // below when no prefetcher can pre-install lines.
    let l1_miss_min = if config.prefetch_enabled {
        0
    } else {
        t.distinct_lines_per_thread
    };
    set(HwEvent::L1dMiss, EventBound::range(l1_miss_min, accesses));
    set(
        HwEvent::L1dHit,
        EventBound::range(0, accesses - l1_miss_min),
    );
    set(HwEvent::L1dEvict, EventBound::range(0, accesses));

    set(HwEvent::L2Hit, EventBound::range(0, accesses));
    set(HwEvent::L2Miss, EventBound::range(0, accesses));
    let prefetch_degree: u64 = if config.prefetch_enabled { 2 } else { 0 };
    set(
        HwEvent::L2PrefetchReq,
        EventBound::range(0, accesses.saturating_mul(prefetch_degree)),
    );
    set(
        HwEvent::L2PrefetchHit,
        EventBound::range(0, if config.prefetch_enabled { accesses } else { 0 }),
    );

    set(HwEvent::L3Access, EventBound::range(0, accesses));
    set(HwEvent::L3Hit, EventBound::range(0, accesses));
    set(
        HwEvent::L3Miss,
        EventBound::range(0, accesses.saturating_mul(1 + prefetch_degree)),
    );

    set(HwEvent::FillBufferAlloc, EventBound::range(0, accesses));
    set(HwEvent::FillBufferReject, EventBound::range(0, accesses));

    // dTLB: cold-start and post-flush first touches must miss; the upper
    // bound is tight (== min) whenever the per-segment working set fits
    // the TLB's sets without conflict evictions. Timer interrupts pollute
    // the L1, never the TLB.
    set(HwEvent::DtlbMiss, EventBound::range(t.dtlb_min, t.dtlb_max));
    set(
        HwEvent::DtlbHit,
        EventBound::range(accesses - t.dtlb_max, accesses - t.dtlb_min),
    );
    set(
        HwEvent::PageWalkCycles,
        EventBound::range(
            t.dtlb_min * config.latency.page_walk,
            t.dtlb_max * config.latency.page_walk,
        ),
    );
    set(
        HwEvent::L1dLocked,
        EventBound::range(t.dtlb_min, t.dtlb_max),
    );

    // NUMA placement: candidates from AllocPolicy × pinning. A prefetcher
    // can pre-install any line, so demand DRAM minima are zero.
    set(
        HwEvent::LocalDramAccess,
        EventBound::range(0, t.local_candidates),
    );
    set(
        HwEvent::RemoteDramAccess,
        EventBound::range(0, t.remote_candidates),
    );

    // Coherence: a HITM needs a line another thread stores; invalidations
    // need sharers, which only touching threads can be.
    set(
        HwEvent::HitmTransfer,
        EventBound::range(0, t.hitm_candidates),
    );
    set(
        HwEvent::CoherenceInvalidation,
        EventBound::range(0, t.invalidation_ceiling),
    );
    set(
        HwEvent::SnoopRequest,
        EventBound::range(0, t.invalidation_ceiling.saturating_add(t.hitm_candidates)),
    );

    // Uncore: the first machine-wide fetch of every accessed line pays an
    // IMC read (demand or prefetch); HITM downgrades and dirty L2
    // evictions bound the writes.
    set(
        HwEvent::ImcRead,
        EventBound::range(
            t.distinct_lines_machine,
            accesses.saturating_mul(1 + prefetch_degree),
        ),
    );
    set(
        HwEvent::ImcWrite,
        EventBound::range(0, t.loads.saturating_add(accesses)),
    );

    // QPI: remote HITMs need threads on more than one node; remote DRAM
    // needs a remote-capable page.
    let span_multi = {
        let topo = &config.topology;
        let mut nodes: HashSet<usize> = HashSet::new();
        for th in &program.threads {
            nodes.insert(topo.node_of_core(th.core));
        }
        nodes.len() > 1
    };
    let qpi_hitm = if span_multi { t.hitm_candidates } else { 0 };
    set(
        HwEvent::QpiTransfer,
        EventBound::range(0, qpi_hitm.saturating_add(t.remote_candidates)),
    );

    StaticBounds {
        bounds,
        wall_cycles: EventBound {
            min: t.wall_min,
            max: wall_max,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_simulator::program::ProgramBuilder;
    use np_simulator::topology::Topology;
    use np_simulator::{AllocPolicy, MachineSim};

    fn quiet_config() -> MachineConfig {
        let mut c = MachineConfig::two_socket_small();
        c.noise.timer_interval = 0;
        c.noise.dram_jitter = 0.0;
        c
    }

    fn check_run(program: &Program, config: &MachineConfig, seeds: &[u64]) -> StaticBounds {
        let bounds = compute(program, config);
        let sim = MachineSim::new(config.clone());
        for &seed in seeds {
            let result = sim.run(program, seed).expect("valid program");
            let violations = bounds.check(&result.counters.totals(), result.cycles);
            assert!(
                violations.is_empty(),
                "seed {seed}: {}",
                violations.join("; ")
            );
        }
        bounds
    }

    use np_simulator::program::Program;

    #[test]
    fn retirement_counts_are_exact() {
        let cfg = quiet_config();
        let mut b = ProgramBuilder::new(&cfg.topology, cfg.page_bytes);
        let buf = b.alloc(1 << 16, AllocPolicy::FirstTouch);
        let t0 = b.add_thread(0);
        for i in 0..100u64 {
            b.load(t0, buf + i * 8);
            b.store(t0, buf + i * 8);
        }
        b.exec(t0, 40);
        b.branch(t0, 1, true);
        let p = b.build();
        let bounds = check_run(&p, &cfg, &[1, 2, 3]);
        assert_eq!(
            bounds.get(HwEvent::LoadRetired).unwrap(),
            EventBound::exact(100)
        );
        assert_eq!(
            bounds.get(HwEvent::StoreRetired).unwrap(),
            EventBound::exact(100)
        );
        assert_eq!(
            bounds.get(HwEvent::Instructions).unwrap(),
            EventBound::exact(100 + 100 + 40 + 1)
        );
    }

    #[test]
    fn bind_remote_accesses_are_candidates() {
        let cfg = quiet_config();
        let mut b = ProgramBuilder::new(&cfg.topology, cfg.page_bytes);
        // Thread on node 0, buffer bound to node 1: all remote candidates.
        let buf = b.alloc(1 << 14, AllocPolicy::Bind(1));
        let t0 = b.add_thread(0);
        for i in 0..50u64 {
            b.load_dependent(t0, buf + i * 4096 % (1 << 14));
        }
        let p = b.build();
        let bounds = check_run(&p, &cfg, &[1, 7]);
        assert_eq!(
            bounds.get(HwEvent::LocalDramAccess).unwrap().max,
            Some(0),
            "node-1-bound pages can never be local to a node-0 thread"
        );
        assert_eq!(bounds.get(HwEvent::RemoteDramAccess).unwrap().max, Some(50));
    }

    #[test]
    fn single_thread_first_touch_is_never_remote() {
        let cfg = quiet_config();
        let mut b = ProgramBuilder::new(&cfg.topology, cfg.page_bytes);
        let buf = b.alloc(1 << 14, AllocPolicy::FirstTouch);
        let t0 = b.add_thread(0);
        for i in 0..32u64 {
            b.load(t0, buf + i * 512);
        }
        let p = b.build();
        let bounds = check_run(&p, &cfg, &[1]);
        assert_eq!(bounds.get(HwEvent::RemoteDramAccess).unwrap().max, Some(0));
    }

    #[test]
    fn tlb_flush_forces_compulsory_misses() {
        let cfg = quiet_config();
        let mut b = ProgramBuilder::new(&cfg.topology, cfg.page_bytes);
        let buf = b.alloc(8 * 4096, AllocPolicy::FirstTouch);
        let t0 = b.add_thread(0);
        for round in 0..3 {
            for p in 0..8u64 {
                b.load(t0, buf + p * 4096);
            }
            if round < 2 {
                b.tlb_flush(t0);
            }
        }
        let p = b.build();
        let bounds = check_run(&p, &cfg, &[1, 5]);
        // 8 pages × 3 flush segments, conflict-free → exact.
        assert_eq!(
            bounds.get(HwEvent::DtlbMiss).unwrap(),
            EventBound::exact(24)
        );
    }

    #[test]
    fn single_node_machine_has_no_remote_traffic() {
        let mut cfg = quiet_config();
        cfg.topology = Topology::fully_interconnected(1, 4, 1 << 30);
        let mut b = ProgramBuilder::new(&cfg.topology, cfg.page_bytes);
        let buf = b.alloc(1 << 14, AllocPolicy::Interleave);
        let t0 = b.add_thread(0);
        let t1 = b.add_thread(1);
        for i in 0..64u64 {
            b.store(t0, buf + i * 64);
            b.load(t1, buf + i * 64);
        }
        let p = b.build();
        let bounds = check_run(&p, &cfg, &[1, 2]);
        assert_eq!(bounds.get(HwEvent::RemoteDramAccess).unwrap().max, Some(0));
        assert_eq!(bounds.get(HwEvent::QpiTransfer).unwrap().max, Some(0));
    }

    #[test]
    fn noisy_machine_stays_inside_envelope() {
        // Default noise (timer + jitter) still lands inside the bounds.
        let cfg = MachineConfig::two_socket_small();
        let mut b = ProgramBuilder::new(&cfg.topology, cfg.page_bytes);
        let buf = b.alloc(1 << 18, AllocPolicy::Interleave);
        let t0 = b.add_thread(0);
        let t1 = b.add_thread(4);
        for i in 0..2_000u64 {
            b.load(t0, buf + (i * 64) % (1 << 18));
            b.store(t1, buf + (i * 128) % (1 << 18));
            if i % 500 == 0 {
                b.barrier(t0, (i / 500) as u32);
                b.barrier(t1, (i / 500) as u32);
            }
        }
        let p = b.build();
        let bounds = check_run(&p, &cfg, &[1, 2, 3, 4]);
        assert!(bounds.get(HwEvent::Instructions).unwrap().max.is_some());
        assert!(bounds.wall_cycles.max.is_some());
    }

    #[test]
    fn pathological_interrupt_rate_yields_unbounded_max() {
        let mut cfg = quiet_config();
        cfg.noise.timer_interval = 10; // far below threads × interrupt_cycles
        let mut b = ProgramBuilder::new(&cfg.topology, cfg.page_bytes);
        let buf = b.alloc(4096, AllocPolicy::FirstTouch);
        let t0 = b.add_thread(0);
        b.load(t0, buf);
        let p = b.build();
        let bounds = compute(&p, &cfg);
        assert_eq!(bounds.get(HwEvent::Instructions).unwrap().max, None);
        assert_eq!(bounds.wall_cycles.max, None);
        // Retirement stays exact even in the unbounded-noise regime.
        assert_eq!(
            bounds.get(HwEvent::LoadRetired).unwrap(),
            EventBound::exact(1)
        );
    }

    #[test]
    fn prior_certainty_tracks_envelope_tightness() {
        assert_eq!(EventBound::exact(42).certainty_pm(), 1000);
        assert_eq!(EventBound::range(900, 1000).certainty_pm(), 900);
        assert_eq!(EventBound::range(0, 1000).certainty_pm(), 0);
        assert_eq!(EventBound { min: 5, max: None }.certainty_pm(), 0);
    }

    #[test]
    fn prior_position_is_clamped_per_mille() {
        let b = EventBound::range(100, 200);
        assert_eq!(b.position_pm(100), Some(0));
        assert_eq!(b.position_pm(150), Some(500));
        assert_eq!(b.position_pm(200), Some(1000));
        assert_eq!(b.position_pm(9999), Some(1000), "clamped above");
        assert_eq!(b.position_pm(3), Some(0), "clamped below");
        assert_eq!(EventBound::exact(7).position_pm(7), Some(500));
        assert_eq!(EventBound { min: 0, max: None }.position_pm(1), None);
    }

    #[test]
    fn priors_match_the_underlying_envelopes() {
        let cfg = quiet_config();
        let mut b = ProgramBuilder::new(&cfg.topology, cfg.page_bytes);
        let buf = b.alloc(64 * 1024, AllocPolicy::FirstTouch);
        let t0 = b.add_thread(0);
        for i in 0..64u64 {
            b.load(t0, buf + i * 64);
        }
        let p = b.build();
        let pri = priors(&p, &cfg);
        let bounds = compute(&p, &cfg);
        for (event, bound) in bounds.iter() {
            let prior = pri.get(event).expect("every bounded event has a prior");
            assert_eq!(prior.bound, bound);
            assert_eq!(prior.certainty_pm, bound.certainty_pm());
        }
        // Exact retirement envelope: a fully certain prior.
        assert_eq!(pri.get(HwEvent::LoadRetired).unwrap().certainty_pm, 1000);
        assert_eq!(pri.iter().count(), bounds.iter().count());
    }
}
