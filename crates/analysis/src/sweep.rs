//! Fan-out of the static analysis over many programs.
//!
//! The differential-envelope check (`np analyze --all`) runs every static
//! pass over every built-in workload. Each [`analyze`](crate::analyze)
//! call is a pure function of `(program, config)`, so the sweep is
//! embarrassingly parallel; [`analyze_many`] fans it across an np-parallel
//! pool and hands back one [`ProgramAnalysis`] per input, **in input
//! order** — bit-identical to a sequential loop at any thread count.

use crate::ProgramAnalysis;
use np_simulator::config::MachineConfig;
use np_simulator::program::Program;

/// Analyzes every `(name, program)` pair on `pool`, preserving input
/// order. The names ride along untouched so callers can report findings
/// without re-zipping.
pub fn analyze_many<'a>(
    programs: &'a [(String, Program)],
    config: &MachineConfig,
    pool: &np_parallel::Pool,
) -> Vec<(&'a str, ProgramAnalysis)> {
    pool.run(programs.len(), |i| {
        let (name, program) = &programs[i];
        (name.as_str(), crate::analyze(program, config))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_simulator::program::ProgramBuilder;
    use np_simulator::AllocPolicy;

    fn programs(config: &MachineConfig) -> Vec<(String, Program)> {
        let mut out = Vec::new();
        // A clean barrier pair, a racy pair, and a single-thread scan.
        let mut clean = ProgramBuilder::new(&config.topology, config.page_bytes);
        let buf = clean.alloc(1 << 14, AllocPolicy::Interleave);
        let t0 = clean.add_thread(0);
        let t1 = clean.add_thread(4);
        clean.store(t0, buf);
        clean.barrier(t0, 1);
        clean.barrier(t1, 1);
        clean.load(t1, buf);
        out.push(("clean".to_string(), clean.build()));

        let mut racy = ProgramBuilder::new(&config.topology, config.page_bytes);
        let rbuf = racy.alloc(4096, AllocPolicy::FirstTouch);
        let r0 = racy.add_thread(0);
        let r1 = racy.add_thread(1);
        racy.store(r0, rbuf);
        racy.store(r1, rbuf);
        out.push(("racy".to_string(), racy.build()));

        let mut scan = ProgramBuilder::new(&config.topology, config.page_bytes);
        let sbuf = scan.alloc(1 << 16, AllocPolicy::Bind(0));
        let st = scan.add_thread(0);
        for i in 0..64u64 {
            scan.load(st, sbuf + i * 64);
        }
        out.push(("scan".to_string(), scan.build()));
        out
    }

    #[test]
    fn sweep_preserves_order_and_matches_serial() {
        let config = MachineConfig::two_socket_small();
        let progs = programs(&config);
        let serial: Vec<ProgramAnalysis> = progs
            .iter()
            .map(|(_, p)| crate::analyze(p, &config))
            .collect();
        for threads in [1, 2, 8] {
            let pool = np_parallel::Pool::new(threads);
            let swept = analyze_many(&progs, &config, &pool);
            assert_eq!(swept.len(), progs.len(), "{threads} threads");
            for ((name, a), (s, (expect_name, _))) in swept.iter().zip(serial.iter().zip(&progs)) {
                assert_eq!(*name, expect_name.as_str(), "{threads} threads");
                assert_eq!(a.is_clean(), s.is_clean());
                assert_eq!(a.block_count, s.block_count);
                assert_eq!(a.races.len(), s.races.len());
                assert_eq!(format!("{:?}", a.bounds), format!("{:?}", s.bounds));
            }
        }
    }
}
