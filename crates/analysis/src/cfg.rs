//! Per-thread control-flow graphs over the sim IR.
//!
//! The IR ([`Op`]) has no jumps — `Branch` records a predicted direction
//! but both outcomes fall through — so each thread's CFG is a straight
//! chain of basic blocks. Blocks are still worth cutting: barriers are the
//! only synchronisation edges (the race detector numbers supersteps by
//! them), branches are the only speculation points, and labels delimit the
//! source regions the annotate tool attributes events to. Every other
//! analysis in this crate walks these blocks rather than raw op vectors.

use np_simulator::program::{Op, Program};
use np_simulator::topology::CoreId;

/// A maximal straight-line run of ops, plus the op that terminated it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Index of the first straight-line op.
    pub start: usize,
    /// One past the last straight-line op (== index of the terminator when
    /// there is one).
    pub end: usize,
    /// Index of the `Barrier`/`Branch`/`Label` op ending the block, if the
    /// block was not ended by the end of the thread.
    pub terminator: Option<usize>,
}

impl Block {
    /// The ops of this block (terminator excluded), out of `ops`.
    pub fn ops<'a>(&self, ops: &'a [Op]) -> &'a [Op] {
        &ops[self.start..self.end]
    }
}

/// The CFG of one thread: a chain of blocks (block `i` falls through to
/// block `i + 1`) and the thread's barrier trace.
#[derive(Debug, Clone)]
pub struct ThreadCfg {
    /// The core the thread is pinned to.
    pub core: CoreId,
    /// Blocks in program order, tiling the whole op stream.
    pub blocks: Vec<Block>,
    /// `(op index, barrier id)` for every `Barrier` op, in program order.
    pub barrier_seq: Vec<(usize, u32)>,
}

/// CFGs for every thread of a program.
#[derive(Debug, Clone)]
pub struct ProgramCfg {
    /// One CFG per thread, same order as `Program::threads`.
    pub threads: Vec<ThreadCfg>,
}

impl ProgramCfg {
    /// Segments `program` into per-thread basic blocks.
    pub fn build(program: &Program) -> Self {
        let threads = program
            .threads
            .iter()
            .map(|t| {
                let mut blocks = Vec::new();
                let mut barrier_seq = Vec::new();
                let mut start = 0usize;
                for (i, op) in t.ops.iter().enumerate() {
                    let is_boundary = match op {
                        Op::Barrier(id) => {
                            barrier_seq.push((i, *id));
                            true
                        }
                        Op::Branch { .. } | Op::Label(_) => true,
                        _ => false,
                    };
                    if is_boundary {
                        blocks.push(Block {
                            start,
                            end: i,
                            terminator: Some(i),
                        });
                        start = i + 1;
                    }
                }
                if start < t.ops.len() || blocks.is_empty() {
                    blocks.push(Block {
                        start,
                        end: t.ops.len(),
                        terminator: None,
                    });
                }
                ThreadCfg {
                    core: t.core,
                    blocks,
                    barrier_seq,
                }
            })
            .collect();
        ProgramCfg { threads }
    }

    /// Total number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.threads.iter().map(|t| t.blocks.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_simulator::program::ProgramBuilder;
    use np_simulator::topology::Topology;
    use np_simulator::AllocPolicy;

    fn topo() -> Topology {
        Topology::fully_interconnected(2, 4, 1 << 30)
    }

    #[test]
    fn blocks_tile_the_stream_and_record_barriers() {
        let t = topo();
        let mut b = ProgramBuilder::new(&t, 4096);
        let buf = b.alloc(4096, AllocPolicy::Bind(0));
        let th = b.add_thread(0);
        b.load(th, buf);
        b.exec(th, 3);
        b.barrier(th, 7); // op 2
        b.store(th, buf);
        b.branch(th, 1, true); // op 4
        b.load(th, buf + 8);
        let p = b.build();
        let cfg = ProgramCfg::build(&p);
        let tc = &cfg.threads[0];
        assert_eq!(tc.barrier_seq, vec![(2, 7)]);
        assert_eq!(
            tc.blocks,
            vec![
                Block {
                    start: 0,
                    end: 2,
                    terminator: Some(2)
                },
                Block {
                    start: 3,
                    end: 4,
                    terminator: Some(4)
                },
                Block {
                    start: 5,
                    end: 6,
                    terminator: None
                },
            ]
        );
        // The blocks cover every op exactly once.
        let covered: usize = tc
            .blocks
            .iter()
            .map(|bl| bl.end - bl.start + usize::from(bl.terminator.is_some()))
            .sum();
        assert_eq!(covered, p.threads[0].ops.len());
    }

    #[test]
    fn empty_thread_gets_one_empty_block() {
        let t = topo();
        let mut b = ProgramBuilder::new(&t, 4096);
        b.add_thread(0);
        let cfg = ProgramCfg::build(&b.build());
        assert_eq!(cfg.threads[0].blocks.len(), 1);
        assert_eq!(cfg.block_count(), 1);
    }
}
