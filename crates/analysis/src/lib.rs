//! # np-analysis — static code-to-indicator analysis
//!
//! The paper's central move is mapping *code* to *hardware indicators* by
//! running it and reading counters. This crate supplies the static half of
//! that mapping, plus workspace hygiene:
//!
//! - [`cfg`] — per-thread basic-block CFGs over the sim IR.
//! - [`barrier`] — barrier-matching / deadlock detection (sound *and*
//!   complete against the engine's lockstep release rule).
//! - [`race`] — happens-before data-race detection over barrier
//!   supersteps.
//! - [`bounds`] — per-event static envelopes `[min, max]` that every
//!   dynamic run must fall into, validated differentially in CI.
//! - [`lexer`] — the shared blanking lexer (comments/strings/`cfg(test)`
//!   removed) that [`lint`] and [`audit`] both scan over.
//! - [`lint`] — a token-level linter for cross-crate invariants the type
//!   system cannot express (panic-free probe paths, bounded socket reads,
//!   guarded telemetry, no wall clocks in deterministic code).
//! - [`audit`] — the concurrency & determinism static-analysis pass: a
//!   per-file item/fn index and an approximate workspace call graph feed
//!   rules for lock-order cycles, condvar discipline, atomics orderings,
//!   hot-path hygiene, unsafe inventory and panic reachability, gated by
//!   a committed baseline-suppression file (JSON + SARIF output).
//! - [`sweep`] — the analysis fanned over many programs on an np-parallel
//!   pool, in input order (the differential-envelope sweep of `np
//!   analyze --all`).
//!
//! Everything is deterministic; the only dependencies are `np_simulator`
//! (the IR under analysis) and `np_parallel` (the deterministic pool the
//! sweep fans out on).

pub mod audit;
pub mod barrier;
pub mod bounds;
pub mod cfg;
pub mod lexer;
pub mod lint;
pub mod race;
pub mod sweep;

pub use audit::{audit_sources, audit_workspace, AuditFinding, AuditReport, Baseline};
pub use barrier::{check_barriers, DeadlockReport};
pub use bounds::{compute as compute_bounds, priors, EventBound, EventPrior, Priors, StaticBounds};
pub use cfg::{Block, ProgramCfg, ThreadCfg};
pub use lint::{lint_source, lint_workspace, LintFinding, LintReport};
pub use race::{find_races, RaceFinding};
pub use sweep::analyze_many;

use np_simulator::config::MachineConfig;
use np_simulator::program::{Program, ValidateError};

/// The full static analysis of one program on one machine model.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// Structural validation outcome (typed, from `np_simulator`).
    pub validate: Result<(), ValidateError>,
    /// Barrier release order, or the deadlocked frontier.
    pub barriers: Result<Vec<u32>, DeadlockReport>,
    /// Unordered conflicting access pairs.
    pub races: Vec<RaceFinding>,
    /// Static event envelopes.
    pub bounds: StaticBounds,
    /// Basic-block count (program shape, for reports).
    pub block_count: usize,
}

impl ProgramAnalysis {
    /// Whether the program is safe to run: valid, deadlock-free, race-free.
    pub fn is_clean(&self) -> bool {
        self.validate.is_ok() && self.barriers.is_ok() && self.races.is_empty()
    }
}

/// Runs every static pass over `program` for `config`'s machine model.
pub fn analyze(program: &Program, config: &MachineConfig) -> ProgramAnalysis {
    let cfg = ProgramCfg::build(program);
    ProgramAnalysis {
        validate: program.validate(&config.topology),
        barriers: check_barriers(&cfg),
        races: find_races(program, &cfg),
        bounds: bounds::compute(program, config),
        block_count: cfg.block_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_simulator::program::ProgramBuilder;
    use np_simulator::AllocPolicy;

    #[test]
    fn clean_program_passes_every_check() {
        let cfg = MachineConfig::two_socket_small();
        let mut b = ProgramBuilder::new(&cfg.topology, cfg.page_bytes);
        let buf = b.alloc(1 << 14, AllocPolicy::Interleave);
        let t0 = b.add_thread(0);
        let t1 = b.add_thread(4);
        b.store(t0, buf);
        b.barrier(t0, 1);
        b.barrier(t1, 1);
        b.load(t1, buf);
        let analysis = analyze(&b.build(), &cfg);
        assert!(analysis.is_clean());
        assert_eq!(analysis.barriers.unwrap(), vec![1]);
        assert_eq!(analysis.block_count, 3);
    }

    #[test]
    fn racy_program_is_not_clean() {
        let cfg = MachineConfig::two_socket_small();
        let mut b = ProgramBuilder::new(&cfg.topology, cfg.page_bytes);
        let buf = b.alloc(4096, AllocPolicy::FirstTouch);
        let t0 = b.add_thread(0);
        let t1 = b.add_thread(1);
        b.store(t0, buf);
        b.store(t1, buf);
        let analysis = analyze(&b.build(), &cfg);
        assert!(!analysis.is_clean());
        assert_eq!(analysis.races.len(), 1);
    }
}
