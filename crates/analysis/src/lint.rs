//! Token-level workspace invariant linter.
//!
//! The workspace has a handful of cross-crate invariants that `rustc`
//! cannot express and code review keeps re-litigating: probe/acquisition
//! paths must stay panic-free (they run inside fault-injection loops),
//! socket reads must go through the bounded reader, relaxed atomics are a
//! telemetry-internal liberty, telemetry calls on hot paths must be
//! guarded, and deterministic code must not read wall clocks. This module
//! enforces them with a token scan — no `syn`, no `rustc` plumbing, zero
//! dependencies — over the shared blanking lexer in [`crate::lexer`]
//! (comments, string/char literals and `#[cfg(test)]` modules never trip
//! a rule; `np audit` scans the exact same view). A `// lint:allow(rule)`
//! trailer on the offending line silences a single finding with an audit
//! trail.

use crate::lexer::{marker_allows, Lexed};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One rule violation at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (also the `lint:allow(...)` key).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// All findings from one workspace scan.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Findings sorted by (path, line).
    pub findings: Vec<LintFinding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Plain-text rendering, one diagnostic per line plus a summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{f}");
        }
        let _ = write!(
            out,
            "lint: {} finding(s) in {} file(s) scanned",
            self.findings.len(),
            self.files_scanned
        );
        out
    }

    /// JSON rendering (machine-readable CI artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"files_scanned\":");
        let _ = write!(out, "{}", self.files_scanned);
        out.push_str(",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                escape_json(&f.path),
                f.line,
                f.rule,
                escape_json(&f.message)
            );
        }
        out.push_str("]}");
        out
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Files whose non-test code must be panic-free: they sit under the
/// fault-injection and acquisition loops where a panic aborts a whole
/// measurement campaign instead of surfacing a typed error.
pub(crate) const NO_PANIC_FILES: &[&str] = &[
    "crates/core/src/memhist/probe.rs",
    "crates/resilience/src/io.rs",
    "crates/counters/src/acquisition.rs",
    "crates/counters/src/pebs.rs",
];

/// Path prefixes under which *every* file must be panic-free. The whole
/// `np-serve` crate qualifies: a panic on the request path kills a pool
/// worker and silently drops every connection it would have served,
/// where a typed error frame keeps the exchange answering.
pub(crate) const NO_PANIC_PREFIXES: &[&str] = &["crates/serve/src/"];

const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// The one file allowed to call raw socket reads (it defines the bounded
/// line reader everything else must use).
const BOUNDED_READER_FILE: &str = "crates/resilience/src/io.rs";

/// Deterministic paths that must not observe wall clocks: the simulator
/// (seeded reproducibility), the fault plan (seeded schedules), the
/// worker pool (its merge order and traces must never branch on timing;
/// durations flow through `np_telemetry::now_ns` for reporting only),
/// the time-series sampler (captures are timestamped in simulated
/// cycles — a wall-clock read there would break byte-identical
/// captures), `np top` (its pacing comes from `thread::sleep` and
/// the tick counter; rates are deltas of simulated-cycle series), and
/// the `np bench` matrix harness (its determinism contract says every
/// non-sample field is a pure function of config + seed + machine;
/// wall-time samples flow through `np_telemetry::now_ns` only), and the
/// np-patterns classifier (its `np-patterns/1` document promises
/// byte-identical verdicts at any thread count — nothing on the
/// classify path may branch on time).
fn wall_clock_forbidden(path: &str) -> bool {
    path.starts_with("crates/numa-sim/")
        || path.starts_with("crates/parallel/src/")
        || path.starts_with("crates/bench/src/harness/")
        || path.starts_with("crates/patterns/src/")
        || path == "crates/resilience/src/fault.rs"
        || path == "crates/telemetry/src/timeseries.rs"
        || path == "src/cli/top.rs"
}

/// Lints one file's source text. `path` is the workspace-relative path
/// with forward slashes; rule scoping keys off it.
pub fn lint_source(path: &str, source: &str) -> Vec<LintFinding> {
    let lexed = Lexed::new(source);
    let mut findings = Vec::new();

    let no_panic =
        NO_PANIC_FILES.contains(&path) || NO_PANIC_PREFIXES.iter().any(|p| path.starts_with(p));
    let uses_tcp =
        lexed.code_lines.iter().any(|l| l.contains("TcpStream")) && path != BOUNDED_READER_FILE;
    let in_telemetry = path.starts_with("crates/telemetry/");
    let no_wall_clock = wall_clock_forbidden(path);

    let report =
        |findings: &mut Vec<LintFinding>, idx: usize, rule: &'static str, message: String| {
            if !marker_allows(lexed.raw(idx), "lint", rule) {
                findings.push(LintFinding {
                    path: path.to_string(),
                    line: idx + 1,
                    rule,
                    message,
                });
            }
        };

    let code_lines = &lexed.code_lines;
    for (idx, code) in code_lines.iter().enumerate() {
        if lexed.is_test(idx) {
            continue;
        }

        if no_panic {
            for tok in PANIC_TOKENS {
                if code.contains(tok) {
                    report(
                        &mut findings,
                        idx,
                        "no-panic",
                        format!("`{tok}` in a panic-free acquisition/probe path; return a typed error instead"),
                    );
                }
            }
        }

        if uses_tcp
            && (code.contains(".read(")
                || code.contains("read_to_string(")
                || code.contains("read_to_end("))
            && !code.contains("read_line_bounded")
        {
            report(
                &mut findings,
                idx,
                "bounded-reads",
                "raw socket read; use np_resilience::io::read_line_bounded so a slow peer cannot wedge or balloon the client".to_string(),
            );
        }

        if !in_telemetry && code.contains("Ordering::Relaxed") {
            report(
                &mut findings,
                idx,
                "relaxed-ordering",
                "Ordering::Relaxed outside crates/telemetry; use SeqCst or move the atomic behind the telemetry facade".to_string(),
            );
        }

        // Hot-path telemetry: both the metrics facade and the time-series
        // sampler must be skipped when observation is off.
        let hot_telemetry = code.contains("np_telemetry::global()")
            || code.contains("np_telemetry::sample")
            || code.contains("timeseries::sample");
        if !in_telemetry && hot_telemetry {
            // The call must sit under an enabled() check somewhere in the
            // enclosing fn (scan back to the nearest `fn` header). The
            // sampler's gate is `sampling_enabled(`, which satisfies the
            // same substring check.
            let mut guarded = code.contains("enabled(");
            if !guarded {
                let mut k = idx;
                while k > 0 {
                    k -= 1;
                    let l = &code_lines[k];
                    if l.contains("enabled(") || l.contains("set_enabled(") {
                        guarded = true;
                        break;
                    }
                    if l.contains("fn ") {
                        break;
                    }
                }
            }
            if !guarded {
                report(
                    &mut findings,
                    idx,
                    "guarded-telemetry",
                    "telemetry or time-series sampling without an enabled() guard in the enclosing fn; hot paths must skip disabled observation".to_string(),
                );
            }
        }

        if no_wall_clock && (code.contains("Instant::now()") || code.contains("SystemTime::now()"))
        {
            report(
                &mut findings,
                idx,
                "no-wall-clock",
                "wall-clock read in a deterministic path; thread time through the seeded simulator clock".to_string(),
            );
        }
    }
    findings
}

/// Recursively collects `.rs` files under `dir` into `out`.
/// Collects the `(relative path, source)` pairs lint and audit both scan:
/// every `.rs` under `src/` and `crates/*/src/`, vendored shims excluded,
/// in sorted-path order (the determinism anchor for both tools).
pub(crate) fn workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let top_src = root.join("src");
    if top_src.is_dir() {
        collect_rs(&top_src, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "shims"))
            .collect();
        crate_dirs.sort();
        for c in crate_dirs {
            let src = c.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        out.push((rel, std::fs::read_to_string(f)?));
    }
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lints the workspace rooted at `root`: every `.rs` file under `src/` and
/// `crates/*/src/`, excluding the vendored shims. Tests, benches and
/// examples are out of scope by construction.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let sources = workspace_sources(root)?;
    let mut report = LintReport::default();
    for (rel, source) in &sources {
        report.findings.extend(lint_source(rel, source));
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_tokens_flagged_only_in_scoped_files() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let hits = lint_source("crates/counters/src/acquisition.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "no-panic");
        assert_eq!(hits[0].line, 1);
        assert!(lint_source("crates/counters/src/catalog.rs", src).is_empty());
    }

    #[test]
    fn comments_strings_and_tests_are_exempt() {
        let src = concat!(
            "// calling .unwrap() here would be bad\n",
            "fn f() -> &'static str { \"never .unwrap() in prose\" }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { Some(1).unwrap(); }\n",
            "}\n",
        );
        assert!(lint_source("crates/resilience/src/io.rs", src).is_empty());
    }

    #[test]
    fn raw_reads_near_tcp_are_flagged() {
        let src = concat!(
            "use std::net::TcpStream;\n",
            "fn f(s: &mut TcpStream, buf: &mut [u8]) {\n",
            "    let _ = s.read(buf);\n",
            "}\n",
        );
        let hits = lint_source("crates/core/src/session.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "bounded-reads");
        assert_eq!(hits[0].line, 3);
        // The bounded reader itself is exempt.
        assert!(lint_source("crates/resilience/src/io.rs", src).is_empty());
    }

    #[test]
    fn relaxed_ordering_allowed_only_in_telemetry() {
        let src = "fn f(a: &std::sync::atomic::AtomicU64) { a.load(Ordering::Relaxed); }\n";
        assert!(lint_source("crates/telemetry/src/registry.rs", src).is_empty());
        let hits = lint_source("crates/core/src/runner.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "relaxed-ordering");
    }

    #[test]
    fn telemetry_calls_need_an_enabled_guard() {
        let bad = concat!(
            "fn record() {\n",
            "    np_telemetry::global().counter(\"x\").add(1);\n",
            "}\n",
        );
        let good = concat!(
            "fn record() {\n",
            "    if np_telemetry::enabled() {\n",
            "        np_telemetry::global().counter(\"x\").add(1);\n",
            "    }\n",
            "}\n",
        );
        let hits = lint_source("crates/core/src/runner.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "guarded-telemetry");
        assert!(lint_source("crates/core/src/runner.rs", good).is_empty());
        // Inside the telemetry crate the facade may call itself freely.
        assert!(lint_source("crates/telemetry/src/snapshot.rs", bad).is_empty());
    }

    #[test]
    fn sampling_calls_need_an_enabled_guard() {
        let bad = concat!(
            "fn record(now: u64) {\n",
            "    np_telemetry::timeseries::sample(\"acq.reps\", now, 1);\n",
            "}\n",
        );
        let good = concat!(
            "fn record(now: u64) {\n",
            "    if np_telemetry::sampling_enabled() {\n",
            "        np_telemetry::sample_cumulative(\"x\", now, 1);\n",
            "    }\n",
            "}\n",
        );
        let hits = lint_source("crates/counters/src/acquisition.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "guarded-telemetry");
        assert!(lint_source("crates/counters/src/acquisition.rs", good).is_empty());
        // The bench matrix harness sits under the same guard — its
        // drivers run hot measurement loops.
        let hits = lint_source("crates/bench/src/harness/runner.rs", bad);
        assert!(hits.iter().any(|h| h.rule == "guarded-telemetry"));
        // The sampler itself is exempt, like the metrics facade.
        assert!(lint_source("crates/telemetry/src/timeseries.rs", bad).is_empty());
    }

    #[test]
    fn wall_clock_forbidden_in_deterministic_paths() {
        let src = "fn f() { let _t = std::time::Instant::now(); }\n";
        let hits = lint_source("crates/numa-sim/src/engine.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "no-wall-clock");
        assert!(lint_source("crates/resilience/src/retry.rs", src).is_empty());
    }

    #[test]
    fn sampler_and_top_are_wall_clock_free() {
        // Captures are timestamped in simulated cycles; `np top` paces on
        // thread::sleep and tick counters. Neither may read a wall clock.
        let src = "fn f() { let _t = std::time::Instant::now(); }\n";
        for path in [
            "crates/telemetry/src/timeseries.rs",
            "src/cli/top.rs",
            "crates/bench/src/harness/runner.rs",
            "crates/bench/src/harness/schema.rs",
        ] {
            let hits = lint_source(path, src);
            assert_eq!(hits.len(), 1, "{path}");
            assert_eq!(hits[0].rule, "no-wall-clock", "{path}");
        }
        // The rest of the CLI, the trace module (now_ns's home) and the
        // bench crate's report binaries (outside harness/) may.
        assert!(lint_source("src/cli/commands.rs", src).is_empty());
        assert!(lint_source("crates/telemetry/src/trace.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn patterns_classifier_is_wall_clock_free_and_guarded() {
        // The classifier's document promises byte-identical verdicts at
        // any thread count: nothing under crates/patterns/src may read a
        // wall clock, and any telemetry it ever grows must be guarded.
        let src = "fn f() { let _t = std::time::Instant::now(); }\n";
        for path in [
            "crates/patterns/src/classify.rs",
            "crates/patterns/src/verify.rs",
            "crates/patterns/src/metrics.rs",
        ] {
            let hits = lint_source(path, src);
            assert_eq!(hits.len(), 1, "{path}");
            assert_eq!(hits[0].rule, "no-wall-clock", "{path}");
        }
        // Its integration tests (outside src/) stay out of scope.
        assert!(lint_source("crates/patterns/tests/calibration.rs", src).is_empty());
        let unguarded = "fn f() { np_telemetry::global().snapshot(); }\n";
        let hits = lint_source("crates/patterns/src/verify.rs", unguarded);
        assert!(hits.iter().any(|h| h.rule == "guarded-telemetry"));
    }

    #[test]
    fn parallel_pool_is_wall_clock_free() {
        // The worker pool's determinism contract forbids timing-dependent
        // behaviour; its duration measurements go through np_telemetry.
        let src = "fn f() { let _t = std::time::SystemTime::now(); }\n";
        let hits = lint_source("crates/parallel/src/pool.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "no-wall-clock");
        assert!(lint_source("crates/parallel/src/queue.rs", src)
            .iter()
            .all(|h| h.rule == "no-wall-clock"));
        // Its integration tests (outside src/) stay out of scope.
        assert!(lint_source("crates/parallel/tests/pool_stress.rs", src).is_empty());
    }

    #[test]
    fn allow_marker_silences_one_line() {
        let src =
            "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(no-panic): startup only\n";
        assert!(lint_source("crates/counters/src/pebs.rs", src).is_empty());
        // Marker for a different rule does not silence.
        let other = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(bounded-reads)\n";
        assert_eq!(lint_source("crates/counters/src/pebs.rs", other).len(), 1);
    }

    #[test]
    fn nested_block_comments_and_raw_strings_blank_cleanly() {
        let src = concat!(
            "/* outer /* inner .unwrap() */ still comment .expect( */\n",
            "fn f() -> String { String::from(r#\"panic! \"quoted\" .unwrap()\"#) }\n",
            "fn g(x: Option<u8>) -> u8 { x.unwrap() }\n",
        );
        let hits = lint_source("crates/counters/src/pebs.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 3);
    }

    #[test]
    fn serve_crate_is_panic_free_and_socket_bounded() {
        // Every file under crates/serve/src/ is in no-panic scope.
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let hits = lint_source("crates/serve/src/server.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "no-panic");
        assert_eq!(lint_source("crates/serve/src/cache.rs", src).len(), 1);
        // Its socket code must go through the bounded line reader.
        let tcp = concat!(
            "use std::net::TcpStream;\n",
            "fn f(s: &mut TcpStream, buf: &mut [u8]) { let _ = s.read(buf); }\n",
        );
        let hits = lint_source("crates/serve/src/client.rs", tcp);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "bounded-reads");
    }

    #[test]
    fn workspace_scan_covers_the_serve_crate() {
        let root = std::env::temp_dir().join(format!("np-lint-serve-{}", std::process::id()));
        let src_dir = root.join("crates").join("serve").join("src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(
            src_dir.join("lib.rs"),
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )
        .unwrap();
        let report = lint_workspace(&root).unwrap();
        std::fs::remove_dir_all(&root).unwrap();
        assert_eq!(report.files_scanned, 1);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].path, "crates/serve/src/lib.rs");
        assert_eq!(report.findings[0].rule, "no-panic");
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let report = LintReport {
            findings: vec![LintFinding {
                path: "a\"b.rs".into(),
                line: 7,
                rule: "no-panic",
                message: "x".into(),
            }],
            files_scanned: 3,
        };
        let json = report.to_json();
        assert!(json.contains("\"files_scanned\":3"));
        assert!(json.contains("a\\\"b.rs"));
        assert!(!report.is_clean());
    }
}
