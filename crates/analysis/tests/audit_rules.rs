//! Per-rule fixtures for `np audit`: for every rule, one reproducer the
//! rule must flag and one near-miss it must stay silent on. The
//! near-misses pin the refinements that keep the token-level scan
//! useful — predicate loops, guard-passing helpers, paired orderings,
//! `SAFETY:` comments, test-module exemptions — so a future "simplify
//! the rule" change that reintroduces false positives fails here first.

use np_analysis::{audit_sources, Baseline};

fn audit(files: &[(&str, &str)]) -> np_analysis::AuditReport {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    audit_sources(&owned, &Baseline::empty())
}

fn rules_fired(report: &np_analysis::AuditReport) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = report.unsuppressed().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

// ---------------------------------------------------------------- lock-order

#[test]
fn lock_order_flags_opposite_acquisition_orders() {
    let report = audit(&[(
        "crates/a/src/lib.rs",
        concat!(
            "fn ab(s: &S) {\n",
            "    let a = s.alpha.lock();\n",
            "    let b = s.beta.lock();\n",
            "    drop(b);\n",
            "    drop(a);\n",
            "}\n",
            "fn ba(s: &S) {\n",
            "    let b = s.beta.lock();\n",
            "    let a = s.alpha.lock();\n",
            "    drop(a);\n",
            "    drop(b);\n",
            "}\n",
        ),
    )]);
    assert_eq!(
        rules_fired(&report),
        vec!["lock-order"],
        "{}",
        report.render()
    );
    let f = report.unsuppressed().next().unwrap();
    assert!(f.message.contains("s.alpha"), "{}", f.message);
    assert!(f.message.contains("s.beta"), "{}", f.message);
}

#[test]
fn lock_order_flags_a_cycle_through_a_callee() {
    // `ab` holds alpha and calls `lock_beta` (one hop); `ba` nests the
    // other way directly. The cycle only exists through the call edge.
    let report = audit(&[(
        "crates/a/src/lib.rs",
        concat!(
            "fn ab(s: &S) {\n",
            "    let a = s.alpha.lock();\n",
            "    lock_beta(s);\n",
            "    drop(a);\n",
            "}\n",
            "fn lock_beta(s: &S) {\n",
            "    let b = s.beta.lock();\n",
            "    drop(b);\n",
            "}\n",
            "fn ba(s: &S) {\n",
            "    let b = s.beta.lock();\n",
            "    let a = s.alpha.lock();\n",
            "    drop(a);\n",
            "    drop(b);\n",
            "}\n",
        ),
    )]);
    assert_eq!(
        rules_fired(&report),
        vec!["lock-order"],
        "{}",
        report.render()
    );
}

#[test]
fn lock_order_ignores_consistent_order_and_temporary_guards() {
    // Same order twice: no cycle. And a temporary (non-let-bound) guard
    // drops at the semicolon, so it cannot be held across the second
    // acquisition.
    let report = audit(&[(
        "crates/a/src/lib.rs",
        concat!(
            "fn one(s: &S) {\n",
            "    let a = s.alpha.lock();\n",
            "    let b = s.beta.lock();\n",
            "    drop(b);\n",
            "    drop(a);\n",
            "}\n",
            "fn two(s: &S) {\n",
            "    let a = s.alpha.lock();\n",
            "    let b = s.beta.lock();\n",
            "    drop(b);\n",
            "    drop(a);\n",
            "}\n",
            "fn temporary(s: &S) {\n",
            "    s.beta.lock();\n",
            "    let a = s.alpha.lock();\n",
            "    drop(a);\n",
            "}\n",
        ),
    )]);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn lock_order_does_not_alias_same_field_across_crates() {
    // `self.inner` in two crates is two different mutexes; without
    // crate-qualified labels this would fabricate a cycle.
    let report = audit(&[
        (
            "crates/a/src/lib.rs",
            concat!(
                "fn f(s: &S) {\n",
                "    let a = s.inner.lock();\n",
                "    let b = s.outer.lock();\n",
                "    drop(b);\n",
                "    drop(a);\n",
                "}\n",
            ),
        ),
        (
            "crates/b/src/lib.rs",
            concat!(
                "fn g(s: &S) {\n",
                "    let b = s.outer.lock();\n",
                "    let a = s.inner.lock();\n",
                "    drop(a);\n",
                "    drop(b);\n",
                "}\n",
            ),
        ),
    ]);
    assert!(report.is_clean(), "{}", report.render());
}

// ------------------------------------------------------- condvar-discipline

#[test]
fn condvar_flags_bare_wait_outside_a_loop() {
    let report = audit(&[(
        "crates/a/src/lib.rs",
        concat!(
            "fn wait_once(cv: &std::sync::Condvar, g: std::sync::MutexGuard<bool>) {\n",
            "    let _g = cv.wait(g);\n",
            "}\n",
        ),
    )]);
    assert_eq!(
        rules_fired(&report),
        vec!["condvar-discipline"],
        "{}",
        report.render()
    );
    assert!(report
        .unsuppressed()
        .next()
        .unwrap()
        .message
        .contains("predicate loop"));
}

#[test]
fn condvar_accepts_wait_in_a_predicate_loop_and_wait_while() {
    let report = audit(&[(
        "crates/a/src/lib.rs",
        concat!(
            "fn wait_looped(cv: &std::sync::Condvar, m: &std::sync::Mutex<bool>) {\n",
            "    let mut g = m.lock().unwrap_or_else(|p| p.into_inner());\n",
            "    while !*g {\n",
            "        g = cv.wait(g).unwrap_or_else(|p| p.into_inner());\n",
            "    }\n",
            "}\n",
            "fn wait_predicated(cv: &std::sync::Condvar, m: &std::sync::Mutex<bool>) {\n",
            "    let g = m.lock().unwrap_or_else(|p| p.into_inner());\n",
            "    let _g = cv.wait_while(g, |ready| !*ready);\n",
            "}\n",
            "fn barrier_wait(b: &std::sync::Barrier) {\n",
            "    b.wait();\n",
            "}\n",
        ),
    )]);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn condvar_flags_notify_without_the_lock() {
    let report = audit(&[(
        "crates/a/src/lib.rs",
        concat!(
            "fn poke(cv: &std::sync::Condvar) {\n",
            "    cv.notify_one();\n",
            "}\n",
        ),
    )]);
    assert_eq!(
        rules_fired(&report),
        vec!["condvar-discipline"],
        "{}",
        report.render()
    );
    assert!(report
        .unsuppressed()
        .next()
        .unwrap()
        .message
        .contains("miss the wakeup"));
}

#[test]
fn condvar_accepts_notify_under_the_lock_or_with_a_guard_parameter() {
    // Two proofs of acquisition: an explicit `.lock()` earlier in the
    // fn, or a `MutexGuard` parameter (the helper can only be called
    // with the lock held — the signature is the proof).
    let report = audit(&[(
        "crates/a/src/lib.rs",
        concat!(
            "fn poke_locked(cv: &std::sync::Condvar, m: &std::sync::Mutex<bool>) {\n",
            "    let mut g = m.lock().unwrap_or_else(|p| p.into_inner());\n",
            "    *g = true;\n",
            "    drop(g);\n",
            "    cv.notify_one();\n",
            "}\n",
            "fn poke_guarded(cv: &std::sync::Condvar, _g: &std::sync::MutexGuard<bool>) {\n",
            "    cv.notify_all();\n",
            "}\n",
        ),
    )]);
    assert!(report.is_clean(), "{}", report.render());
}

// --------------------------------------------------------- atomics-ordering

#[test]
fn atomics_flags_relaxed_outside_telemetry() {
    let src = concat!(
        "use std::sync::atomic::{AtomicU64, Ordering};\n",
        "fn bump(c: &AtomicU64) {\n",
        "    c.fetch_add(1, Ordering::Relaxed);\n",
        "}\n",
    );
    let report = audit(&[("crates/a/src/lib.rs", src)]);
    assert_eq!(
        rules_fired(&report),
        vec!["atomics-ordering"],
        "{}",
        report.render()
    );
    // The same line inside the telemetry facade is the sanctioned home
    // for Relaxed counters.
    let report = audit(&[("crates/telemetry/src/counter.rs", src)]);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn atomics_flags_one_sided_acquire() {
    let report = audit(&[(
        "crates/a/src/lib.rs",
        concat!(
            "use std::sync::atomic::{AtomicBool, Ordering};\n",
            "fn check(flag: &AtomicBool) -> bool {\n",
            "    flag.load(Ordering::Acquire)\n",
            "}\n",
        ),
    )]);
    assert_eq!(
        rules_fired(&report),
        vec!["atomics-ordering"],
        "{}",
        report.render()
    );
    assert!(report
        .unsuppressed()
        .next()
        .unwrap()
        .message
        .contains("no Release store"));
}

#[test]
fn atomics_accepts_paired_or_stronger_orderings() {
    let report = audit(&[(
        "crates/a/src/lib.rs",
        concat!(
            "use std::sync::atomic::{AtomicBool, Ordering};\n",
            "fn check(flag: &AtomicBool) -> bool {\n",
            "    flag.load(Ordering::Acquire)\n",
            "}\n",
            "fn publish(flag: &AtomicBool) {\n",
            "    flag.store(true, Ordering::Release);\n",
            "}\n",
            "fn reset(other: &AtomicBool) {\n",
            "    other.store(false, Ordering::SeqCst);\n",
            "    other.load(Ordering::Acquire);\n",
            "}\n",
        ),
    )]);
    assert!(report.is_clean(), "{}", report.render());
}

// --------------------------------------------------------- hot-path-hygiene

#[test]
fn hot_path_flags_allocation_locking_and_io_in_marked_fns() {
    let report = audit(&[(
        "crates/a/src/lib.rs",
        concat!(
            "// audit:hot — per-access inner loop\n",
            "fn hot_alloc(xs: &[u32]) -> Vec<u32> {\n",
            "    xs.iter().map(|x| x + 1).collect()\n",
            "}\n",
            "// audit:hot\n",
            "fn hot_lock(m: &std::sync::Mutex<u64>) -> u64 {\n",
            "    *m.lock().unwrap_or_else(|p| p.into_inner())\n",
            "}\n",
            "// audit:hot\n",
            "fn hot_io(x: u64) {\n",
            "    println!(\"{x}\");\n",
            "}\n",
        ),
    )]);
    let hot: Vec<_> = report
        .unsuppressed()
        .filter(|f| f.rule == "hot-path-hygiene")
        .collect();
    assert_eq!(hot.len(), 3, "{}", report.render());
    assert!(hot[0].message.contains("allocates"));
    assert!(hot[1].message.contains("locks/blocks"));
    assert!(hot[2].message.contains("does IO"));
}

#[test]
fn hot_path_ignores_unmarked_fns_and_clean_hot_fns() {
    let report = audit(&[(
        "crates/a/src/lib.rs",
        concat!(
            "fn cold_alloc(xs: &[u32]) -> Vec<u32> {\n",
            "    xs.iter().map(|x| x + 1).collect()\n",
            "}\n",
            "// audit:hot\n",
            "fn hot_clean(a: u64, b: u64) -> u64 {\n",
            "    a.wrapping_mul(31).wrapping_add(b)\n",
            "}\n",
        ),
    )]);
    assert!(report.is_clean(), "{}", report.render());
}

// ------------------------------------------------------------ unsafe-safety

#[test]
fn unsafe_without_safety_comment_is_flagged_and_inventoried() {
    let report = audit(&[(
        "crates/a/src/lib.rs",
        concat!(
            "fn launder(x: u32) -> u32 {\n",
            "    unsafe { std::mem::transmute::<u32, u32>(x) }\n",
            "}\n",
        ),
    )]);
    assert_eq!(
        rules_fired(&report),
        vec!["unsafe-safety"],
        "{}",
        report.render()
    );
    assert_eq!(report.unsafe_sites.len(), 1);
    assert!(report.unsafe_sites[0].justification.is_none());
    assert!(report.inventory_markdown().contains("**MISSING**"));
}

#[test]
fn unsafe_with_safety_comment_passes_but_stays_in_the_inventory() {
    let report = audit(&[(
        "crates/a/src/lib.rs",
        concat!(
            "fn launder(x: u32) -> u32 {\n",
            "    // SAFETY: u32 -> u32 is the identity transmute.\n",
            "    unsafe { std::mem::transmute::<u32, u32>(x) }\n",
            "}\n",
        ),
    )]);
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(
        report.unsafe_sites.len(),
        1,
        "justified sites still inventoried"
    );
    assert_eq!(
        report.unsafe_sites[0].justification.as_deref(),
        Some("u32 -> u32 is the identity transmute.")
    );
    assert!(!report.inventory_markdown().contains("MISSING"));
}

#[test]
fn unsafe_in_test_modules_is_exempt() {
    let report = audit(&[(
        "crates/a/src/lib.rs",
        concat!(
            "fn prod() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() {\n",
            "        unsafe { std::hint::unreachable_unchecked() }\n",
            "    }\n",
            "}\n",
        ),
    )]);
    assert!(report.is_clean(), "{}", report.render());
    assert!(
        report.unsafe_sites.is_empty(),
        "test unsafe stays out of the inventory"
    );
}

// ------------------------------------------------------- no-panic-reachable

#[test]
fn panic_reachable_flags_unwrap_behind_an_entry_point() {
    // `handle` lives in the serve crate (an entry prefix) and calls
    // `render` — unique across the workspace, so the edge resolves —
    // whose `.unwrap()` is one hop from live traffic.
    let report = audit(&[
        (
            "crates/serve/src/lib.rs",
            "pub fn handle(req: u32) -> String { render(req) }\n",
        ),
        (
            "crates/util/src/lib.rs",
            concat!(
                "pub fn render(req: u32) -> String {\n",
                "    checked(req).unwrap()\n",
                "}\n",
                "fn checked(req: u32) -> Option<String> {\n",
                "    Some(req.to_string())\n",
                "}\n",
            ),
        ),
    ]);
    let f = report
        .unsuppressed()
        .find(|f| f.rule == "no-panic-reachable")
        .unwrap_or_else(|| panic!("expected a finding:\n{}", report.render()));
    assert_eq!(f.path, "crates/util/src/lib.rs");
    assert!(
        f.message.contains("reachable in 1 call(s)"),
        "{}",
        f.message
    );
    assert!(f.message.contains("`handle`"), "{}", f.message);
}

#[test]
fn panic_reachable_ignores_uncalled_helpers_and_entry_files_themselves() {
    let report = audit(&[
        (
            // Panic tokens inside the entry file are lint's `no-panic`
            // scope, not the audit's (depth 0 is skipped).
            "crates/serve/src/lib.rs",
            "pub fn handle(req: u32) -> u32 { req.checked_add(1).unwrap() }\n",
        ),
        (
            // Unreachable from any entry fn: nobody calls it.
            "crates/util/src/lib.rs",
            "pub fn orphan(x: Option<u32>) -> u32 { x.unwrap() }\n",
        ),
    ]);
    assert!(
        !report
            .unsuppressed()
            .any(|f| f.rule == "no-panic-reachable"),
        "{}",
        report.render()
    );
}

// ------------------------------------------------------------ cross-cutting

#[test]
fn findings_sort_deterministically_across_rules() {
    // One tree tripping three rules at once: output order is pinned to
    // (path, line, rule, message), so two runs render identically.
    let files = [
        (
            "crates/a/src/lib.rs",
            concat!(
                "use std::sync::atomic::{AtomicU64, Ordering};\n",
                "fn bump(c: &AtomicU64) {\n",
                "    c.fetch_add(1, Ordering::Relaxed);\n",
                "}\n",
                "fn launder(x: u32) -> u32 {\n",
                "    unsafe { std::mem::transmute::<u32, u32>(x) }\n",
                "}\n",
            ),
        ),
        (
            "crates/b/src/lib.rs",
            "fn poke(cv: &std::sync::Condvar) { cv.notify_one(); }\n",
        ),
    ];
    let a = audit(&files);
    let b = audit(&files);
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.render(), b.render());
    let rules: Vec<_> = a.unsuppressed().map(|f| (f.path.clone(), f.rule)).collect();
    assert_eq!(
        rules,
        vec![
            ("crates/a/src/lib.rs".to_string(), "atomics-ordering"),
            ("crates/a/src/lib.rs".to_string(), "unsafe-safety"),
            ("crates/b/src/lib.rs".to_string(), "condvar-discipline"),
        ]
    );
}
