//! The workspace must pass its own audit: the same scan `np audit`, CI
//! and `scripts/verify.sh` run. Three properties are pinned here:
//!
//! 1. zero unsuppressed findings against the committed baseline;
//! 2. two runs produce byte-identical JSON (the determinism contract);
//! 3. the committed `UNSAFE_INVENTORY.md` matches the tree.

use np_analysis::{audit_workspace, Baseline};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crate lives two levels under the workspace root")
        .to_path_buf()
}

fn committed_baseline(root: &Path) -> Baseline {
    match std::fs::read_to_string(root.join("audit-baseline.json")) {
        Ok(text) => Baseline::parse(&text).expect("committed baseline parses"),
        Err(_) => Baseline::empty(),
    }
}

#[test]
fn workspace_audits_clean() {
    let root = workspace_root();
    let baseline = committed_baseline(&root);
    let report = audit_workspace(&root, &baseline).expect("workspace sources are readable");
    assert!(
        report.files_scanned > 40,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    assert!(
        report.fns_indexed > 300,
        "index looks truncated: only {} fns",
        report.fns_indexed
    );
    assert!(
        report.is_clean(),
        "workspace audit violations:\n{}",
        report.render()
    );
    assert!(
        report.stale_suppressions.is_empty(),
        "baseline has stale entries:\n{}",
        report.stale_suppressions.join("\n")
    );
}

#[test]
fn audit_json_is_byte_identical_across_runs() {
    let root = workspace_root();
    let baseline = committed_baseline(&root);
    let a = audit_workspace(&root, &baseline).expect("first run");
    let b = audit_workspace(&root, &baseline).expect("second run");
    assert_eq!(a.to_json(), b.to_json(), "audit JSON must be deterministic");
    assert_eq!(a.to_sarif(), b.to_sarif(), "SARIF must be deterministic");
}

#[test]
fn committed_unsafe_inventory_matches_the_tree() {
    let root = workspace_root();
    let report =
        audit_workspace(&root, &Baseline::empty()).expect("workspace sources are readable");
    let committed = std::fs::read_to_string(root.join("UNSAFE_INVENTORY.md"))
        .expect("UNSAFE_INVENTORY.md is committed at the workspace root");
    assert_eq!(
        committed,
        report.inventory_markdown(),
        "UNSAFE_INVENTORY.md is stale; regenerate with `np audit --inventory UNSAFE_INVENTORY.md`"
    );
}
