//! Differential property tests: for arbitrary generated programs, every
//! dynamic hardware-event total from the engine must land inside the
//! static envelope `np_analysis::bounds` computes, and the static barrier
//! check must agree with the engine's release behaviour.
//!
//! Programs are generated with threads holding *prefixes of a common
//! ascending barrier sequence* — the engine drops finished threads from
//! the release condition, so such programs never deadlock and the
//! analyzer must agree.

use np_analysis::{analyze, check_barriers, compute_bounds, ProgramCfg};
use np_simulator::config::MachineConfig;
use np_simulator::program::{Program, ProgramBuilder};
use np_simulator::{AllocPolicy, MachineSim};
use proptest::prelude::*;

const PAGES: u64 = 16;

/// One generated thread: pinned core slot, ops, and how many barriers of
/// the common sequence it passes.
#[derive(Debug, Clone)]
struct GenThread {
    core_slot: usize,
    ops: Vec<GenOp>,
    barriers: usize,
}

#[derive(Debug, Clone)]
enum GenOp {
    Load(u64),
    LoadDep(u64),
    Store(u64),
    Exec(u32),
    Branch(bool),
    TlbFlush,
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    let span = PAGES * 4096;
    prop_oneof![
        (0..span).prop_map(GenOp::Load),
        (0..span).prop_map(GenOp::LoadDep),
        (0..span).prop_map(GenOp::Store),
        (1u32..50).prop_map(GenOp::Exec),
        (0u32..2).prop_map(|b| GenOp::Branch(b == 1)),
        Just(GenOp::TlbFlush),
    ]
}

/// The vendored proptest shim has no tuple strategies, so the composite
/// thread strategy implements `Strategy` directly.
struct GenThreadStrategy;

impl Strategy for GenThreadStrategy {
    type Value = GenThread;

    fn generate(&self, rng: &mut TestRng) -> GenThread {
        GenThread {
            core_slot: rng.below(8) as usize,
            ops: proptest::collection::vec(gen_op(), 0..40).generate(rng),
            barriers: rng.below(4) as usize,
        }
    }
}

fn gen_thread() -> impl Strategy<Value = GenThread> {
    GenThreadStrategy
}

/// Builds a runnable program: distinct cores, one shared buffer, each
/// thread's ops split across its barrier prefix.
fn build(threads: &[GenThread], policy: AllocPolicy, cfg: &MachineConfig) -> Program {
    let mut b = ProgramBuilder::new(&cfg.topology, cfg.page_bytes);
    let buf = b.alloc(PAGES * 4096, policy);
    let total_cores = cfg.topology.total_cores();
    let mut used = std::collections::HashSet::new();
    for (i, t) in threads.iter().enumerate() {
        // Distinct cores: probe from the requested slot.
        let mut core = t.core_slot % total_cores;
        while !used.insert(core) {
            core = (core + 1) % total_cores;
        }
        let th = b.add_thread(core);
        // Spread the ops across barriers.len() + 1 supersteps.
        let chunks = t.barriers + 1;
        let per = t.ops.len().div_ceil(chunks).max(1);
        let mut next_barrier = 1u32;
        for (j, op) in t.ops.iter().enumerate() {
            if j > 0 && j % per == 0 && (next_barrier as usize) <= t.barriers {
                b.barrier(th, next_barrier);
                next_barrier += 1;
            }
            match op {
                GenOp::Load(off) => b.load(th, buf + off),
                GenOp::LoadDep(off) => b.load_dependent(th, buf + off),
                GenOp::Store(off) => b.store(th, buf + off),
                GenOp::Exec(n) => b.exec(th, *n),
                GenOp::Branch(taken) => b.branch(th, (i * 100 + j) as u32, *taken),
                GenOp::TlbFlush => b.tlb_flush(th),
            }
        }
        while (next_barrier as usize) <= t.barriers {
            b.barrier(th, next_barrier);
            next_barrier += 1;
        }
    }
    b.build()
}

fn policy(pick: usize) -> AllocPolicy {
    match pick % 3 {
        0 => AllocPolicy::FirstTouch,
        1 => AllocPolicy::Bind(1),
        _ => AllocPolicy::Interleave,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Quiet machine: exact instruction/retirement accounting plus every
    /// envelope, across two seeds.
    #[test]
    fn quiet_runs_stay_inside_static_envelope(
        threads in proptest::collection::vec(gen_thread(), 1..4),
        policy_pick in 0usize..3,
    ) {
        let mut cfg = MachineConfig::two_socket_small();
        cfg.noise.timer_interval = 0;
        cfg.noise.dram_jitter = 0.0;
        let p = build(&threads, policy(policy_pick), &cfg);
        prop_assert!(p.validate(&cfg.topology).is_ok());
        prop_assert!(check_barriers(&ProgramCfg::build(&p)).is_ok());
        let bounds = compute_bounds(&p, &cfg);
        let sim = MachineSim::new(cfg);
        for seed in [1u64, 2] {
            let r = sim.run(&p, seed).expect("valid program");
            let v = bounds.check(&r.counters.totals(), r.cycles);
            prop_assert!(v.is_empty(), "seed {}: {}", seed, v.join("; "));
        }
    }

    /// Default noise (timer interrupts + DRAM jitter): the fixed-point
    /// interrupt bound and jittered latency envelopes must still hold.
    #[test]
    fn noisy_runs_stay_inside_static_envelope(
        threads in proptest::collection::vec(gen_thread(), 1..4),
        policy_pick in 0usize..3,
        seed in 1u64..500,
    ) {
        let cfg = MachineConfig::two_socket_small();
        let p = build(&threads, policy(policy_pick), &cfg);
        let bounds = compute_bounds(&p, &cfg);
        let sim = MachineSim::new(cfg);
        let r = sim.run(&p, seed).expect("valid program");
        let v = bounds.check(&r.counters.totals(), r.cycles);
        prop_assert!(v.is_empty(), "{}", v.join("; "));
    }

    /// The full analyze() entry point never reports a deadlock for
    /// prefix-barrier programs, and its bounds match compute_bounds.
    #[test]
    fn analyze_agrees_with_engine_on_liveness(
        threads in proptest::collection::vec(gen_thread(), 1..3),
    ) {
        let mut cfg = MachineConfig::two_socket_small();
        cfg.noise.timer_interval = 0;
        cfg.noise.dram_jitter = 0.0;
        let p = build(&threads, AllocPolicy::Interleave, &cfg);
        let a = analyze(&p, &cfg);
        prop_assert!(a.validate.is_ok());
        prop_assert!(a.barriers.is_ok());
        // The engine completes (it would panic on deadlock).
        let r = MachineSim::new(cfg).run(&p, 3).expect("valid program");
        prop_assert!(a.bounds.check(&r.counters.totals(), r.cycles).is_empty());
    }
}
