//! The workspace must satisfy its own invariants: `np lint` runs clean.
//! This is the same scan the CLI and CI run; keeping it as a test means
//! `cargo test` alone catches a reintroduced violation.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crate lives two levels under the workspace root");
    let report = np_analysis::lint_workspace(root).expect("workspace sources are readable");
    assert!(
        report.files_scanned > 40,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace lint violations:\n{}",
        report.render()
    );
}
