//! The workspace must satisfy its own invariants: `np lint` runs clean.
//! This is the same scan the CLI and CI run; keeping it as a test means
//! `cargo test` alone catches a reintroduced violation.

use std::path::Path;

/// Golden fixture: every lint rule fires at a pinned `(rule, line)`.
/// `lint` and `audit` share one blanking lexer; this pins lint's exact
/// output through that shared layer, so a lexer change that shifts how
/// comments/strings/test-modules blank shows up as a diff here instead
/// of as silently changed findings.
#[test]
fn golden_lint_findings_are_pinned() {
    let serve_src = concat!(
        "use std::net::TcpStream;\n",                                     // 1
        "use std::sync::atomic::{AtomicU64, Ordering};\n",                // 2
        "pub fn handle(x: Option<u32>) -> u32 {\n",                       // 3
        "    x.unwrap()\n",                                               // 4: no-panic
        "}\n",                                                            // 5
        "pub fn slurp(s: &mut TcpStream, buf: &mut [u8]) {\n",            // 6
        "    let _ = s.read(buf);\n",                                     // 7: bounded-reads
        "}\n",                                                            // 8
        "pub fn bump(c: &AtomicU64) {\n",                                 // 9
        "    c.fetch_add(1, Ordering::Relaxed);\n",                       // 10: relaxed-ordering
        "}\n",                                                            // 11
        "pub fn observe() {\n",                                           // 12
        "    np_telemetry::global().counter(\"x\").inc();\n",             // 13: guarded-telemetry
        "}\n",                                                            // 14
        "// Comments and strings stay blank: .unwrap() here is prose.\n", // 15
        "#[cfg(test)]\n",                                                 // 16
        "mod tests {\n",                                                  // 17
        "    #[test]\n",                                                  // 18
        "    fn t() { Some(1).unwrap(); }\n",                             // 19: exempt
        "}\n",                                                            // 20
    );
    let got: Vec<(&'static str, usize)> =
        np_analysis::lint_source("crates/serve/src/handler.rs", serve_src)
            .iter()
            .map(|f| (f.rule, f.line))
            .collect();
    assert_eq!(
        got,
        vec![
            ("no-panic", 4),
            ("bounded-reads", 7),
            ("relaxed-ordering", 10),
            ("guarded-telemetry", 13),
        ]
    );

    let pool_src = "pub fn tick() -> std::time::Instant { std::time::Instant::now() }\n";
    let got: Vec<(&'static str, usize)> =
        np_analysis::lint_source("crates/parallel/src/pool.rs", pool_src)
            .iter()
            .map(|f| (f.rule, f.line))
            .collect();
    assert_eq!(got, vec![("no-wall-clock", 1)]);
}

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crate lives two levels under the workspace root");
    let report = np_analysis::lint_workspace(root).expect("workspace sources are readable");
    assert!(
        report.files_scanned > 40,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace lint violations:\n{}",
        report.render()
    );
}
