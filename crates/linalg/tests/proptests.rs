//! Property-based tests for np-linalg: algebraic identities that must hold
//! for arbitrary well-conditioned inputs.

use np_linalg::{cholesky, lstsq, qr, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with entries in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

/// Strategy: a symmetric positive-definite matrix built as AᵀA + εI.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n, n).prop_map(move |a| {
        let ata = a.transpose().matmul(&a).unwrap();
        ata.add(&Matrix::identity(n).scale(0.5)).unwrap()
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in matrix(4, 3)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_distributes_over_add(a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)) {
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.sub(&rhs).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn matmul_transpose_identity(a in matrix(3, 4), b in matrix(4, 2)) {
        // (AB)ᵀ = Bᵀ Aᵀ
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.sub(&rhs).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn identity_is_neutral(a in matrix(4, 4)) {
        let i = Matrix::identity(4);
        prop_assert!(a.matmul(&i).unwrap().sub(&a).unwrap().max_abs() < 1e-12);
        prop_assert!(i.matmul(&a).unwrap().sub(&a).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn qr_reconstructs(a in matrix(6, 3)) {
        // Skip (rare) rank-deficient random draws, which QR rejects.
        if let Ok(dec) = qr(&a) {
            let recon = dec.q.matmul(&dec.r).unwrap();
            prop_assert!(recon.sub(&a).unwrap().max_abs() < 1e-8);
            let qtq = dec.q.transpose().matmul(&dec.q).unwrap();
            prop_assert!(qtq.sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-8);
        }
    }

    #[test]
    fn cholesky_reconstructs(a in spd(4)) {
        let l = cholesky(&a).unwrap();
        let recon = l.matmul(&l.transpose()).unwrap();
        prop_assert!(recon.sub(&a).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn lstsq_residual_orthogonal_to_design(x in matrix(8, 3), y in matrix(8, 1)) {
        if let Ok(sol) = lstsq(&x, &y) {
            let resid = y.sub(&sol.fitted).unwrap();
            let xtr = x.transpose().matmul(&resid).unwrap();
            // Scale tolerance with the problem's magnitude.
            let scale = 1.0 + x.max_abs() * y.max_abs();
            prop_assert!(xtr.max_abs() < 1e-7 * scale, "Xᵀr = {}", xtr.max_abs());
        }
    }

    #[test]
    fn lstsq_rss_is_minimal_under_perturbation(x in matrix(8, 2), y in matrix(8, 1), d0 in -0.5f64..0.5, d1 in -0.5f64..0.5) {
        if let Ok(sol) = lstsq(&x, &y) {
            let mut perturbed = sol.beta.clone();
            perturbed[(0, 0)] += d0;
            perturbed[(1, 0)] += d1;
            let fitted = x.matmul(&perturbed).unwrap();
            let r = y.sub(&fitted).unwrap();
            let rss_p = r.dot(&r).unwrap();
            prop_assert!(rss_p + 1e-9 >= sol.rss);
        }
    }

    #[test]
    fn frobenius_norm_triangle_inequality(a in matrix(3, 3), b in matrix(3, 3)) {
        let sum = a.add(&b).unwrap();
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    }
}
