//! Dense row-major matrix with the operations needed by the regression and
//! decomposition code.

use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// This is deliberately a small, predictable type: storage is a single
/// `Vec<f64>` of length `rows * cols`, indexing is `(row, col)`, and all
/// arithmetic returns owned results. Regression designs in this project have
/// at most a few thousand rows and a handful of columns, so no attempt at
/// blocking or SIMD is made — clarity and correct error reporting win.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns [`LinalgError::BadLength`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::BadLength {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally long rows.
    ///
    /// Panics if rows have differing lengths; intended for literals in tests
    /// and examples.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a single-column matrix from a slice.
    pub fn column(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop contiguous in both `rhs`
        // and `out`, which matters even at these small sizes.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Element-wise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Frobenius norm (square root of the sum of squared elements).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element value; zero for empty matrices.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Dot product of two single-column matrices (or flattened storage of
    /// equally-shaped matrices).
    pub fn dot(&self, rhs: &Matrix) -> Result<f64> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "dot",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).sum())
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.6}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
        assert_eq!(i.matmul(&i).unwrap(), i);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = Matrix::from_vec(2, 2, vec![1.0; 5]).unwrap_err();
        assert_eq!(
            err,
            LinalgError::BadLength {
                expected: 4,
                actual: 5
            }
        );
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b).unwrap(), Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(b.sub(&a).unwrap(), Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn row_and_col_access() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, -4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn dot_product() {
        let a = Matrix::column(&[1.0, 2.0, 3.0]);
        let b = Matrix::column(&[4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        let c = Matrix::column(&[1.0]);
        assert!(a.dot(&c).is_err());
    }

    #[test]
    fn display_renders_rows() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let s = format!("{a}");
        assert!(s.contains("1.0"));
        assert!(s.ends_with('\n'));
    }
}
